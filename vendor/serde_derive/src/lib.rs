//! Derive macros for the vendored `serde` subset.
//!
//! Implemented without `syn`/`quote` (the build container has no crates.io
//! access): a small hand-rolled parser walks the raw [`TokenStream`] of the
//! item and a string-based generator emits the impls. Supports exactly the
//! shapes this workspace derives on:
//!
//! * named structs, tuple/newtype structs, unit structs;
//! * enums with unit, newtype, tuple, and struct variants
//!   (externally-tagged encoding, matching real serde's default);
//! * the container attributes `#[serde(into = "T", try_from = "T")]`.
//!
//! Generic containers are intentionally unsupported (none exist in this
//! repo); deriving on one produces a compile error naming this file.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    into: Option<String>,
    try_from: Option<String>,
    shape: Shape,
}

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    let mut into = None;
    let mut try_from = None;

    // Leading attributes (doc comments arrive as `#[doc = "..."]`).
    while i + 1 < tokens.len() {
        let is_attr = matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_attr {
            break;
        }
        if let TokenTree::Group(g) = &tokens[i + 1] {
            parse_serde_attr(g.stream(), &mut into, &mut try_from);
        }
        i += 2;
    }

    // Visibility.
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
            i += 1;
        }
    }

    let kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other}"),
    };
    i += 1;

    if matches!(&tokens[i..], [TokenTree::Punct(p), ..] if p.as_char() == '<') {
        panic!(
            "serde_derive (vendored subset) does not support generic type `{name}`; \
             see vendor/serde_derive/src/lib.rs"
        );
    }

    let shape = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("serde_derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };

    Item {
        name,
        into,
        try_from,
        shape,
    }
}

/// If the attribute body is `serde(...)`, record `into`/`try_from` values.
fn parse_serde_attr(body: TokenStream, into: &mut Option<String>, try_from: &mut Option<String>) {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(id), TokenTree::Group(args)] if id.to_string() == "serde" => {
            let inner: Vec<TokenTree> = args.stream().into_iter().collect();
            let mut j = 0;
            while j < inner.len() {
                let key = match &inner[j] {
                    TokenTree::Ident(id) => id.to_string(),
                    _ => {
                        j += 1;
                        continue;
                    }
                };
                if j + 2 < inner.len()
                    && matches!(&inner[j + 1], TokenTree::Punct(p) if p.as_char() == '=')
                {
                    if let TokenTree::Literal(lit) = &inner[j + 2] {
                        let val = lit.to_string().trim_matches('"').to_string();
                        match key.as_str() {
                            "into" => *into = Some(val),
                            "try_from" => *try_from = Some(val),
                            other => panic!(
                                "serde_derive (vendored subset): unsupported attribute \
                                 `serde({other} = ...)`"
                            ),
                        }
                        j += 3;
                        continue;
                    }
                }
                panic!("serde_derive (vendored subset): unsupported `serde(...)` attribute form");
            }
        }
        _ => {} // not a serde attribute (doc comment, repr, ...)
    }
}

/// Split a token list on commas that sit outside `<...>` nesting. Bracketed
/// groups ((), [], {}) are single tokens, so only angle brackets need depth
/// tracking (e.g. `HashMap<String, TableId>`).
fn split_top_level(body: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in body {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        chunks.last_mut().unwrap().push(tt);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Extract the field name from one `[attrs] [pub] name: Type` chunk.
fn field_name(chunk: &[TokenTree]) -> String {
    let mut i = 0;
    loop {
        match &chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // attribute
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(chunk.get(i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) => return id.to_string(),
            other => panic!("serde_derive: cannot find field name near {other}"),
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    split_top_level(body)
        .iter()
        .map(|chunk| field_name(chunk))
        .collect()
}

fn count_tuple_fields(body: TokenStream) -> usize {
    split_top_level(body).len()
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    split_top_level(body)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            // Skip attributes / doc comments.
            while matches!(&chunk[i], TokenTree::Punct(p) if p.as_char() == '#') {
                i += 2;
            }
            let name = match &chunk[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive: expected variant name, found {other}"),
            };
            let shape = match chunk.get(i + 1) {
                None => VariantShape::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantShape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Named(parse_named_fields(g.stream()))
                }
                Some(other) => {
                    panic!("serde_derive: unsupported variant payload `{name}`: {other}")
                }
            };
            Variant { name, shape }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Serialize generator
// ---------------------------------------------------------------------------

/// `#[derive(Serialize)]` — encode into the `serde::json::Value` tree.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;

    let body = if let Some(mirror) = &item.into {
        format!(
            "let mirror: {mirror} = <Self as ::std::clone::Clone>::clone(self).into();\n\
             ::serde::Serialize::to_json(&mirror)"
        )
    } else {
        match &item.shape {
            Shape::Named(fields) => obj_literal_of_fields(fields, "self."),
            Shape::Tuple(1) => "::serde::Serialize::to_json(&self.0)".to_string(),
            Shape::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Serialize::to_json(&self.{k})"))
                    .collect();
                format!(
                    "::serde::json::Value::Array(::std::vec![{}])",
                    items.join(", ")
                )
            }
            Shape::Unit => "::serde::json::Value::Null".to_string(),
            Shape::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| {
                        let vname = &v.name;
                        match &v.shape {
                            VariantShape::Unit => format!(
                                "{name}::{vname} => ::serde::json::Value::Str(\
                                 ::std::string::String::from(\"{vname}\")),"
                            ),
                            VariantShape::Tuple(1) => format!(
                                "{name}::{vname}(__f0) => ::serde::json::Value::Object(\
                                 ::std::vec![(::std::string::String::from(\"{vname}\"), \
                                 ::serde::Serialize::to_json(__f0))]),"
                            ),
                            VariantShape::Tuple(n) => {
                                let binds: Vec<String> =
                                    (0..*n).map(|k| format!("__f{k}")).collect();
                                let items: Vec<String> = (0..*n)
                                    .map(|k| format!("::serde::Serialize::to_json(__f{k})"))
                                    .collect();
                                format!(
                                    "{name}::{vname}({}) => ::serde::json::Value::Object(\
                                     ::std::vec![(::std::string::String::from(\"{vname}\"), \
                                     ::serde::json::Value::Array(::std::vec![{}]))]),",
                                    binds.join(", "),
                                    items.join(", ")
                                )
                            }
                            VariantShape::Named(fields) => {
                                let binds = fields.join(", ");
                                let inner = obj_literal_of_fields(fields, "");
                                format!(
                                    "{name}::{vname} {{ {binds} }} => \
                                     ::serde::json::Value::Object(::std::vec![(\
                                     ::std::string::String::from(\"{vname}\"), {inner})]),"
                                )
                            }
                        }
                    })
                    .collect();
                format!("match self {{\n{}\n}}", arms.join("\n"))
            }
        }
    };

    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_json(&self) -> ::serde::json::Value {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// `Object(vec![("f", to_json(&PREFIXf)), ...])` for named fields. With an
/// empty prefix the fields are taken from local bindings (enum match arms);
/// references are added as needed.
fn obj_literal_of_fields(fields: &[String], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            let access = if prefix.is_empty() {
                f.clone()
            } else {
                format!("&{prefix}{f}")
            };
            format!("(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_json({access}))")
        })
        .collect();
    format!(
        "::serde::json::Value::Object(::std::vec![{}])",
        entries.join(", ")
    )
}

// ---------------------------------------------------------------------------
// Deserialize generator
// ---------------------------------------------------------------------------

/// `#[derive(Deserialize)]` — decode from the `serde::json::Value` tree.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;

    let body = if let Some(mirror) = &item.try_from {
        format!(
            "let mirror: {mirror} = ::serde::Deserialize::from_json(v)?;\n\
             ::std::convert::TryFrom::try_from(mirror)\
                 .map_err(|e| ::serde::DeError::custom(e))"
        )
    } else {
        match &item.shape {
            Shape::Named(fields) => {
                let inits = named_field_inits(fields);
                format!(
                    "let entries = v.as_object().ok_or_else(|| ::serde::DeError::custom(\
                     \"expected object for {name}\"))?;\n\
                     ::std::result::Result::Ok({name} {{ {inits} }})"
                )
            }
            Shape::Tuple(1) => {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_json(v)?))")
            }
            Shape::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_json(&items[{k}])?"))
                    .collect();
                format!(
                    "match v {{\n\
                         ::serde::json::Value::Array(items) if items.len() == {n} => \
                             ::std::result::Result::Ok({name}({items})),\n\
                         other => ::std::result::Result::Err(::serde::DeError::custom(\
                             format!(\"expected {n}-element array for {name}, got {{}}\", \
                             other.kind()))),\n\
                     }}",
                    items = items.join(", ")
                )
            }
            Shape::Unit => format!("::std::result::Result::Ok({name})"),
            Shape::Enum(variants) => enum_deserialize_body(name, variants),
        }
    };

    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_json(v: &::serde::json::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .unwrap()
}

fn named_field_inits(fields: &[String]) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_json(::serde::json::field(entries, \"{f}\")?)?"
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn enum_deserialize_body(name: &str, variants: &[Variant]) -> String {
    // Externally tagged: unit variants decode from a bare string, payload
    // variants from a single-entry `{"Variant": payload}` object.
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, VariantShape::Unit))
        .map(|v| {
            format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),",
                vname = v.name
            )
        })
        .collect();

    let tagged_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.shape {
                VariantShape::Unit => None,
                VariantShape::Tuple(1) => Some(format!(
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                     ::serde::Deserialize::from_json(inner)?)),"
                )),
                VariantShape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_json(&items[{k}])?"))
                        .collect();
                    Some(format!(
                        "\"{vname}\" => match inner {{\n\
                             ::serde::json::Value::Array(items) if items.len() == {n} => \
                                 ::std::result::Result::Ok({name}::{vname}({items})),\n\
                             other => ::std::result::Result::Err(::serde::DeError::custom(\
                                 format!(\"expected {n}-element array for {name}::{vname}, \
                                 got {{}}\", other.kind()))),\n\
                         }},",
                        items = items.join(", ")
                    ))
                }
                VariantShape::Named(fields) => {
                    let inits = named_field_inits(fields);
                    Some(format!(
                        "\"{vname}\" => {{\n\
                             let entries = inner.as_object().ok_or_else(|| \
                                 ::serde::DeError::custom(\
                                 \"expected object payload for {name}::{vname}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                         }},"
                    ))
                }
            }
        })
        .collect();

    format!(
        "match v {{\n\
             ::serde::json::Value::Str(tag) => match tag.as_str() {{\n\
                 {unit_arms}\n\
                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"unknown unit variant `{{other}}` for {name}\"))),\n\
             }},\n\
             ::serde::json::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 match tag.as_str() {{\n\
                     {tagged_arms}\n\
                     other => ::std::result::Result::Err(::serde::DeError::custom(\
                         format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                 }}\n\
             }},\n\
             other => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"expected enum {name}, got {{}}\", other.kind()))),\n\
         }}",
        unit_arms = unit_arms.join("\n"),
        tagged_arms = tagged_arms.join("\n"),
    )
}
