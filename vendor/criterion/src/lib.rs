//! Vendored, offline subset of the `criterion` benchmarking API.
//!
//! Implements the surface the six benches in `crates/bench` use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`] /
//! [`BenchmarkGroup::throughput`] / [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_with_setup`], [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — with simple wall-clock sampling instead of criterion's
//! statistical machinery. Each benchmark reports the mean plus the p50 and
//! p95 sample quantiles (tail latency matters for fsync-bound paths like
//! the E4/E6 group-commit sweep). Reports are plain text on stdout:
//!
//! ```text
//! e2_voter_throughput/sstore_push/2000
//!     time: [12.345 ms]  p50: [12.001 ms]  p95: [14.210 ms]  thrpt: [162.0 Kelem/s]
//! ```

use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark driver. One per `criterion_group!`-generated function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Throughput annotation for per-element / per-byte rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The measured routine processes this many elements per iteration.
    Elements(u64),
    /// The measured routine processes this many bytes per iteration.
    Bytes(u64),
}

/// A `function_name/parameter` benchmark id.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Things accepted as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Render the id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A group of benchmarks sharing sample-size / throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark (minimum 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure one benchmark function.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id.into_id());
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&full_id, &bencher.samples, self.throughput);
        self
    }

    /// Finish the group (kept for API parity; reporting is per-function).
    pub fn finish(self) {}
}

/// Passed to the closure of [`BenchmarkGroup::bench_function`]; runs and
/// times the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, called once per sample after one warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine(input)` where `setup()` builds a fresh input per
    /// sample and is excluded from the measurement.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm = setup();
        black_box(routine(warm));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Identity function that defeats constant-folding of the argument.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Sample quantile by the nearest-rank method (q in [0, 1]; the samples
/// slice must be sorted).
fn quantile(sorted: &[Duration], q: f64) -> Duration {
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn report(id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let mut line = format!(
        "{id:<48} time: [{}]  p50: [{}]  p95: [{}]",
        fmt_duration(mean),
        fmt_duration(quantile(&sorted, 0.50)),
        fmt_duration(quantile(&sorted, 0.95)),
    );
    if let Some(t) = throughput {
        let per_sec = |count: u64| count as f64 / mean.as_secs_f64();
        match t {
            Throughput::Elements(n) => {
                line.push_str(&format!("  thrpt: [{} elem/s]", fmt_rate(per_sec(n))));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  thrpt: [{} B/s]", fmt_rate(per_sec(n))));
            }
        }
    }
    println!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e6 {
        format!("{:.2} M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.2} K", r / 1e3)
    } else {
        format!("{r:.1}")
    }
}

/// Define a benchmark group function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
