//! Vendored, offline subset of the `serde` API.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors a minimal serialization framework under the same crate name.
//! The programming model matches serde where this repo uses it:
//!
//! * `#[derive(Serialize, Deserialize)]` on structs and enums (named,
//!   tuple/newtype, and unit shapes), including externally-tagged enum
//!   encoding identical to serde's default;
//! * the `#[serde(into = "T", try_from = "T")]` container attributes;
//! * transparent newtype structs (`BatchId(7)` encodes as `7`).
//!
//! The intermediate representation is the [`json::Value`] tree; the
//! companion vendored `serde_json` crate renders/parses JSON text. If the
//! real serde is ever restored as a dependency, no call site needs to
//! change — only the two vendored crates get deleted.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

use std::fmt;

/// Deserialization error: a human-readable path + message.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can encode itself into the [`json::Value`] tree.
pub trait Serialize {
    /// Encode `self`.
    fn to_json(&self) -> json::Value;
}

/// A type that can decode itself from the [`json::Value`] tree.
pub trait Deserialize: Sized {
    /// Decode a value of `Self`, or explain why the tree doesn't match.
    fn from_json(v: &json::Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> json::Value {
                json::Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &json::Value) -> Result<Self, DeError> {
                match v {
                    json::Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::custom(format!(
                            "integer {i} out of range for {}", stringify!($t)))),
                    other => Err(DeError::custom(format!(
                        "expected integer, got {}", other.kind()))),
                }
            }
        }
    )*};
}

int_impl!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, i128);

impl Serialize for f64 {
    fn to_json(&self) -> json::Value {
        json::Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_json(v: &json::Value) -> Result<Self, DeError> {
        match v {
            json::Value::Float(f) => Ok(*f),
            json::Value::Int(i) => Ok(*i as f64),
            // serde_json encodes non-finite floats as null; accept it back.
            json::Value::Null => Ok(f64::NAN),
            other => Err(DeError::custom(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> json::Value {
        json::Value::Float(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_json(v: &json::Value) -> Result<Self, DeError> {
        f64::from_json(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_json(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_json(v: &json::Value) -> Result<Self, DeError> {
        match v {
            json::Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_json(&self) -> json::Value {
        json::Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_json(v: &json::Value) -> Result<Self, DeError> {
        match v {
            json::Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_json(&self) -> json::Value {
        json::Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_json(&self) -> json::Value {
        json::Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_json(v: &json::Value) -> Result<Self, DeError> {
        let s = String::from_json(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> json::Value {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json(&self) -> json::Value {
        (**self).to_json()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(v: &json::Value) -> Result<Self, DeError> {
        T::from_json(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> json::Value {
        match self {
            None => json::Value::Null,
            Some(t) => t.to_json(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &json::Value) -> Result<Self, DeError> {
        match v {
            json::Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &json::Value) -> Result<Self, DeError> {
        match v {
            json::Value::Array(items) => items.iter().map(T::from_json).collect(),
            other => Err(DeError::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_json(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}
impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_json(v: &json::Value) -> Result<Self, DeError> {
        match v {
            json::Value::Array(items) => items.iter().map(T::from_json).collect(),
            other => Err(DeError::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

macro_rules! tuple_impl {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json(&self) -> json::Value {
                json::Value::Array(vec![$(self.$n.to_json()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json(v: &json::Value) -> Result<Self, DeError> {
                match v {
                    json::Value::Array(items) => {
                        let expected = [$(stringify!($n)),+].len();
                        if items.len() != expected {
                            return Err(DeError::custom(format!(
                                "expected {expected}-tuple, got array of {}", items.len())));
                        }
                        Ok(($($t::from_json(&items[$n])?,)+))
                    }
                    other => Err(DeError::custom(format!(
                        "expected array (tuple), got {}", other.kind()))),
                }
            }
        }
    )*};
}

tuple_impl! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_json(&self) -> json::Value {
        // Sort keys for deterministic output (tests diff snapshots).
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        json::Value::Object(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_json()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_json(v: &json::Value) -> Result<Self, DeError> {
        match v {
            json::Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
                .collect(),
            other => Err(DeError::custom(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_json(&self) -> json::Value {
        json::Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}
impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_json(v: &json::Value) -> Result<Self, DeError> {
        match v {
            json::Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
                .collect(),
            other => Err(DeError::custom(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}
