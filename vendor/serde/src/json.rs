//! The intermediate value tree shared by the vendored `serde` and
//! `serde_json` crates. Object entries keep insertion order so encoded
//! output is stable.

use crate::DeError;

/// A JSON-shaped dynamic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any integer (i128 covers the u64 and i64 ranges used in this repo).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; entries keep insertion order, lookup is linear.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Borrow the object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }
}

/// Look up a field in an object's entry list (derive-generated code calls
/// this for every struct field).
pub fn field<'a>(entries: &'a [(String, Value)], name: &str) -> Result<&'a Value, DeError> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}`")))
}
