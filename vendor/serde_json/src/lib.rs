//! Vendored, offline subset of `serde_json`: JSON text over the vendored
//! `serde` value tree. Provides the four entry points this workspace calls
//! (`to_string`, `from_str`, `to_writer`, `from_reader`) with the same
//! signatures and encoding conventions as the real crate:
//!
//! * externally-tagged enums, transparent newtypes (see `serde_derive`);
//! * non-finite floats encode as `null`;
//! * strings escape control characters with `\uXXXX`.

use serde::json::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{Read, Write};

/// Encode or decode failure.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Encode a value as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json());
    Ok(out)
}

/// Encode a value as JSON into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error(format!("write: {e}")))
}

/// Decode a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_json(&v).map_err(|e| Error(e.to_string()))
}

/// Decode a value from a reader.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut s = String::new();
    reader
        .read_to_string(&mut s)
        .map_err(|e| Error(format!("read: {e}")))?;
    from_str(&s)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's Display prints the shortest round-tripping form,
                // but bare integral floats need a ".0" so they re-parse as
                // floats rather than integers.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // serde_json's default behaviour for NaN / infinities.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(Value::Array(items)),
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(Value::Object(entries)),
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error(format!(
                "unexpected byte `{}` at {}",
                other as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        // Surrogate pairs for astral-plane characters.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error("unpaired surrogate in \\u escape".into()));
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        out.push(c.ok_or_else(|| Error("invalid \\u escape".into()))?);
                    }
                    _ => return Err(Error("invalid escape".into())),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(Error("truncated UTF-8 in string".into()));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| Error("truncated \\u".into()))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error("bad hex digit".into()))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("non-UTF-8 number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip() {
        let cases = [
            r#"null"#,
            r#"true"#,
            r#"[1,2,3]"#,
            r#"{"a":1,"b":[-2.5,"x\ny"]}"#,
            r#""quote \" backslash \\""#,
        ];
        for c in cases {
            let v: Value = {
                let mut p = Parser {
                    bytes: c.as_bytes(),
                    pos: 0,
                };
                p.parse_value().unwrap()
            };
            let mut out = String::new();
            write_value(&mut out, &v);
            let v2: Value = {
                let mut p = Parser {
                    bytes: out.as_bytes(),
                    pos: 0,
                };
                p.parse_value().unwrap()
            };
            assert_eq!(v, v2);
        }
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let r: Result<Vec<i64>, Error> = from_str("[1, 2");
        assert!(r.is_err());
        let r: Result<Vec<i64>, Error> = from_str("{\"BorderBatch\":{\"batch\":3,");
        assert!(r.is_err());
    }

    #[test]
    fn surrogate_escapes() {
        // A valid escaped surrogate pair decodes to the astral-plane char.
        let ok: String = from_str(r#""\ud83e\udd80""#).unwrap();
        assert_eq!(ok, "\u{1F980}");
        // A high surrogate followed by a \u escape that is not a low
        // surrogate must be an error - not a panic (debug) or a silently
        // wrong character (release).
        let bad: Result<String, Error> = from_str(r#""\ud800\u0041""#);
        assert!(bad.is_err());
        // High surrogate followed by a plain character: also an error.
        let bad2: Result<String, Error> = from_str(r#""\ud800A""#);
        assert!(bad2.is_err());
        // A lone high surrogate at end of string: also an error.
        let lone: Result<String, Error> = from_str(r#""\ud800""#);
        assert!(lone.is_err());
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
