//! Collection strategies (`prop::collection::*`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;
use std::collections::BTreeMap;
use std::ops::Range;

/// Strategy for `Vec<T>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K, V>` with a target size drawn from `size`.
/// Duplicate keys are retried a bounded number of times, so a dense key
/// strategy may produce slightly fewer entries than the target.
pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy { key, value, size }
}

/// See [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: Range<usize>,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let target = rng.random_range(self.size.clone());
        let mut map = BTreeMap::new();
        let mut attempts = 0;
        while map.len() < target && attempts < target * 4 + 8 {
            map.insert(self.key.generate(rng), self.value.generate(rng));
            attempts += 1;
        }
        map
    }
}
