//! Vendored, offline subset of the `proptest` API.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! minimal property-testing framework under the same crate name. It keeps
//! proptest's programming model for everything this repo's five property
//! suites use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]`, multiple
//!   `#[test]` functions, and `name in strategy` bindings;
//! * [`prop_assert!`] / [`prop_assert_eq!`] (early-return test-case errors
//!   with formatted messages);
//! * strategies: `any::<T>()`, integer ranges, [`strategy::Just`],
//!   [`prop_oneof!`], tuples, `&str` regex-lite patterns (`.{a,b}`),
//!   `prop::collection::{vec, btree_map}`, `.prop_map`, `.prop_recursive`,
//!   and [`strategy::BoxedStrategy`].
//!
//! **Deliberate simplification:** failing cases are *not shrunk*. The
//! failure report instead includes the deterministic per-case seed and the
//! generated arguments, which is enough to reproduce (seeds derive from the
//! test name + case index, so a failure reproduces on re-run).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced strategy modules (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Run each `#[test] fn name(arg in strategy, ...) { body }` against
/// `config.cases` generated inputs. See the crate docs for the differences
/// from real proptest (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        stringify!($name),
                        __case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __args_dbg = ::std::format!("{:?}", ($(&$arg,)+));
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__e) = __result {
                        ::std::panic!(
                            "proptest `{}` case {}/{} failed: {}\n  generated args: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __e,
                            __args_dbg,
                        );
                    }
                }
            }
        )*
    };
}

/// Fail the current test case (early return) when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current test case when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: `{:?}`\n right: `{:?}`",
            ::std::format!($($fmt)+),
            __l,
            __r
        );
    }};
}

/// Fail the current test case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            __l
        );
    }};
}

/// Uniform choice between several strategies producing the same value type.
/// (Weighted arms from real proptest are not supported.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
