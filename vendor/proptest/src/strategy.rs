//! The [`Strategy`] trait and combinators.
//!
//! Unlike real proptest there is no value tree / shrinking machinery: a
//! strategy is just a recipe for generating one value from the per-case
//! deterministic RNG.

use crate::test_runner::TestRng;
use rand::Rng as _;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `recurse` receives the strategy for the
    /// previous depth level and returns the strategy for one level deeper;
    /// it is applied `depth` times starting from `self` (the leaf).
    ///
    /// The `desired_size` / `expected_branch_size` hints from real proptest
    /// are accepted and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            current = recurse(current).boxed();
        }
        current
    }

    /// Type-erase the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view of [`Strategy`] used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice across type-erased arms (the [`crate::prop_oneof!`]
/// backing type).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Choice over `arms`; panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// ---------------------------------------------------------------------------
// Regex-lite string patterns
// ---------------------------------------------------------------------------

/// `&str` patterns act as string strategies, like in real proptest. Only
/// the forms this repo uses are interpreted:
///
/// * `.{a,b}` — a string of `a..=b` arbitrary characters;
/// * anything else — treated as a literal (generated verbatim).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        if let Some((lo, hi)) = parse_dot_repeat(self) {
            let len = rng.random_range(lo..hi + 1);
            (0..len).map(|_| arbitrary_char(rng)).collect()
        } else {
            (*self).to_string()
        }
    }
}

/// Parse `.{a,b}` into `(a, b)`.
fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// A character mix that exercises lexers: mostly printable ASCII, with
/// occasional quotes, whitespace, control characters, and multibyte
/// code points.
fn arbitrary_char(rng: &mut TestRng) -> char {
    const SPICE: &[char] = &[
        '\'', '"', '\\', '\n', '\t', '\0', ';', '(', ')', ',', '.', '-', '*', '/', '?', '%', '_',
        'é', '日', '🦀', '\u{7f}', ' ',
    ];
    match rng.random_range(0..10u32) {
        0..=6 => {
            // Printable ASCII.
            char::from_u32(rng.random_range(0x20u32..0x7f)).unwrap()
        }
        7 | 8 => SPICE[rng.random_range(0..SPICE.len())],
        _ => {
            // Any valid scalar value below the astral planes.
            loop {
                if let Some(c) = char::from_u32(rng.random_range(0u32..0xFFFF)) {
                    return c;
                }
            }
        }
    }
}
