//! Test-runner support types: configuration, case errors, and the
//! deterministic per-case RNG.

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Subset of proptest's run configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases (overridable via the `PROPTEST_CASES` env var, like the
    /// real crate).
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fail the case with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Alias kept for API parity with `TestCaseError::Fail(reason)` users.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Result alias matching proptest's.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic per-case RNG: seeded from the test name and case index so
/// every run generates the same inputs (re-running reproduces a failure).
#[derive(Debug, Clone)]
pub struct TestRng(rand::rngs::StdRng);

impl TestRng {
    /// RNG for case `case` of test `test_name`.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h = DefaultHasher::new();
        test_name.hash(&mut h);
        case.hash(&mut h);
        TestRng(<rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
            h.finish(),
        ))
    }
}

impl rand::Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        rand::Rng::next_u64(&mut self.0)
    }
}
