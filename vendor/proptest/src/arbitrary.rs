//! `any::<T>()` — whole-domain strategies for primitives, with edge-case
//! biasing (real proptest gets the same effect from its binary-search
//! shrinking; without shrinking we bias generation instead).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// Strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // ~20% edge cases, ~20% small values, else uniform bits.
                match rng.random_range(0..10u32) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 | 4 => (rng.next_u64() % 32) as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        const EDGES: &[f64] = &[
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.5,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::EPSILON,
        ];
        match rng.random_range(0..10u32) {
            0 | 1 => EDGES[rng.random_range(0..EDGES.len())],
            2..=5 => {
                // Human-scale magnitudes.
                (rng.random::<f64>() - 0.5) * 2e6
            }
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        loop {
            if let Some(c) = char::from_u32(rng.random_range(0u32..0x11_0000)) {
                return c;
            }
        }
    }
}
