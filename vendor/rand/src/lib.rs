//! Vendored, offline subset of the `rand` 0.9 API.
//!
//! Provides exactly what this workspace's workload generators use:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `random`, `random_range`, and `random_bool`. The generator is
//! SplitMix64-seeded xoshiro256**, which is deterministic, fast, and more
//! than adequate for workload simulation (it is NOT cryptographic, same as
//! the real `StdRng` contract of being reproducible across runs given one
//! seed — do not use for secrets).

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of a [`Random`]-implementing type.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Sample uniformly from a half-open integer range. Panics if empty.
    fn random_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// Bernoulli trial with probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }
}

/// Types sampleable uniformly over their whole domain (for floats: [0, 1)).
pub trait Random {
    /// Draw one value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Random for u64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Random for i64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

/// Integer types usable with [`Rng::random_range`].
pub trait UniformInt: Sized {
    /// Uniform sample from `range`.
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Uniform u64 in [0, n) by widening multiply (Lemire's method, without the
/// rejection step — the bias is < 2^-32 for the range sizes used here).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! uniform_int_impl {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(
                    range.start < range.end,
                    "random_range: empty range {}..{}", range.start, range.end
                );
                let span = range.end.abs_diff(range.start) as u64;
                let offset = uniform_below(rng, span);
                // Wrapping add in the unsigned domain handles signed starts.
                ((range.start as i128) + offset as i128) as $t
            }
        }
    )*};
}

uniform_int_impl!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded via
    /// SplitMix64 (the reference seeding procedure from Blackman/Vigna).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u = rng.random_range(0usize..3);
            assert!(u < 3);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_is_sane() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }
}
