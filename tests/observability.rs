//! Integration tests for the telemetry export layer:
//! `Cluster::observability_report()` must emit a schema-stable,
//! JSON-round-trippable document whose per-stage histogram counts
//! reconcile with the cluster's own batch counters, and disabling
//! tracing must zero the stage recording without breaking anything.
//!
//! The obs stage histograms are process-wide; each test windows them to
//! its own cluster via the built-in baseline, but the tests still
//! serialize on a mutex so one test's traffic never lands inside
//! another's window.

use sstore::common::obs;
use sstore::core::workloads::{count_events_rows, deploy_count_events};
use sstore::{Cluster, ObsReport, RouteSpec, SStoreBuilder};
use std::path::PathBuf;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn tempdir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("sstore-it-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// Every stage key the report promises, in pipeline order.
const STAGE_KEYS: [&str; 9] = [
    "routed",
    "queued",
    "logged",
    "executed",
    "fsynced",
    "prepared",
    "decided",
    "forwarded",
    "acked",
];

#[test]
fn report_schema_round_trips_and_counts_reconcile() {
    let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    obs::set_enabled(true);
    let dir = tempdir("schema");
    let cluster = Cluster::with_config(
        2,
        RouteSpec::hash(0),
        64,
        &SStoreBuilder::new().durability(&dir, 1),
        deploy_count_events,
    )
    .unwrap();

    let submissions = 25usize;
    let mut shard_batches = 0u64;
    for i in 0..submissions {
        let ticket = cluster
            .submit_batch_async("count_events", count_events_rows(8, 4 + i as i64 % 3, 5))
            .unwrap();
        // One border batch is created per partition that received rows.
        shard_batches += ticket.wait().unwrap().len() as u64;
    }
    cluster.quiesce().unwrap();

    let report = cluster.observability_report();

    // Schema: every promised stage key present.
    for key in STAGE_KEYS {
        assert!(report.stages.contains_key(key), "missing stage `{key}`");
    }

    // Reconciliation: the windowed stage counts must equal this
    // cluster's own counters. Each client submission records one
    // `routed`; each per-partition border batch records one `queued`,
    // `logged` (durable log present), and `executed`.
    let metrics = &report.metrics;
    let submitted: u64 = metrics.partitions.iter().map(|p| p.batches_submitted).sum();
    assert_eq!(submitted, shard_batches, "metrics vs tickets disagree");
    assert_eq!(report.stages["routed"].count, submissions as u64);
    assert_eq!(report.stages["queued"].count, shard_batches);
    assert_eq!(report.stages["logged"].count, shard_batches);
    assert_eq!(report.stages["executed"].count, shard_batches);
    // Group commit of 1: every logged batch also observed its fsync.
    assert_eq!(report.stages["fsynced"].count, shard_batches);
    // No cross-partition edges or 2PC in this workload.
    assert_eq!(report.stages["forwarded"].count, 0);
    assert_eq!(report.stages["prepared"].count, 0);

    // Latencies are cumulative since submit, so the waterfall is
    // monotone in expectation: executed p95 can't precede queued p95.
    assert!(report.stages["executed"].p95_us >= report.stages["queued"].p95_us);

    // The slowest-batch spans come from this cluster's window and carry
    // per-stage timelines.
    assert!(!report.slowest_batches.is_empty());
    for span in &report.slowest_batches {
        assert!(!span.stages.is_empty());
    }

    // JSON round trip preserves the document.
    let json = report.to_json();
    let parsed = ObsReport::from_json(&json).expect("report JSON must parse");
    assert_eq!(parsed.stages, report.stages);
    assert_eq!(
        parsed.metrics.total_committed(),
        report.metrics.total_committed()
    );
    assert_eq!(parsed.slowest_batches.len(), report.slowest_batches.len());

    drop(cluster);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn disabled_tracing_records_no_stages() {
    let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    obs::set_enabled(false);
    let cluster = Cluster::new(2, &SStoreBuilder::new(), deploy_count_events).unwrap();
    for _ in 0..10 {
        cluster
            .submit_batch_async("count_events", count_events_rows(6, 5, 3))
            .unwrap()
            .wait()
            .unwrap();
    }
    cluster.quiesce().unwrap();
    let report = cluster.observability_report();
    obs::set_enabled(true);

    for key in STAGE_KEYS {
        assert_eq!(
            report.stages[key].count, 0,
            "stage `{key}` recorded with tracing off"
        );
    }
    // The rest of the report still works: committed work is visible
    // through the embedded metrics even with tracing off.
    assert!(report.metrics.total_committed() >= 10);
    assert!(report.skew >= 1.0);
    ObsReport::from_json(&report.to_json()).expect("report JSON must parse");
}

#[test]
fn two_pc_stages_appear_for_multi_partition_transactions() {
    use sstore::core::workloads::deploy_count_events_multi;
    let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    obs::set_enabled(true);
    let cluster = Cluster::new(2, &SStoreBuilder::new(), deploy_count_events_multi).unwrap();
    let baseline_prepared = cluster.observability_report().stages["prepared"].count;
    // Keys 0 and 1 hash to different partitions with overwhelming
    // likelihood over several submissions; each straddling batch runs
    // 2PC and records prepared/decided on every participant.
    let mut straddled = 0u64;
    for _ in 0..8 {
        let outcomes = cluster
            .submit_batch_async("count_events", count_events_rows(8, 4, 5))
            .unwrap()
            .wait()
            .unwrap();
        if outcomes.len() > 1 {
            straddled += outcomes.len() as u64;
        }
    }
    cluster.quiesce().unwrap();
    let report = cluster.observability_report();
    assert!(straddled > 0, "expected at least one straddling batch");
    assert_eq!(
        report.stages["prepared"].count - baseline_prepared,
        straddled
    );
    assert_eq!(
        report.stages["prepared"].count,
        report.stages["decided"].count
    );
}
