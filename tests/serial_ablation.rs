//! Ablation for the paper's serial-execution rule (§2): "when there are
//! shared writable tables along a workflow, S-Store requires a serial
//! execution of the involved stored procedures."
//!
//! With an asynchronous client (several border batches queued at once) we
//! force the rule OFF on the Voter workflow — whose three procedures share
//! the votes/counts tables — and show the same anomaly class the H-Store
//! baseline exhibits. The rule is load-bearing, not incidental.

use sstore_core::common::Value;
use sstore_core::SStoreBuilder;
use sstore_voter::checker::oracle_state;
use sstore_voter::{capture_state, diff_states, install, Oracle, VoteGen, VoterConfig, WindowImpl};

fn config() -> VoterConfig {
    VoterConfig {
        num_contestants: 10,
        elimination_every: 20,
        trending_window: 20,
        trending_slide: 5,
    }
}

#[test]
fn auto_detection_enables_serial_for_voter() {
    let mut db = SStoreBuilder::new().build().unwrap();
    install(&mut db, WindowImpl::Native, &config()).unwrap();
    assert!(
        db.workflow().has_shared_writables(),
        "Voter's SPs share writable tables; the engine must detect it"
    );
}

/// Run the voter workload with `burst` batches queued before each drain.
fn run_async(
    serial: Option<bool>,
    votes: &[sstore_voter::workload::Vote],
    burst: usize,
) -> sstore_voter::VoterState {
    let mut builder = SStoreBuilder::new();
    if let Some(s) = serial {
        builder = builder.serial_workflow(s);
    }
    let mut db = builder.build().unwrap();
    install(&mut db, WindowImpl::Native, &config()).unwrap();
    for chunk in votes.chunks(burst) {
        for v in chunk {
            db.submit_batch_async(
                "validate",
                vec![vec![Value::Int(v.phone), Value::Int(v.contestant)]],
            )
            .unwrap();
        }
        db.run_queued().unwrap();
    }
    capture_state(&mut db).unwrap()
}

#[test]
fn serial_execution_is_exact_even_with_async_clients() {
    let cfg = config();
    let votes = VoteGen::new(21, cfg.num_contestants).take(1_500);
    let mut oracle = Oracle::new(cfg);
    for v in &votes {
        oracle.feed(v.phone, v.contestant);
    }
    let expected = oracle_state(&oracle);
    for burst in [1usize, 8, 64] {
        let state = run_async(None, &votes, burst);
        let d = diff_states(&expected, &state);
        assert!(
            d.is_clean(),
            "burst={burst}: serial S-Store diverged: {d:?}"
        );
    }
}

#[test]
fn disabling_serial_execution_on_shared_tables_breaks_correctness() {
    let cfg = config();
    let votes = VoteGen::new(21, cfg.num_contestants).take(1_500);
    let mut oracle = Oracle::new(cfg);
    for v in &votes {
        oracle.feed(v.phone, v.contestant);
    }
    let expected = oracle_state(&oracle);

    // Pipelined scheduling + async bursts: batch b+1's SP1 runs before
    // batch b's SP2/SP3 — eliminations fire late, tallies drift.
    let state = run_async(Some(false), &votes, 64);
    let d = diff_states(&expected, &state);
    assert!(
        !d.is_clean(),
        "expected anomalies with serial execution disabled on shared tables"
    );
    assert!(d.wrong_eliminations > 0 || d.tally_mismatches > 0, "{d:?}");

    // Control: with burst=1 there is nothing to interleave with; even the
    // pipelined scheduler is exact.
    let control = run_async(Some(false), &votes, 1);
    assert!(diff_states(&expected, &control).is_clean());
}
