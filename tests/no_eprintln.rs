//! Gate: library code must log through `sstore_common::slog!` (leveled,
//! structured, counted in the obs registry) — never raw `eprintln!`.
//! Binaries (`src/bin/`, `crates/*/src/bin/`) are exempt: they talk to a
//! human terminal by design. Doc prose mentioning the macro name without
//! the call's open paren is fine too.

use std::path::{Path, PathBuf};

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            // Binary targets are allowed to print to stderr directly.
            if path.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn library_sources_use_slog_not_eprintln() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut sources = Vec::new();
    rust_sources(&root.join("src"), &mut sources);
    for entry in std::fs::read_dir(root.join("crates")).unwrap() {
        let src = entry.unwrap().path().join("src");
        if src.is_dir() {
            rust_sources(&src, &mut sources);
        }
    }
    assert!(
        sources.len() > 20,
        "walk looks broken: only {} sources found",
        sources.len()
    );

    let mut offenders = Vec::new();
    for path in sources {
        let text = std::fs::read_to_string(&path).unwrap();
        for (i, line) in text.lines().enumerate() {
            if line.contains("eprintln!(") {
                offenders.push(format!("{}:{}: {}", path.display(), i + 1, line.trim()));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "raw eprintln! in library code (use sstore_common::slog! instead):\n{}",
        offenders.join("\n")
    );
}
