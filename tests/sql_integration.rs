//! End-to-end SQL coverage through the full stack (client → PE → EE →
//! storage): the statement surface every application and trigger uses.

use sstore_core::common::Value;
use sstore_core::SStoreBuilder;

fn db_with_data() -> sstore_core::SStore {
    let mut db = SStoreBuilder::new().build().unwrap();
    db.ddl(
        "CREATE TABLE orders (order_id INT NOT NULL, customer VARCHAR(32) NOT NULL, \
         amount FLOAT NOT NULL, region VARCHAR(16), PRIMARY KEY (order_id))",
    )
    .unwrap();
    db.ddl(
        "CREATE TABLE customers (name VARCHAR(32) NOT NULL, tier INT NOT NULL, \
         PRIMARY KEY (name))",
    )
    .unwrap();
    for (id, cust, amount, region) in [
        (1, "acme", 100.0, Some("east")),
        (2, "acme", 250.0, Some("west")),
        (3, "globex", 75.5, None),
        (4, "initech", 300.0, Some("east")),
        (5, "globex", 120.0, Some("east")),
    ] {
        db.setup_sql(
            "INSERT INTO orders VALUES (?, ?, ?, ?)",
            &[
                Value::Int(id),
                Value::Text(cust.into()),
                Value::Float(amount),
                region.map(|r| Value::Text(r.into())).unwrap_or(Value::Null),
            ],
        )
        .unwrap();
    }
    for (name, tier) in [("acme", 1), ("globex", 2), ("initech", 1)] {
        db.setup_sql(
            "INSERT INTO customers VALUES (?, ?)",
            &[Value::Text(name.into()), Value::Int(tier)],
        )
        .unwrap();
    }
    db
}

#[test]
fn aggregates_with_grouping_and_having() {
    let mut db = db_with_data();
    let r = db
        .query(
            "SELECT customer, COUNT(*) AS n, SUM(amount) AS total, AVG(amount) AS mean \
             FROM orders GROUP BY customer HAVING SUM(amount) > 150.0 \
             ORDER BY total DESC",
            &[],
        )
        .unwrap();
    assert_eq!(r.columns, vec!["customer", "n", "total", "mean"]);
    assert_eq!(r.rows.len(), 3);
    assert_eq!(r.rows[0][0], Value::Text("acme".into()));
    assert_eq!(r.rows[0][2], Value::Float(350.0));
}

#[test]
fn joins_with_aliases_and_predicates() {
    let mut db = db_with_data();
    let r = db
        .query(
            "SELECT o.order_id, c.tier FROM orders o \
             JOIN customers c ON o.customer = c.name \
             WHERE c.tier = 2 ORDER BY o.order_id",
            &[],
        )
        .unwrap();
    let ids: Vec<i64> = r.rows.iter().map(|x| x[0].as_int().unwrap()).collect();
    assert_eq!(ids, vec![3, 5]);
}

#[test]
fn scalar_subqueries_in_predicates() {
    let mut db = db_with_data();
    let r = db
        .query(
            "SELECT order_id FROM orders \
             WHERE amount > (SELECT AVG(amount) FROM orders) ORDER BY order_id",
            &[],
        )
        .unwrap();
    let ids: Vec<i64> = r.rows.iter().map(|x| x[0].as_int().unwrap()).collect();
    assert_eq!(ids, vec![2, 4]); // avg = 169.1
}

#[test]
fn null_semantics_through_the_stack() {
    let mut db = db_with_data();
    let r = db
        .query("SELECT COUNT(*), COUNT(region) FROM orders", &[])
        .unwrap();
    assert_eq!(r.rows[0], vec![Value::Int(5), Value::Int(4)]);
    let r = db
        .query("SELECT order_id FROM orders WHERE region IS NULL", &[])
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    // NULL comparisons never match.
    let r = db
        .query("SELECT COUNT(*) FROM orders WHERE region = NULL", &[])
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(0));
}

#[test]
fn expressions_in_lists_between_and_functions() {
    let mut db = db_with_data();
    let r = db
        .query(
            "SELECT order_id, UPPER(customer) FROM orders \
             WHERE order_id IN (1, 3, 5) AND amount BETWEEN 70.0 AND 130.0 \
             ORDER BY 1",
            &[],
        )
        .unwrap();
    assert_eq!(r.rows.len(), 3);
    assert_eq!(r.rows[1][1], Value::Text("GLOBEX".into()));
    let r = db
        .query(
            "SELECT ABS(-5), SQRT(16.0), FLOOR(2.9), CEIL(2.1), \
             POWER(2.0, 8.0), LENGTH('hello'), COALESCE(NULL, 'x')",
            &[],
        )
        .unwrap();
    assert_eq!(
        r.rows[0],
        vec![
            Value::Int(5),
            Value::Float(4.0),
            Value::Int(2),
            Value::Int(3),
            Value::Float(256.0),
            Value::Int(5),
            Value::Text("x".into()),
        ]
    );
}

#[test]
fn parameterized_statements_and_ordering() {
    let mut db = db_with_data();
    let r = db
        .query(
            "SELECT order_id FROM orders WHERE customer = ? OR amount >= ? \
             ORDER BY amount DESC, order_id ASC LIMIT 3",
            &[Value::Text("globex".into()), Value::Float(250.0)],
        )
        .unwrap();
    let ids: Vec<i64> = r.rows.iter().map(|x| x[0].as_int().unwrap()).collect();
    assert_eq!(ids, vec![4, 2, 5]);
}

#[test]
fn errors_surface_cleanly() {
    let mut db = db_with_data();
    assert_eq!(
        db.query("SELECT nope FROM orders", &[]).unwrap_err().kind(),
        "not_found"
    );
    assert_eq!(db.query("SELECT 1 +", &[]).unwrap_err().kind(), "parse");
    assert_eq!(db.query("FETCH ALL", &[]).unwrap_err().kind(), "parse");
    assert_eq!(
        db.query("SELECT 1 / 0", &[]).unwrap_err().kind(),
        "constraint"
    );
    assert_eq!(
        db.query(
            "SELECT amount FROM orders WHERE region GROUP BY region",
            &[]
        )
        .unwrap_err()
        .kind(),
        "parse", // bare column outside GROUP BY
    );
}

#[test]
fn select_distinct_deduplicates() {
    let mut db = db_with_data();
    let r = db
        .query(
            "SELECT DISTINCT customer FROM orders ORDER BY customer",
            &[],
        )
        .unwrap();
    let names: Vec<&str> = r.rows.iter().map(|x| x[0].as_text().unwrap()).collect();
    assert_eq!(names, vec!["acme", "globex", "initech"]);
    // DISTINCT over multiple columns.
    let r = db
        .query("SELECT DISTINCT customer, region FROM orders", &[])
        .unwrap();
    assert_eq!(r.rows.len(), 5); // all (customer, region) pairs are unique
}

#[test]
fn count_distinct() {
    let mut db = db_with_data();
    let r = db
        .query(
            "SELECT COUNT(region), COUNT(DISTINCT region), COUNT(DISTINCT customer) FROM orders",
            &[],
        )
        .unwrap();
    assert_eq!(r.rows[0], vec![Value::Int(4), Value::Int(2), Value::Int(3)]);
    // Grouped distinct.
    let r = db
        .query(
            "SELECT customer, COUNT(DISTINCT region) FROM orders \
             GROUP BY customer ORDER BY customer",
            &[],
        )
        .unwrap();
    assert_eq!(r.rows[0][1], Value::Int(2)); // acme: east + west
    assert_eq!(r.rows[1][1], Value::Int(1)); // globex: east (one NULL skipped)
}

#[test]
fn exists_subqueries() {
    let mut db = db_with_data();
    let r = db
        .query(
            "SELECT COUNT(*) FROM customers \
             WHERE EXISTS (SELECT 1 FROM orders WHERE amount > 299.0)",
            &[],
        )
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(3)); // uncorrelated: true for all
    let r = db
        .query(
            "SELECT COUNT(*) FROM customers \
             WHERE NOT EXISTS (SELECT 1 FROM orders WHERE amount > 1000.0)",
            &[],
        )
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(3));
    let r = db
        .query(
            "SELECT EXISTS (SELECT 1 FROM orders WHERE region IS NULL)",
            &[],
        )
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Bool(true));
}

#[test]
fn order_by_alias_and_expression() {
    let mut db = db_with_data();
    let r = db
        .query(
            "SELECT customer, SUM(amount) AS total FROM orders \
             GROUP BY customer ORDER BY SUM(amount) ASC",
            &[],
        )
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Text("globex".into()));
    let r2 = db
        .query(
            "SELECT customer, SUM(amount) AS total FROM orders \
             GROUP BY customer ORDER BY total ASC",
            &[],
        )
        .unwrap();
    assert_eq!(r.rows, r2.rows);
}
