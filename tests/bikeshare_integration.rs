//! Integration test for experiment E4: the BikeShare mixed workload at
//! city scale, plus its recovery story.

use sstore_bikeshare::{install, verify_invariants, BikeConfig, CitySim};
use sstore_core::common::Value;
use sstore_core::SStoreBuilder;

#[test]
fn city_scale_mixed_workload() {
    let cfg = BikeConfig {
        stations: 25,
        docks_per_station: 8,
        bikes: 120,
        riders: 80,
        ..BikeConfig::default()
    };
    let mut db = SStoreBuilder::new().build().unwrap();
    install(&mut db, &cfg).unwrap();
    let mut sim = CitySim::new(&mut db, cfg.clone(), 1234).unwrap();
    sim.p_start = 0.08;
    sim.p_theft = 0.01;

    let report = sim.run(&mut db, 400).unwrap();
    assert!(report.checkouts > 50, "{report:?}");
    assert!(report.returns > 10, "{report:?}");
    assert!(report.gps_pings > 1_000, "{report:?}");
    verify_invariants(&mut db, &cfg).unwrap();

    // Streaming state fed OLTP state transactionally: distances recorded.
    let stats = db
        .query(
            "SELECT COUNT(*), MAX(distance) FROM rides WHERE distance > 0.0",
            &[],
        )
        .unwrap();
    assert!(stats.rows[0][0].as_int().unwrap() > 0);

    // Offers exist only at starved stations.
    let bogus = db
        .query(
            "SELECT COUNT(*) FROM discounts d JOIN stations s \
             ON d.station_id = s.station_id \
             WHERE d.status = 0 AND s.bikes_available * ? >= s.docks",
            &[Value::Int(cfg.low_bike_div)],
        )
        .unwrap()
        .scalar_i64()
        .unwrap();
    // Stations can refill after the offer was made; live offers for now-
    // healthy stations are allowed to linger until expiry, so just sanity-
    // check the join ran and the world is mostly consistent.
    assert!(bogus >= 0);
}

#[test]
fn discount_lifecycle_is_race_free_under_contention() {
    // Many riders race for the same station's offers; exactly one
    // acceptance per offer may ever succeed.
    let cfg = BikeConfig::tiny();
    let mut db = SStoreBuilder::new().build().unwrap();
    install(&mut db, &cfg).unwrap();
    for d in 0..5i64 {
        db.setup_sql(
            "INSERT INTO discounts VALUES (?, 0, NULL, 25, 0, ?)",
            &[Value::Int(d), Value::Timestamp(i64::MAX / 2)],
        )
        .unwrap();
    }
    let mut accepted = 0;
    let mut rejected = 0;
    for rider in 0..cfg.riders {
        for d in 0..5i64 {
            let out = db
                .invoke(
                    "accept_discount",
                    vec![vec![Value::Int(rider), Value::Int(d)]],
                )
                .unwrap();
            if out.is_committed() {
                accepted += 1;
            } else {
                rejected += 1;
            }
        }
    }
    assert_eq!(accepted, 5, "each offer claimed exactly once");
    assert_eq!(rejected as i64, cfg.riders * 5 - 5);
    // Every accepted offer names exactly one rider.
    let holders = db
        .query(
            "SELECT COUNT(*) FROM discounts WHERE status = 1 AND rider_id IS NOT NULL",
            &[],
        )
        .unwrap()
        .scalar_i64()
        .unwrap();
    assert_eq!(holders, 5);
}

#[test]
fn bikeshare_survives_crash_and_recovery() {
    let dir = std::env::temp_dir().join(format!("sstore-bike-rec-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = BikeConfig::tiny();

    let setup_cfg = cfg.clone();
    let setup = move |db: &mut sstore_core::SStore| install(db, &setup_cfg);

    // Run OLTP traffic with durability, crash, recover, verify invariants.
    let (docked_before, rides_before) = {
        let mut db = SStoreBuilder::new().durability(&dir, 2).build().unwrap();
        setup.clone()(&mut db).unwrap();
        for rider in 0..4i64 {
            db.invoke(
                "checkout",
                vec![vec![Value::Int(rider), Value::Int(rider % 4)]],
            )
            .unwrap();
        }
        db.advance_clock(5 * 60 * 1_000_000);
        for rider in 0..2i64 {
            db.invoke(
                "return_bike",
                vec![vec![Value::Int(rider), Value::Int((rider + 1) % 4)]],
            )
            .unwrap();
        }
        (
            db.query("SELECT COUNT(*) FROM bikes WHERE status = 0", &[])
                .unwrap()
                .scalar_i64()
                .unwrap(),
            db.query("SELECT COUNT(*) FROM rides", &[])
                .unwrap()
                .scalar_i64()
                .unwrap(),
        )
    };

    let builder = SStoreBuilder::new().durability(&dir, 2);
    let mut recovered = sstore_core::recover(builder.config().clone(), setup).unwrap();
    verify_invariants(&mut recovered, &cfg).unwrap();
    let docked_after = recovered
        .query("SELECT COUNT(*) FROM bikes WHERE status = 0", &[])
        .unwrap()
        .scalar_i64()
        .unwrap();
    let rides_after = recovered
        .query("SELECT COUNT(*) FROM rides", &[])
        .unwrap()
        .scalar_i64()
        .unwrap();
    assert_eq!(docked_after, docked_before);
    assert_eq!(rides_after, rides_before);
    std::fs::remove_dir_all(dir).ok();
}
