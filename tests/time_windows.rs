//! End-to-end time-based windows (`RANGE ... SLIDE ...`): the second
//! window kind from the paper's §2 ("windows to define finite chunks of
//! state over (possibly unbounded) streams"), driven by the logical clock.

use sstore_core::common::Value;
use sstore_core::{ProcSpec, SStoreBuilder, TriggerEvent};

const SEC: i64 = 1_000_000;

/// A rate monitor: events flow into a 10-second time window; on every
/// 2-second slide an EE trigger refreshes a per-key rate table.
fn build() -> sstore_core::SStore {
    let mut db = SStoreBuilder::new().build().unwrap();
    db.ddl("CREATE STREAM events (key INT)").unwrap();
    db.ddl(&format!(
        "CREATE WINDOW w_recent (key INT) RANGE {} SLIDE {}",
        10 * SEC,
        2 * SEC
    ))
    .unwrap();
    db.ddl("CREATE TABLE rates (key INT NOT NULL, n INT NOT NULL, PRIMARY KEY (key))")
        .unwrap();
    db.create_ee_trigger(
        "refresh_rates",
        "w_recent",
        TriggerEvent::OnSlide,
        &[
            "DELETE FROM rates",
            "INSERT INTO rates SELECT key, COUNT(*) FROM w_recent GROUP BY key",
        ],
    )
    .unwrap();
    db.register(
        ProcSpec::new("ingest", |ctx| {
            for row in ctx.input().rows.clone() {
                ctx.exec("win", &[row[0].clone()])?;
            }
            Ok(())
        })
        .consumes("events")
        .owns_window("w_recent")
        .stmt("win", "INSERT INTO w_recent VALUES (?)"),
    )
    .unwrap();
    db
}

#[test]
fn time_window_evicts_by_clock_and_slides_on_time() {
    let mut db = build();
    // One event per second for 30 seconds: key 1 for t<15, key 2 after.
    for t in 0..30i64 {
        db.advance_clock(SEC);
        let key = if t < 15 { 1 } else { 2 };
        db.submit_batch("ingest", vec![vec![Value::Int(key)]])
            .unwrap();
    }
    // At t=30 the 10s window holds only key-2 events (t in 21..=30).
    let r = db
        .query("SELECT key, n FROM rates ORDER BY key", &[])
        .unwrap();
    assert_eq!(
        r.rows.len(),
        1,
        "stale keys must have slid out: {:?}",
        r.rows
    );
    assert_eq!(r.rows[0][0], Value::Int(2));
    let n = r.rows[0][1].as_int().unwrap();
    // Slide granularity is 2s, so the refresh may lag one event.
    assert!(
        (9..=10).contains(&n),
        "expected ~10 events in window, got {n}"
    );

    // The window table itself is bounded (~10 tuples, never 30).
    let w = db.engine().db().resolve("w_recent").unwrap();
    let resident = db.engine().db().table(w).unwrap().len();
    assert!(resident <= 11, "window holds {resident} tuples");
    assert!(db.engine().stats().window_slides >= 10);
}

#[test]
fn quiet_period_then_burst_expires_everything_old() {
    let mut db = build();
    for _ in 0..5 {
        db.advance_clock(SEC);
        db.submit_batch("ingest", vec![vec![Value::Int(1)]])
            .unwrap();
    }
    // 60 quiet seconds (no events, clock moves).
    db.advance_clock(60 * SEC);
    // A single new event: its insert must evict all five stale tuples.
    db.submit_batch("ingest", vec![vec![Value::Int(2)]])
        .unwrap();
    let w = db.engine().db().resolve("w_recent").unwrap();
    assert_eq!(db.engine().db().table(w).unwrap().len(), 1);
    let r = db.query("SELECT key, n FROM rates", &[]).unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(2), Value::Int(1)]]);
}
