//! Workspace-surface smoke tests: the umbrella crate's re-exports resolve
//! and the shared data model's basics hold. These guard the Cargo wiring
//! itself — if a crate is dropped from the workspace or a re-export path
//! breaks, this file stops compiling.

use sstore::common::{Clock, DataType, Value};

#[test]
fn umbrella_reexports_resolve() {
    // `sstore::core` is the full API crate; building a system through the
    // umbrella path must work end to end.
    let mut db = sstore::core::SStoreBuilder::new().build().unwrap();
    db.ddl("CREATE TABLE t (id INT NOT NULL, PRIMARY KEY (id))")
        .unwrap();
    // The flat re-exports alias the same types.
    let _config: sstore::PeConfig = sstore::PeConfig::default();
    let q = db.query("SELECT id FROM t", &[]).unwrap();
    assert!(q.rows.is_empty());
}

#[test]
fn clock_is_monotone_and_settable() {
    let clock = Clock::new();
    assert_eq!(clock.now(), 0);
    assert_eq!(clock.advance(5), 5);
    assert_eq!(clock.advance_to(100), 100);
    // advance_to never goes backwards.
    assert_eq!(clock.advance_to(50), 100);

    let later = Clock::starting_at(1_000);
    assert_eq!(later.now(), 1_000);
}

#[test]
fn value_round_trips_through_json() {
    let values = vec![
        Value::Null,
        Value::Int(-42),
        Value::Float(2.5),
        Value::Text("quote ' and \\ back".into()),
        Value::Bool(true),
        Value::Timestamp(1_234_567),
    ];
    let encoded = serde_json::to_string(&values).unwrap();
    let decoded: Vec<Value> = serde_json::from_str(&encoded).unwrap();
    assert_eq!(decoded, values);
}

#[test]
fn value_accessors_and_coercion_basics() {
    assert_eq!(Value::Int(3).as_int().unwrap(), 3);
    assert_eq!(Value::Int(3).as_float().unwrap(), 3.0);
    assert_eq!(Value::Int(2), Value::Float(2.0));
    assert_eq!(
        DataType::Float.coerce(Value::Int(7)).unwrap(),
        Value::Int(7)
    );
    assert!(Value::Null.is_null());
    assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
}
