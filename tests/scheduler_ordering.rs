//! Integration test for experiment E5: the stream-oriented transaction
//! model's ordering guarantees (paper §2) observed end to end.

use sstore_core::common::{Row, Value};
use sstore_core::{ProcSpec, SStoreBuilder};

/// Build a 3-stage workflow that writes an execution trace:
/// in -> a -> mid1 -> b -> mid2 -> c, all sharing the trace table (which
/// forces whole-workflow serial execution per the paper's rule).
fn traced_pipeline() -> sstore_core::SStore {
    let mut db = SStoreBuilder::new().build().unwrap();
    db.ddl("CREATE STREAM s_in (v INT)").unwrap();
    db.ddl("CREATE STREAM s_mid1 (v INT)").unwrap();
    db.ddl("CREATE STREAM s_mid2 (v INT)").unwrap();
    db.ddl(
        "CREATE TABLE trace (seq INT NOT NULL, proc VARCHAR NOT NULL, batch INT NOT NULL, \
         PRIMARY KEY (seq))",
    )
    .unwrap();
    db.ddl("CREATE TABLE seqgen (k INT NOT NULL, n INT NOT NULL, PRIMARY KEY (k))")
        .unwrap();
    db.setup_sql("INSERT INTO seqgen VALUES (0, 0)", &[])
        .unwrap();

    let stage = |name: &'static str, forward: bool| {
        ProcSpec::new(name, move |ctx| {
            ctx.exec("bump", &[])?;
            let seq = ctx.exec("get", &[])?.scalar_i64()?;
            ctx.exec(
                "log",
                &[
                    Value::Int(seq),
                    Value::Text(name.into()),
                    Value::Int(ctx.input().id.raw() as i64),
                ],
            )?;
            if forward {
                for row in ctx.input().rows.clone() {
                    ctx.emit(row)?;
                }
            }
            Ok(())
        })
        .stmt("bump", "UPDATE seqgen SET n = n + 1 WHERE k = 0")
        .stmt("get", "SELECT n FROM seqgen WHERE k = 0")
        .stmt("log", "INSERT INTO trace VALUES (?, ?, ?)")
    };

    db.register(stage("a", true).consumes("s_in").emits("s_mid1"))
        .unwrap();
    db.register(stage("b", true).consumes("s_mid1").emits("s_mid2"))
        .unwrap();
    db.register(stage("c", false).consumes("s_mid2")).unwrap();
    db
}

fn trace_of(db: &mut sstore_core::SStore) -> Vec<(String, i64)> {
    db.query("SELECT proc, batch FROM trace ORDER BY seq", &[])
        .unwrap()
        .rows
        .iter()
        .map(|r| (r[0].as_text().unwrap().to_string(), r[1].as_int().unwrap()))
        .collect()
}

#[test]
fn workflow_order_te_order_and_serial_execution_hold() {
    let mut db = traced_pipeline();
    assert!(db.workflow().has_shared_writables());

    for i in 0..10i64 {
        db.submit_batch("a", vec![vec![Value::Int(i)]]).unwrap();
    }
    let trace = trace_of(&mut db);
    assert_eq!(trace.len(), 30);

    // Invariant 3 (serial workflows): with shared writables, the schedule
    // is exactly a(b) b(b) c(b) per batch, no interleaving at all.
    for (i, (proc, _)) in trace.iter().enumerate() {
        let expect = ["a", "b", "c"][i % 3];
        assert_eq!(proc, expect, "serial execution violated at {i}: {trace:?}");
    }
    // Invariant 1 (TE order per procedure): batch ids strictly increase.
    for p in ["a", "b", "c"] {
        let batches: Vec<i64> = trace
            .iter()
            .filter(|(proc, _)| proc == p)
            .map(|(_, b)| *b)
            .collect();
        let mut sorted = batches.clone();
        sorted.sort_unstable();
        assert_eq!(batches, sorted, "TE order violated for {p}");
    }
    // Invariant 2 (workflow order per batch): a(b) < b(b) < c(b).
    for b in 1..=10i64 {
        let pos = |p: &str| {
            trace
                .iter()
                .position(|(proc, batch)| proc == p && *batch == b)
                .unwrap()
        };
        assert!(pos("a") < pos("b") && pos("b") < pos("c"));
    }
}

#[test]
fn non_shared_workflows_may_pipeline_but_keep_both_orders() {
    // Stages write disjoint tables -> the engine may interleave batches
    // (pipelining), but per-proc TE order and per-batch workflow order must
    // still hold.
    let mut db = SStoreBuilder::new().serial_workflow(false).build().unwrap();
    db.ddl("CREATE STREAM p_in (v INT)").unwrap();
    db.ddl("CREATE STREAM p_mid (v INT)").unwrap();
    db.ddl("CREATE TABLE t_a (seq INT NOT NULL, batch INT NOT NULL, PRIMARY KEY (seq))")
        .unwrap();
    db.ddl("CREATE TABLE t_b (seq INT NOT NULL, batch INT NOT NULL, PRIMARY KEY (seq))")
        .unwrap();

    db.register(
        ProcSpec::new("pa", |ctx| {
            let b = ctx.input().id.raw() as i64;
            let n = ctx.exec("count", &[])?.scalar_i64()?;
            ctx.exec("ins", &[Value::Int(n + 1), Value::Int(b)])?;
            for row in ctx.input().rows.clone() {
                ctx.emit(row)?;
            }
            Ok(())
        })
        .consumes("p_in")
        .emits("p_mid")
        .stmt("count", "SELECT COUNT(*) FROM t_a")
        .stmt("ins", "INSERT INTO t_a VALUES (?, ?)"),
    )
    .unwrap();
    db.register(
        ProcSpec::new("pb", |ctx| {
            let b = ctx.input().id.raw() as i64;
            let n = ctx.exec("count", &[])?.scalar_i64()?;
            ctx.exec("ins", &[Value::Int(n + 1), Value::Int(b)])?;
            Ok(())
        })
        .consumes("p_mid")
        .stmt("count", "SELECT COUNT(*) FROM t_b")
        .stmt("ins", "INSERT INTO t_b VALUES (?, ?)"),
    )
    .unwrap();

    for i in 0..8i64 {
        db.submit_batch("pa", vec![vec![Value::Int(i)]]).unwrap();
    }
    for table in ["t_a", "t_b"] {
        let batches: Vec<i64> = db
            .query(&format!("SELECT batch FROM {table} ORDER BY seq"), &[])
            .unwrap()
            .rows
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        let mut sorted = batches.clone();
        sorted.sort_unstable();
        assert_eq!(batches, sorted, "TE order violated in {table}");
        assert_eq!(batches.len(), 8);
    }
}

#[test]
fn window_scope_blocks_foreign_procedures() {
    let mut db = SStoreBuilder::new().build().unwrap();
    db.ddl("CREATE STREAM w_in (v INT)").unwrap();
    db.ddl("CREATE WINDOW w_owned (v INT) ROWS 4 SLIDE 1")
        .unwrap();
    // Owner writes happily.
    db.register(
        ProcSpec::new("owner", |ctx| {
            for row in ctx.input().rows.clone() {
                ctx.exec("w", &[row[0].clone()])?;
            }
            Ok(())
        })
        .consumes("w_in")
        .owns_window("w_owned")
        .stmt("w", "INSERT INTO w_owned VALUES (?)"),
    )
    .unwrap();
    // An unrelated procedure trying to read the window must be denied.
    db.register(ProcSpec::new("intruder", |ctx| {
        ctx.sql("SELECT COUNT(*) FROM w_owned", &[])?;
        Ok(())
    }))
    .unwrap();

    db.submit_batch::<Row>("w_in_is_wrong", vec![]).err();
    db.submit_batch("owner", vec![vec![Value::Int(1)]]).unwrap();
    let outcome = db.invoke::<Row>("intruder", vec![]).unwrap();
    assert_eq!(outcome.status, sstore_core::TxnStatus::Failed);
    assert!(outcome.error.unwrap().contains("scope"));
}

#[test]
fn interior_procedures_cannot_be_invoked_by_clients() {
    let mut db = traced_pipeline();
    let err = db.submit_batch("b", vec![vec![Value::Int(1)]]).unwrap_err();
    assert_eq!(err.kind(), "schedule");
    let err = db.submit_batch::<Row>("c", vec![]).unwrap_err();
    assert_eq!(err.kind(), "schedule");
}
