//! ACID guarantees across the whole stack: atomic aborts spanning SQL,
//! streams, windows, and EE-trigger cascades; consistency of constraint
//! enforcement; isolation via serial execution + window scope; durability
//! via the recovery tests.

use sstore_core::common::Value;
use sstore_core::{ProcSpec, SStoreBuilder, TriggerEvent, TxnStatus};

#[test]
fn mid_procedure_failure_rolls_back_everything() {
    let mut db = SStoreBuilder::new().build().unwrap();
    db.ddl("CREATE STREAM a_in (v INT)").unwrap();
    db.ddl("CREATE STREAM a_out (v INT)").unwrap();
    db.ddl("CREATE TABLE t (id INT NOT NULL, PRIMARY KEY (id))")
        .unwrap();
    db.ddl("CREATE WINDOW w (v INT) ROWS 3 SLIDE 1").unwrap();

    db.register(
        ProcSpec::new("doomed", |ctx| {
            // Touch a table, a window, and a stream...
            ctx.exec("ins", &[Value::Int(1)])?;
            ctx.exec("win", &[Value::Int(10)])?;
            ctx.emit(vec![Value::Int(100)])?;
            // ...then hit a constraint violation (duplicate PK).
            ctx.exec("ins", &[Value::Int(1)])?;
            Ok(())
        })
        .consumes("a_in")
        .emits("a_out")
        .owns_window("w")
        .stmt("ins", "INSERT INTO t VALUES (?)")
        .stmt("win", "INSERT INTO w VALUES (?)"),
    )
    .unwrap();

    let outcomes = db
        .submit_batch("doomed", vec![vec![Value::Int(0)]])
        .unwrap();
    assert_eq!(outcomes.len(), 1);
    assert_eq!(outcomes[0].status, TxnStatus::Failed);

    // Every effect is gone: table, window, stream, and downstream.
    assert_eq!(
        db.query("SELECT COUNT(*) FROM t", &[])
            .unwrap()
            .scalar_i64()
            .unwrap(),
        0
    );
    let w = db.engine().db().resolve("w").unwrap();
    assert_eq!(db.engine().db().table(w).unwrap().len(), 0);
    let out = db.engine().db().resolve("a_out").unwrap();
    assert_eq!(db.engine().db().table(out).unwrap().len(), 0);
    assert_eq!(db.stats().failed, 1);
}

#[test]
fn ee_trigger_cascade_rolls_back_with_its_transaction() {
    let mut db = SStoreBuilder::new().build().unwrap();
    db.ddl("CREATE STREAM c_in (v INT)").unwrap();
    db.ddl("CREATE STREAM c_mid (v INT)").unwrap();
    db.ddl("CREATE TABLE audit (n INT NOT NULL, PRIMARY KEY (n))")
        .unwrap();
    // Insert into c_mid cascades an audit row via EE trigger.
    db.create_ee_trigger(
        "audit_mid",
        "c_mid",
        TriggerEvent::OnInsert,
        &["INSERT INTO audit VALUES (?)"],
    )
    .unwrap();
    db.register(
        ProcSpec::new("writer", |ctx| {
            ctx.exec("mid", &[Value::Int(7)])?;
            // The trigger already ran inside this TE; now abort.
            Err(ctx.abort("never mind"))
        })
        .consumes("c_in")
        .stmt("mid", "INSERT INTO c_mid (v) VALUES (?)"),
    )
    .unwrap();

    let outcomes = db
        .submit_batch("writer", vec![vec![Value::Int(0)]])
        .unwrap();
    assert_eq!(outcomes[0].status, TxnStatus::Aborted);
    assert_eq!(
        db.query("SELECT COUNT(*) FROM audit", &[])
            .unwrap()
            .scalar_i64()
            .unwrap(),
        0,
        "trigger effects must roll back with the transaction"
    );
}

#[test]
fn abort_in_downstream_does_not_undo_upstream() {
    // Upstream and downstream are separate TEs: upstream commits stand
    // even when the downstream TE aborts (stream semantics — the batch was
    // delivered; the downstream abort is its own outcome).
    let mut db = SStoreBuilder::new().build().unwrap();
    db.ddl("CREATE STREAM d_in (v INT)").unwrap();
    db.ddl("CREATE STREAM d_mid (v INT)").unwrap();
    db.ddl("CREATE TABLE up_t (n INT NOT NULL, PRIMARY KEY (n))")
        .unwrap();

    db.register(
        ProcSpec::new("up", |ctx| {
            ctx.exec("ins", &[Value::Int(ctx.input().id.raw() as i64)])?;
            for row in ctx.input().rows.clone() {
                ctx.emit(row)?;
            }
            Ok(())
        })
        .consumes("d_in")
        .emits("d_mid")
        .stmt("ins", "INSERT INTO up_t VALUES (?)"),
    )
    .unwrap();
    db.register(
        ProcSpec::new("down", |ctx| Err(ctx.abort("downstream refuses"))).consumes("d_mid"),
    )
    .unwrap();

    let outcomes = db.submit_batch("up", vec![vec![Value::Int(1)]]).unwrap();
    assert_eq!(outcomes.len(), 2);
    assert_eq!(outcomes[0].status, TxnStatus::Committed);
    assert_eq!(outcomes[1].status, TxnStatus::Aborted);
    assert_eq!(
        db.query("SELECT COUNT(*) FROM up_t", &[])
            .unwrap()
            .scalar_i64()
            .unwrap(),
        1
    );
}

#[test]
fn per_batch_atomicity_all_tuples_or_none() {
    // One bad tuple in a batch aborts the whole TE (the batch is the unit
    // of atomicity in the stream transaction model).
    let mut db = SStoreBuilder::new().build().unwrap();
    db.ddl("CREATE STREAM b_in (v INT)").unwrap();
    db.ddl("CREATE TABLE acc (id INT NOT NULL, PRIMARY KEY (id))")
        .unwrap();
    db.register(
        ProcSpec::new("ingest", |ctx| {
            for row in ctx.input().rows.clone() {
                ctx.exec("ins", &[row[0].clone()])?; // dup PK -> error
            }
            Ok(())
        })
        .consumes("b_in")
        .stmt("ins", "INSERT INTO acc VALUES (?)"),
    )
    .unwrap();

    let outcomes = db
        .submit_batch(
            "ingest",
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(2)],
                vec![Value::Int(1)],
            ],
        )
        .unwrap();
    assert_eq!(outcomes[0].status, TxnStatus::Failed);
    assert_eq!(
        db.query("SELECT COUNT(*) FROM acc", &[])
            .unwrap()
            .scalar_i64()
            .unwrap(),
        0,
        "partial batch effects must not survive"
    );
    // The engine remains healthy for the next batch.
    let ok = db
        .submit_batch("ingest", vec![vec![Value::Int(1)], vec![Value::Int(2)]])
        .unwrap();
    assert_eq!(ok[0].status, TxnStatus::Committed);
    assert_eq!(
        db.query("SELECT COUNT(*) FROM acc", &[])
            .unwrap()
            .scalar_i64()
            .unwrap(),
        2
    );
}

#[test]
fn stream_sequence_counters_rewind_on_abort() {
    // After an aborted TE, the next commit uses the same sequence numbers
    // the aborted one consumed (no gaps — determinism for replay).
    let mut db = SStoreBuilder::new().build().unwrap();
    db.ddl("CREATE STREAM q_in (v INT)").unwrap();
    db.ddl("CREATE STREAM q_out (v INT)").unwrap();
    db.register(
        ProcSpec::new("maybe", |ctx| {
            let v = ctx.input().rows[0][0].as_int()?;
            ctx.emit(vec![Value::Int(v)])?;
            if v < 0 {
                return Err(ctx.abort("negative"));
            }
            Ok(())
        })
        .consumes("q_in")
        .emits("q_out"),
    )
    .unwrap();
    db.register(ProcSpec::new("sink2", |_| Ok(())).consumes("q_out"))
        .unwrap();

    db.submit_batch("maybe", vec![vec![Value::Int(-1)]])
        .unwrap(); // aborts
    db.submit_batch("maybe", vec![vec![Value::Int(5)]]).unwrap(); // commits
    use sstore_storage::catalog::TableKind;
    let out = db.engine().db().resolve("q_out").unwrap();
    match db.engine().db().kind(out).unwrap() {
        TableKind::Stream(meta) => assert_eq!(meta.next_seq, 1, "seq must rewind on abort"),
        _ => panic!(),
    }
}
