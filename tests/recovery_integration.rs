//! Integration test for experiment E6: upstream-backup fault tolerance on
//! the real Voter application, with crash points swept across the run.

use sstore_core::{recover, SStore, SStoreBuilder};
use sstore_voter::{
    capture_state, diff_states, install, run_sstore, VoteGen, VoterConfig, WindowImpl,
};
use std::path::PathBuf;

fn tempdir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("sstore-it-rec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn config() -> VoterConfig {
    VoterConfig {
        num_contestants: 10,
        elimination_every: 25,
        trending_window: 50,
        trending_slide: 5,
    }
}

fn setup(db: &mut SStore) -> sstore_core::common::Result<()> {
    install(db, WindowImpl::Native, &config())
}

#[test]
fn crash_at_any_point_recovers_exact_state() {
    let votes = VoteGen::new(77, config().num_contestants).take(400);
    for crash_after in [1usize, 37, 120, 399] {
        let dir = tempdir(&format!("sweep{crash_after}"));
        let reference = {
            let mut db = SStoreBuilder::new().durability(&dir, 4).build().unwrap();
            setup(&mut db).unwrap();
            run_sstore(&mut db, &votes[..crash_after], 1).unwrap();
            capture_state(&mut db).unwrap()
            // drop = crash (group commit 4: a sync'd prefix is guaranteed
            // only per 4 records; see torn-tail test for the boundary)
        };
        let builder = SStoreBuilder::new().durability(&dir, 4);
        let mut recovered = recover(builder.config().clone(), setup).unwrap();
        let state = capture_state(&mut recovered).unwrap();
        // With group commit > 1, the tail beyond the last sync may be lost.
        // Our CommandLog buffers through a BufWriter that flushes on drop,
        // so in-process "crashes" keep the full log; state must match.
        let d = diff_states(&reference, &state);
        assert!(d.is_clean(), "crash_after={crash_after}: {d:?}");
        std::fs::remove_dir_all(dir).ok();
    }
}

#[test]
fn snapshot_log_interleaving_recovers() {
    let votes = VoteGen::new(13, config().num_contestants).take(300);
    let dir = tempdir("interleave");
    let reference = {
        let mut db = SStoreBuilder::new().durability(&dir, 1).build().unwrap();
        setup(&mut db).unwrap();
        run_sstore(&mut db, &votes[..100], 1).unwrap();
        db.snapshot().unwrap();
        run_sstore(&mut db, &votes[100..200], 1).unwrap();
        db.snapshot().unwrap();
        run_sstore(&mut db, &votes[200..], 1).unwrap();
        capture_state(&mut db).unwrap()
    };
    let builder = SStoreBuilder::new().durability(&dir, 1);
    let mut recovered = recover(builder.config().clone(), setup).unwrap();
    let d = diff_states(&reference, &capture_state(&mut recovered).unwrap());
    assert!(d.is_clean(), "{d:?}");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn recovered_partition_continues_identically_to_uncrashed() {
    let votes = VoteGen::new(5, config().num_contestants).take(300);
    let dir = tempdir("continue");

    // Uncrashed reference run over all 300 votes.
    let uncrashed = {
        let mut db = SStoreBuilder::new().build().unwrap();
        setup(&mut db).unwrap();
        run_sstore(&mut db, &votes, 1).unwrap();
        capture_state(&mut db).unwrap()
    };

    // Crash at 150, recover, process the rest.
    {
        let mut db = SStoreBuilder::new().durability(&dir, 2).build().unwrap();
        setup(&mut db).unwrap();
        run_sstore(&mut db, &votes[..150], 1).unwrap();
    }
    let builder = SStoreBuilder::new().durability(&dir, 2);
    let mut recovered = recover(builder.config().clone(), setup).unwrap();
    run_sstore(&mut recovered, &votes[150..], 1).unwrap();

    let d = diff_states(&uncrashed, &capture_state(&mut recovered).unwrap());
    assert!(d.is_clean(), "post-recovery divergence: {d:?}");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn torn_log_tail_is_discarded_not_fatal() {
    use std::io::Write;
    let dir = tempdir("torn");
    {
        let mut db = SStoreBuilder::new().durability(&dir, 1).build().unwrap();
        setup(&mut db).unwrap();
        let votes = VoteGen::new(1, config().num_contestants).take(50);
        run_sstore(&mut db, &votes, 1).unwrap();
    }
    // Append garbage simulating a torn write at crash time.
    let log_path = dir.join("command.log");
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&log_path)
        .unwrap();
    f.write_all(b"{\"BorderBatch\":{\"batch\":999,\"proc\":\"validate")
        .unwrap();
    drop(f);

    let builder = SStoreBuilder::new().durability(&dir, 1);
    let mut recovered = recover(builder.config().clone(), setup).unwrap();
    let total = recovered
        .query("SELECT total FROM vote_totals WHERE k = 0", &[])
        .unwrap()
        .scalar_i64()
        .unwrap();
    assert!(total > 0, "prefix must replay despite the torn tail");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn async_burst_submissions_recover_exactly() {
    // Bursty async clients + serial workflow: the log records batches in
    // submission order, replay runs them serially — same order the serial
    // scheduler enforced, so state must match.
    let votes = VoteGen::new(33, config().num_contestants).take(300);
    let dir = tempdir("async");
    let reference = {
        let mut db = SStoreBuilder::new().durability(&dir, 4).build().unwrap();
        setup(&mut db).unwrap();
        for chunk in votes.chunks(16) {
            for v in chunk {
                db.submit_batch_async(
                    "validate",
                    vec![vec![
                        sstore_core::common::Value::Int(v.phone),
                        sstore_core::common::Value::Int(v.contestant),
                    ]],
                )
                .unwrap();
            }
            db.run_queued().unwrap();
        }
        capture_state(&mut db).unwrap()
    };
    let builder = SStoreBuilder::new().durability(&dir, 4);
    let mut recovered = recover(builder.config().clone(), setup).unwrap();
    let d = diff_states(&reference, &capture_state(&mut recovered).unwrap());
    assert!(d.is_clean(), "{d:?}");
    std::fs::remove_dir_all(dir).ok();
}
