//! Stream garbage collection across workflow outcomes (experiment E7's
//! correctness side): consumed batches leave the intermediate streams no
//! matter how the consuming TE ends.

use sstore_core::common::Value;
use sstore_core::{ProcSpec, SStoreBuilder, TxnStatus};

fn pipeline() -> sstore_core::SStore {
    let mut db = SStoreBuilder::new().build().unwrap();
    db.ddl("CREATE STREAM g_in (v INT)").unwrap();
    db.ddl("CREATE STREAM g_mid (v INT)").unwrap();
    db.register(
        ProcSpec::new("produce", |ctx| {
            for row in ctx.input().rows.clone() {
                ctx.emit(row)?;
            }
            Ok(())
        })
        .consumes("g_in")
        .emits("g_mid"),
    )
    .unwrap();
    db.register(
        ProcSpec::new("consume", |ctx| {
            // Abort on negative values.
            if ctx.input().rows[0][0].as_int()? < 0 {
                return Err(ctx.abort("refused"));
            }
            Ok(())
        })
        .consumes("g_mid"),
    )
    .unwrap();
    db
}

fn mid_len(db: &sstore_core::SStore) -> usize {
    let mid = db.engine().db().resolve("g_mid").unwrap();
    db.engine().db().table(mid).unwrap().len()
}

#[test]
fn committed_consumption_gcs_the_stream() {
    let mut db = pipeline();
    for i in 0..10i64 {
        db.submit_batch("produce", vec![vec![Value::Int(i)]])
            .unwrap();
        assert_eq!(mid_len(&db), 0, "batch {i} left tuples behind");
    }
    assert!(db.engine().stats().rows_gcd >= 10);
}

#[test]
fn aborted_consumption_still_gcs_the_stream() {
    let mut db = pipeline();
    let outcomes = db
        .submit_batch("produce", vec![vec![Value::Int(-1)]])
        .unwrap();
    assert_eq!(outcomes[1].status, TxnStatus::Aborted);
    // The batch is terminally consumed: no residue in the stream table.
    assert_eq!(mid_len(&db), 0);
    // And the workflow keeps functioning afterwards.
    let ok = db
        .submit_batch("produce", vec![vec![Value::Int(5)]])
        .unwrap();
    assert!(ok.iter().all(|o| o.is_committed()));
    assert_eq!(mid_len(&db), 0);
}

#[test]
fn memory_bounded_over_many_batches_with_aborts() {
    let mut db = pipeline();
    // Alternate committing and aborting consumers for a while.
    for i in 0..500i64 {
        let v = if i % 3 == 0 { -i } else { i };
        db.submit_batch("produce", vec![vec![Value::Int(v)]])
            .unwrap();
    }
    assert_eq!(mid_len(&db), 0);
    let bytes = db.engine().db().approx_bytes();
    // Only the (empty) stream tables remain; a loose generous bound:
    assert!(bytes < 64 * 1024, "unexpected growth: {bytes} bytes");
}
