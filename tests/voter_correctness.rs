//! Integration test for experiment E1 (paper §3.1): the Voter demo's
//! correctness claims, end to end across all crates.

use sstore_core::SStoreBuilder;
use sstore_voter::checker::oracle_state;
use sstore_voter::{
    capture_state, diff_states, install, run_hstore, run_sstore, Oracle, VoteGen, VoterConfig,
    WindowImpl,
};

fn config() -> VoterConfig {
    VoterConfig {
        num_contestants: 25,
        elimination_every: 100,
        trending_window: 100,
        trending_slide: 10,
    }
}

#[test]
fn sstore_is_exact_for_many_seeds_and_batch_sizes() {
    for seed in [1u64, 7, 42] {
        let cfg = config();
        let votes = VoteGen::new(seed, cfg.num_contestants).take(1_500);
        for batch in [1usize, 3, 25] {
            let mut db = SStoreBuilder::new().build().unwrap();
            install(&mut db, WindowImpl::Native, &cfg).unwrap();
            run_sstore(&mut db, &votes, batch).unwrap();

            let mut oracle = Oracle::new(cfg.clone());
            for chunk in votes.chunks(batch) {
                let pairs: Vec<(i64, i64)> =
                    chunk.iter().map(|v| (v.phone, v.contestant)).collect();
                oracle.feed_batch(&pairs);
            }
            let d = diff_states(&oracle_state(&oracle), &capture_state(&mut db).unwrap());
            assert!(d.is_clean(), "seed={seed} batch={batch} diverged: {d:?}");
        }
    }
}

#[test]
fn hstore_anomalies_grow_with_pipelining() {
    let cfg = config();
    let votes = VoteGen::new(11, cfg.num_contestants).take(3_000);
    let mut oracle = Oracle::new(cfg.clone());
    for v in &votes {
        oracle.feed(v.phone, v.contestant);
    }
    let expected = oracle_state(&oracle);

    let mut totals = Vec::new();
    for inflight in [1usize, 8, 64] {
        let mut db = SStoreBuilder::new().hstore_mode().build().unwrap();
        install(&mut db, WindowImpl::Emulated, &cfg).unwrap();
        run_hstore(&mut db, &votes, inflight).unwrap();
        let d = diff_states(&expected, &capture_state(&mut db).unwrap());
        totals.push(d.total());
    }
    assert_eq!(totals[0], 0, "serialized client must be exact");
    assert!(
        totals[2] > 0,
        "deep pipelining must produce anomalies: {totals:?}"
    );
    assert!(
        totals[2] >= totals[1],
        "anomalies should not shrink with deeper pipelines: {totals:?}"
    );
}

#[test]
fn eliminated_candidates_reject_new_votes_and_free_phones() {
    let cfg = VoterConfig {
        num_contestants: 3,
        elimination_every: 4,
        ..config()
    };
    let mut db = SStoreBuilder::new().build().unwrap();
    install(&mut db, WindowImpl::Native, &cfg).unwrap();
    use sstore_core::common::Value;
    // 4 votes -> contestant with fewest (3) eliminated.
    for (phone, c) in [(1i64, 1i64), (2, 1), (3, 2), (4, 3)] {
        db.submit_batch("validate", vec![vec![Value::Int(phone), Value::Int(c)]])
            .unwrap();
    }
    let elim = db
        .query("SELECT contestant_number FROM eliminations", &[])
        .unwrap();
    assert_eq!(elim.rows.len(), 1);
    let loser = elim.rows[0][0].as_int().unwrap();
    // The phone that voted for the loser can vote again...
    let freed_phone = if loser == 2 { 3 } else { 4 };
    db.submit_batch(
        "validate",
        vec![vec![Value::Int(freed_phone), Value::Int(1)]],
    )
    .unwrap();
    // ...while a vote for the loser is rejected.
    let rejected_before = db
        .query("SELECT rejected FROM vote_totals WHERE k = 0", &[])
        .unwrap()
        .scalar_i64()
        .unwrap();
    db.submit_batch("validate", vec![vec![Value::Int(99), Value::Int(loser)]])
        .unwrap();
    let rejected_after = db
        .query("SELECT rejected FROM vote_totals WHERE k = 0", &[])
        .unwrap()
        .scalar_i64()
        .unwrap();
    assert_eq!(rejected_after, rejected_before + 1);
}

#[test]
fn show_runs_to_single_winner_and_stops() {
    let cfg = VoterConfig {
        num_contestants: 5,
        elimination_every: 10,
        ..config()
    };
    let votes = VoteGen::with_mix(3, cfg.num_contestants, 1.2, 0.0, 0.0).take(2_000);
    let mut db = SStoreBuilder::new().build().unwrap();
    install(&mut db, WindowImpl::Native, &cfg).unwrap();
    run_sstore(&mut db, &votes, 1).unwrap();
    let remaining = db
        .query("SELECT COUNT(*) FROM contestants", &[])
        .unwrap()
        .scalar_i64()
        .unwrap();
    assert_eq!(remaining, 1, "exactly one winner must remain");
    let elims = db
        .query("SELECT COUNT(*) FROM eliminations", &[])
        .unwrap()
        .scalar_i64()
        .unwrap();
    assert_eq!(elims, 4);
}

#[test]
fn trending_window_reflects_only_recent_votes() {
    let cfg = VoterConfig {
        num_contestants: 4,
        elimination_every: 10_000,
        trending_window: 10,
        trending_slide: 1,
    };
    let mut db = SStoreBuilder::new().build().unwrap();
    install(&mut db, WindowImpl::Native, &cfg).unwrap();
    use sstore_core::common::Value;
    // 20 votes for candidate 1, then 10 for candidate 2.
    for i in 0..20i64 {
        db.submit_batch("validate", vec![vec![Value::Int(100 + i), Value::Int(1)]])
            .unwrap();
    }
    for i in 0..10i64 {
        db.submit_batch("validate", vec![vec![Value::Int(200 + i), Value::Int(2)]])
            .unwrap();
    }
    let trending = db
        .query(
            "SELECT contestant_number, num_votes FROM lb_trending ORDER BY contestant_number",
            &[],
        )
        .unwrap();
    // Window of 10: only candidate 2 remains trending.
    assert_eq!(trending.rows.len(), 1);
    assert_eq!(trending.rows[0][0].as_int().unwrap(), 2);
    assert_eq!(trending.rows[0][1].as_int().unwrap(), 10);
    // But the all-time leaderboard still favours candidate 1.
    let top = db
        .query(
            "SELECT contestant_number FROM lb_counts ORDER BY num_votes DESC LIMIT 1",
            &[],
        )
        .unwrap();
    assert_eq!(top.rows[0][0].as_int().unwrap(), 1);
}
