//! Umbrella crate: integration tests and examples live at the workspace root.
pub use sstore_core as core;
