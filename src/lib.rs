//! # sstore — a streaming NewSQL system (S-Store, VLDB 2014)
//!
//! Umbrella crate for the S-Store reproduction: it re-exports the public
//! API of [`sstore_core`] so applications (and this repo's workspace-root
//! integration tests and examples) depend on a single crate.
//!
//! ```
//! use sstore::{SStoreBuilder, ProcSpec};
//! use sstore::common::Value;
//!
//! let mut db = SStoreBuilder::new().build().unwrap();
//! db.ddl("CREATE STREAM readings (celsius INT)").unwrap();
//! db.ddl("CREATE STREAM alerts (celsius INT)").unwrap();
//! db.register(
//!     ProcSpec::new("monitor", |ctx| {
//!         for row in ctx.input().rows.clone() {
//!             if row[0].as_int()? > 40 {
//!                 ctx.emit(row)?;
//!             }
//!         }
//!         Ok(())
//!     })
//!     .consumes("readings")
//!     .emits("alerts"),
//! ).unwrap();
//! db.submit_batch("monitor", vec![vec![Value::Int(55)]]).unwrap();
//! assert_eq!(db.drain_sink("alerts").unwrap().len(), 1);
//! ```
//!
//! See the repo README for the crate map and the paper-concept ↔ crate
//! correspondence.

/// The full public API crate (builder, client, cluster, metrics).
pub use sstore_core as core;

pub use sstore_core::{
    common, recover, ClientRequest, Cluster, ClusterMetrics, EeConfig, EeStats, ExecMode,
    Invocation, LogConfig, LogRetention, ObsReport, PartitionMetrics, PartitionOutcomes, PeConfig,
    PeStats, PipelinedClient, ProcContext, ProcSpec, QueryResult, RequestKind, RouteSpec, Router,
    SStore, SStoreBuilder, Ticket, TriggerEvent, TxnOutcome, TxnStatus, Workflow,
};
