//! Upstream-backup fault tolerance: crash mid-workflow, recover, verify.
//!
//! Runs the Voter workflow with command logging, "crashes" (drops the
//! partition) at an arbitrary point, recovers from snapshot + log, and
//! shows that the recovered state is byte-identical — then keeps serving.
//!
//! Run with: `cargo run --example recovery`

use sstore_core::{recover, SStoreBuilder};
use sstore_voter::{
    capture_state, diff_states, install, run_sstore, VoteGen, VoterConfig, WindowImpl,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("sstore-recovery-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let config = VoterConfig {
        num_contestants: 10,
        elimination_every: 25,
        ..VoterConfig::default()
    };
    let votes = VoteGen::new(99, config.num_contestants).take(500);
    let setup_config = config.clone();
    let setup = move |db: &mut sstore_core::SStore| install(db, WindowImpl::Native, &setup_config);

    // --- Phase 1: run 300 votes, snapshot at 200, crash ---------------------
    let pre_crash_state;
    {
        let mut db = SStoreBuilder::new().durability(&dir, 4).build()?;
        setup.clone()(&mut db)?;
        run_sstore(&mut db, &votes[..200], 1)?;
        println!("processed 200 votes; taking a snapshot + truncating the log...");
        db.snapshot()?;
        run_sstore(&mut db, &votes[200..300], 1)?;
        pre_crash_state = capture_state(&mut db)?;
        println!(
            "processed 100 more votes (logged, not snapshotted); state: \
             {} candidates left, {} eliminations",
            pre_crash_state.contestants.len(),
            pre_crash_state.eliminated.len()
        );
        println!("\n*** simulated crash: dropping the partition ***\n");
        // db dropped here without any shutdown — memory state is gone.
    }

    // --- Phase 2: recover --------------------------------------------------
    let t0 = std::time::Instant::now();
    let builder = SStoreBuilder::new().durability(&dir, 4);
    let mut recovered = recover(builder.config().clone(), setup)?;
    let elapsed = t0.elapsed();
    let state = capture_state(&mut recovered)?;
    let d = diff_states(&pre_crash_state, &state);
    println!(
        "recovered from snapshot + {}-vote log replay in {:.1} ms",
        100,
        elapsed.as_secs_f64() * 1e3
    );
    println!(
        "state comparison vs pre-crash: {} anomalies ({})",
        d.total(),
        if d.is_clean() {
            "exact match"
        } else {
            "MISMATCH"
        }
    );
    assert!(d.is_clean(), "recovery must reproduce exact state");

    // --- Phase 3: keep serving ----------------------------------------------
    run_sstore(&mut recovered, &votes[300..], 1)?;
    let final_state = capture_state(&mut recovered)?;
    println!(
        "\nresumed processing: {} total votes counted, {} candidates remain",
        final_state.total,
        final_state.contestants.len()
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
