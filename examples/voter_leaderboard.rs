//! The paper's §3.1 demo: Voter with Leaderboard, S-Store vs H-Store
//! side by side.
//!
//! Runs the same seeded vote stream against (a) S-Store with push-based
//! workflows and (b) the H-Store baseline with a pipelined client, then
//! prints the leaderboards (Fig. 2), the anomaly counts, and the
//! round-trip/throughput comparison.
//!
//! Run with: `cargo run --release --example voter_leaderboard`

use sstore_core::{SStore, SStoreBuilder};
use sstore_voter::{
    capture_state, diff_states, install, run_hstore, run_sstore, Oracle, VoteGen, VoterConfig,
    WindowImpl,
};

fn print_leaderboards(db: &mut SStore) -> Result<(), Box<dyn std::error::Error>> {
    let top = db.query(
        "SELECT c.contestant_name, l.num_votes FROM lb_counts l \
         JOIN contestants c ON l.contestant_number = c.contestant_number \
         ORDER BY l.num_votes DESC, l.contestant_number ASC LIMIT 3",
        &[],
    )?;
    let bottom = db.query(
        "SELECT c.contestant_name, l.num_votes FROM lb_counts l \
         JOIN contestants c ON l.contestant_number = c.contestant_number \
         ORDER BY l.num_votes ASC, l.contestant_number ASC LIMIT 3",
        &[],
    )?;
    let trending = db.query(
        "SELECT contestant_number, num_votes FROM lb_trending \
         ORDER BY num_votes DESC, contestant_number ASC LIMIT 3",
        &[],
    )?;
    println!("  Top 3:");
    for r in &top.rows {
        println!("    {:<14} {:>5}", r[0], r[1]);
    }
    println!("  Bottom 3:");
    for r in &bottom.rows {
        println!("    {:<14} {:>5}", r[0], r[1]);
    }
    println!(
        "  Trending (last {} votes):",
        VoterConfig::default().trending_window
    );
    for r in &trending.rows {
        println!("    Candidate {:<4} {:>5}", r[0], r[1]);
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = VoterConfig::default(); // 25 candidates, eliminate every 100
    let n_votes = 2_000;
    let votes = VoteGen::new(2014, config.num_contestants).take(n_votes);

    // Ground truth.
    let mut oracle = Oracle::new(config.clone());
    for v in &votes {
        oracle.feed(v.phone, v.contestant);
    }

    // ---- S-Store: push-based workflow --------------------------------------
    let mut sstore = SStoreBuilder::new().build()?;
    install(&mut sstore, WindowImpl::Native, &config)?;
    let rs = run_sstore(&mut sstore, &votes, 1)?;

    // ---- H-Store baseline: client drives the workflow, pipelined ----------
    let mut hstore = SStoreBuilder::new().hstore_mode().build()?;
    install(&mut hstore, WindowImpl::Emulated, &config)?;
    let rh = run_hstore(&mut hstore, &votes, 16)?;

    println!("=== Canadian Dreamboat: {n_votes} votes, 25 candidates ===\n");
    println!("--- S-Store leaderboards (Fig. 2) ---");
    print_leaderboards(&mut sstore)?;

    // ---- Correctness (the demo's point) ------------------------------------
    use sstore_voter::checker::oracle_state;
    let expected = oracle_state(&oracle);
    let ds = diff_states(&expected, &capture_state(&mut sstore)?);
    let dh = diff_states(&expected, &capture_state(&mut hstore)?);
    println!("\n--- Correctness vs the rules of the show ---");
    println!("                          S-Store   H-Store");
    println!(
        "  wrong eliminations     {:>8}  {:>8}",
        ds.wrong_eliminations, dh.wrong_eliminations
    );
    println!(
        "  tally mismatches       {:>8}  {:>8}",
        ds.tally_mismatches, dh.tally_mismatches
    );
    println!(
        "  false current leader   {:>8}  {:>8}",
        ds.false_leader, dh.false_leader
    );
    println!(
        "  anomalies total        {:>8}  {:>8}",
        ds.total(),
        dh.total()
    );

    // ---- Performance (round trips + throughput) ----------------------------
    println!("\n--- Efficiency ---");
    println!("                          S-Store   H-Store");
    println!(
        "  client->PE trips       {:>8}  {:>8}",
        rs.client_pe_trips, rh.client_pe_trips
    );
    println!(
        "  PE->EE dispatches      {:>8}  {:>8}",
        rs.pe_ee_trips, rh.pe_ee_trips
    );
    println!(
        "  votes/second           {:>8.0}  {:>8.0}",
        rs.votes_per_sec, rh.votes_per_sec
    );
    println!(
        "\nS-Store processed the stream with {:.1}x fewer client round trips",
        rh.client_pe_trips as f64 / rs.client_pe_trips as f64
    );
    Ok(())
}
