//! Quickstart: a minimal streaming workflow with OLTP state.
//!
//! Builds a two-procedure workflow — sensor readings are cleaned, then
//! aggregated into a table — and shows the three things S-Store adds over
//! a plain OLTP engine: push-based workflows (PE triggers), native windows
//! with EE triggers, and transactional stream state.
//!
//! Run with: `cargo run --example quickstart`

use sstore_core::common::Value;
use sstore_core::{ProcSpec, SStoreBuilder, TriggerEvent};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = SStoreBuilder::new().build()?;

    // --- Schema: streams, a window, and regular tables ---------------------
    db.ddl("CREATE STREAM readings (sensor INT, celsius FLOAT)")?;
    db.ddl("CREATE STREAM cleaned (sensor INT, celsius FLOAT)")?;
    db.ddl("CREATE WINDOW w_recent (sensor INT, celsius FLOAT) ROWS 5 SLIDE 1")?;
    db.ddl(
        "CREATE TABLE sensor_stats (sensor INT NOT NULL, readings INT NOT NULL, \
         total FLOAT NOT NULL, PRIMARY KEY (sensor))",
    )?;
    db.ddl("CREATE TABLE rolling (k INT NOT NULL, avg_c FLOAT, PRIMARY KEY (k))")?;
    db.setup_sql("INSERT INTO rolling VALUES (0, NULL)", &[])?;

    // --- EE trigger: keep a rolling average fresh on every window slide ----
    db.create_ee_trigger(
        "rolling_avg",
        "w_recent",
        TriggerEvent::OnSlide,
        &["UPDATE rolling SET avg_c = (SELECT AVG(celsius) FROM w_recent) WHERE k = 0"],
    )?;

    // --- SP1: validate (drop physically impossible readings) ---------------
    db.register(
        ProcSpec::new("validate", |ctx| {
            for row in ctx.input().rows.clone() {
                let c = row[1].as_float()?;
                if (-80.0..=60.0).contains(&c) {
                    ctx.emit(row)?;
                }
            }
            Ok(())
        })
        .consumes("readings")
        .emits("cleaned"),
    )?;

    // --- SP2: aggregate into OLTP state + feed the window ------------------
    db.register(
        ProcSpec::new("aggregate", |ctx| {
            for row in ctx.input().rows.clone() {
                let sensor = row[0].clone();
                let celsius = row[1].clone();
                let seen = ctx.exec("exists", std::slice::from_ref(&sensor))?;
                if seen.rows.is_empty() {
                    ctx.exec("init", &[sensor.clone(), celsius.clone()])?;
                } else {
                    ctx.exec("bump", &[celsius.clone(), sensor.clone()])?;
                }
                ctx.exec("window", &[sensor, celsius])?;
            }
            Ok(())
        })
        .consumes("cleaned")
        .owns_window("w_recent")
        .stmt("exists", "SELECT sensor FROM sensor_stats WHERE sensor = ?")
        .stmt("init", "INSERT INTO sensor_stats VALUES (?, 1, ?)")
        .stmt(
            "bump",
            "UPDATE sensor_stats SET readings = readings + 1, total = total + ? WHERE sensor = ?",
        )
        .stmt("window", "INSERT INTO w_recent VALUES (?, ?)"),
    )?;

    // --- Push data through the workflow ------------------------------------
    println!("pushing 3 batches of readings (one bogus value)...\n");
    let batches: Vec<Vec<(i64, f64)>> = vec![
        vec![(1, 21.5), (2, 19.0)],
        vec![(1, 22.0), (2, 250.0)], // 250°C: dropped by SP1
        vec![(1, 22.5), (2, 19.4), (1, 23.0)],
    ];
    for batch in batches {
        let rows = batch
            .into_iter()
            .map(|(s, c)| vec![Value::Int(s), Value::Float(c)])
            .collect();
        let outcomes = db.submit_batch("validate", rows)?;
        println!(
            "  batch {} ran {} transaction executions",
            outcomes[0].batch,
            outcomes.len()
        );
    }

    // --- Inspect state with plain SQL ---------------------------------------
    let stats = db.query(
        "SELECT sensor, readings, total / readings AS mean FROM sensor_stats ORDER BY sensor",
        &[],
    )?;
    println!("\nper-sensor statistics:");
    for row in &stats.rows {
        println!(
            "  sensor {}: {} readings, mean {:.2} C",
            row[0],
            row[1],
            row[2].as_float()?
        );
    }

    let rolling = db.query("SELECT avg_c FROM rolling WHERE k = 0", &[])?;
    println!(
        "\nrolling average over the last 5 readings (EE-trigger maintained): {:.2} C",
        rolling.rows[0][0].as_float()?
    );

    let pe = db.stats();
    let ee = db.engine().stats();
    println!("\nengine counters:");
    println!("  client->PE round trips : {}", pe.client_pe_trips);
    println!("  PE->EE dispatches      : {}", ee.pe_ee_trips);
    println!("  PE trigger firings     : {}", pe.pe_trigger_firings);
    println!("  EE trigger firings     : {}", ee.insert_trigger_firings);
    println!("  window slides          : {}", ee.window_slides);
    println!("  stream rows GC'd       : {}", ee.rows_gcd);
    Ok(())
}
