//! The paper's §3.2 demo: BikeShare — OLTP + streaming in one system.
//!
//! Simulates a 50-station city for 10 simulated minutes: checkouts and
//! returns (OLTP), 1 Hz GPS ingestion with ride statistics and stolen-bike
//! alerts (streaming), and transactional real-time discounts (both). Then
//! renders the company dashboard (Fig. 5's data, as text).
//!
//! Run with: `cargo run --release --example bikeshare`

use sstore_bikeshare::{install, verify_invariants, BikeConfig, CitySim};
use sstore_core::SStoreBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = BikeConfig::default(); // 50 stations, 300 bikes, 200 riders
    let mut db = SStoreBuilder::new().build()?;
    install(&mut db, &cfg)?;

    let mut sim = CitySim::new(&mut db, cfg.clone(), 7)?;
    sim.p_start = 0.05;
    sim.p_theft = 0.005;

    println!("simulating 600 seconds of city traffic...\n");
    let report = sim.run(&mut db, 600)?;

    println!("=== BikeShare operations report ===");
    println!("  checkouts            {:>7}", report.checkouts);
    println!("  returns              {:>7}", report.returns);
    println!(
        "  checkout aborts      {:>7}   (station empty / rider busy)",
        report.checkout_aborts
    );
    println!(
        "  return diversions    {:>7}   (station full)",
        report.return_aborts
    );
    println!("  GPS pings ingested   {:>7}", report.gps_pings);
    println!("  stolen-bike alerts   {:>7}", report.alerts);
    println!("  discounts accepted   {:>7}", report.accepts);
    println!(
        "  acceptance conflicts {:>7}   (offer already claimed)",
        report.accept_conflicts
    );
    println!(
        "  revenue              {:>6}.{:02} $",
        report.total_charged / 100,
        report.total_charged % 100
    );

    // --- Fig. 5: stations with availability and live discounts --------------
    println!("\n=== Station dashboard (busiest 10 by traffic) ===");
    let stations = db.query(
        "SELECT s.station_id, s.bikes_available, s.docks, COUNT(r.ride_id) AS trips \
         FROM stations s JOIN rides r ON r.end_station = s.station_id \
         GROUP BY s.station_id, s.bikes_available, s.docks \
         ORDER BY trips DESC, s.station_id ASC LIMIT 10",
        &[],
    )?;
    println!("  station  bikes/docks  completed arrivals");
    for row in &stations.rows {
        println!(
            "  {:>7}  {:>5}/{:<5}  {:>8}",
            row[0], row[1], row[2], row[3]
        );
    }

    let live_offers = db.query(
        "SELECT station_id, pct FROM discounts WHERE status = 0 ORDER BY station_id LIMIT 5",
        &[],
    )?;
    println!("\n=== Live discount offers (first 5) ===");
    if live_offers.rows.is_empty() {
        println!("  (none outstanding)");
    }
    for row in &live_offers.rows {
        println!(
            "  station {:>3}: {}% off for dropping a bike here",
            row[0], row[1]
        );
    }

    // --- Ride statistics (Fig. 4's per-ride data) ---------------------------
    let rides = db.query(
        "SELECT COUNT(*), AVG(distance), MAX(max_speed) FROM rides WHERE end_ts IS NOT NULL",
        &[],
    )?;
    let r = &rides.rows[0];
    println!("\n=== Completed rides ===");
    println!(
        "  rides: {}   mean distance: {:.0} m   max speed seen: {:.1} m/s",
        r[0],
        r[1].as_float().unwrap_or(0.0),
        r[2].as_float().unwrap_or(0.0)
    );

    // The invariants every GUI relies on still hold after the whole run.
    verify_invariants(&mut db, &cfg)?;
    println!(
        "\nall transactional invariants verified (bike conservation, dock \
              capacity, discount exclusivity, single open ride per rider)"
    );

    let pe = db.stats();
    let ee = db.engine().stats();
    println!("\nengine counters: {} TEs committed, {} aborted, {} PE-trigger firings, {} stream rows GC'd",
        pe.committed, pe.user_aborts, pe.pe_trigger_firings, ee.rows_gcd);
    Ok(())
}
