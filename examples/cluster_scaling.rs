//! Shared-nothing scaling on the persistent partition runtime: the same
//! partitionable stream workload on 1, 2, 4, and 8 partitions, blocking
//! vs async (ticketed) ingest. Each partition is a long-lived worker
//! thread running the paper's single-sited serial discipline and draining
//! a bounded ingest queue in submission order; the router shards each
//! border batch by the declared partition-key column.
//!
//! Run with: `cargo run --release --example cluster_scaling`

use sstore_core::common::{Result, Row, Value};
use sstore_core::{Cluster, ProcSpec, SStore, SStoreBuilder};
use std::time::Instant;

fn deploy(db: &mut SStore) -> Result<()> {
    db.ddl("CREATE STREAM meter (household INT, watts INT)")?;
    db.ddl(
        "CREATE TABLE usage_totals (household INT NOT NULL, readings INT NOT NULL, \
         watts_total INT NOT NULL, PRIMARY KEY (household))",
    )?;
    db.register(
        ProcSpec::new("meter_ingest", |ctx| {
            for row in ctx.input().rows.clone() {
                let household = row[0].clone();
                let watts = row[1].clone();
                let seen = ctx.exec("get", std::slice::from_ref(&household))?;
                if seen.rows.is_empty() {
                    ctx.exec("init", &[household, watts])?;
                } else {
                    ctx.exec("bump", &[watts, household])?;
                }
            }
            Ok(())
        })
        .consumes("meter")
        .stmt(
            "get",
            "SELECT household FROM usage_totals WHERE household = ?",
        )
        .stmt("init", "INSERT INTO usage_totals VALUES (?, 1, ?)")
        .stmt(
            "bump",
            "UPDATE usage_totals SET readings = readings + 1, watts_total = watts_total + ? \
             WHERE household = ?",
        ),
    )?;
    Ok(())
}

fn workload(n: usize) -> Vec<Row> {
    (0..n)
        .map(|i| {
            Row::new(vec![
                Value::Int((i % 10_000) as i64),
                Value::Int(100 + (i % 900) as i64),
            ])
        })
        .collect()
}

fn main() -> Result<()> {
    const READINGS: usize = 4_000;
    const BATCH: usize = 500;
    // Model a remote EE: every statement dispatch waits out a 20 us round
    // trip. The wait blocks the partition worker but releases the core, so
    // workers overlap their trips — the cluster scales even on a host with
    // fewer cores than partitions, exactly like a networked deployment.
    const EE_LATENCY_US: u64 = 20;
    println!(
        "smart-meter ingestion: {READINGS} readings, batches of {BATCH}, \
              {EE_LATENCY_US} us/statement EE round trip\n"
    );
    println!("partitions | ingest | wall secs | readings/s | speedup | coalesced");

    let mut base = 0.0f64;
    for n in [1usize, 2, 4, 8] {
        for asynchronous in [false, true] {
            let builder = SStoreBuilder::new().ee_trip_latency(EE_LATENCY_US);
            let cluster = Cluster::new(n, &builder, deploy)?;
            let rows = workload(READINGS);
            let t0 = Instant::now();
            if asynchronous {
                // Pipelined: enqueue everything, then resolve the tickets.
                let mut tickets = Vec::new();
                for chunk in rows.chunks(BATCH) {
                    tickets.push(cluster.submit_batch_async("meter_ingest", chunk.to_vec())?);
                }
                for t in tickets {
                    t.wait()?;
                }
            } else {
                // Blocking: one submission at a time.
                for chunk in rows.chunks(BATCH) {
                    cluster.submit_batch_partitioned("meter_ingest", chunk.to_vec(), 0)?;
                }
            }
            let secs = t0.elapsed().as_secs_f64();
            if n == 1 && !asynchronous {
                base = secs;
            }
            println!(
                "{:>10} | {:>6} | {:>9.2} | {:>10.0} | {:>6.2}x | {:>9}",
                n,
                if asynchronous { "async" } else { "sync" },
                secs,
                READINGS as f64 / secs,
                base / secs,
                cluster.metrics().total_coalesced(),
            );
            // Sanity: every reading landed exactly once.
            let total: i64 = cluster
                .query_all("SELECT SUM(readings) FROM usage_totals", &[])?
                .iter()
                .map(|r| r[0].as_int().unwrap_or(0))
                .sum();
            assert_eq!(total, READINGS as i64);
        }
    }
    println!(
        "\n(each partition worker is single-sited and serial, per the paper; the\n          runtime adds shared-nothing parallelism across partition keys, and\n          async ingest lets workers coalesce queued batches into one scheduler\n          pass — the PE-boundary saving)"
    );
    Ok(())
}
