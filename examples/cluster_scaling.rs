//! Shared-nothing scaling: the same partitionable stream workload on 1, 2,
//! 4, and 8 partitions. Each partition runs the paper's single-sited
//! serial discipline; the cluster dispatches shards in parallel threads.
//!
//! Run with: `cargo run --release --example cluster_scaling`

use sstore_core::common::{Result, Value};
use sstore_core::{Cluster, ProcSpec, SStore, SStoreBuilder};
use std::time::Instant;

fn deploy(db: &mut SStore) -> Result<()> {
    db.ddl("CREATE STREAM meter (household INT, watts INT)")?;
    db.ddl(
        "CREATE TABLE usage_totals (household INT NOT NULL, readings INT NOT NULL, \
         watts_total INT NOT NULL, PRIMARY KEY (household))",
    )?;
    db.register(
        ProcSpec::new("meter_ingest", |ctx| {
            for row in ctx.input().rows.clone() {
                let household = row[0].clone();
                let watts = row[1].clone();
                let seen = ctx.exec("get", std::slice::from_ref(&household))?;
                if seen.rows.is_empty() {
                    ctx.exec("init", &[household, watts])?;
                } else {
                    ctx.exec("bump", &[watts, household])?;
                }
            }
            Ok(())
        })
        .consumes("meter")
        .stmt(
            "get",
            "SELECT household FROM usage_totals WHERE household = ?",
        )
        .stmt("init", "INSERT INTO usage_totals VALUES (?, 1, ?)")
        .stmt(
            "bump",
            "UPDATE usage_totals SET readings = readings + 1, watts_total = watts_total + ? \
             WHERE household = ?",
        ),
    )?;
    Ok(())
}

fn workload(n: usize) -> Vec<Vec<Value>> {
    (0..n)
        .map(|i| {
            vec![
                Value::Int((i % 10_000) as i64),
                Value::Int(100 + (i % 900) as i64),
            ]
        })
        .collect()
}

fn main() -> Result<()> {
    const READINGS: usize = 100_000;
    const BATCH: usize = 1_000;
    // Charge 2 us per PE->EE statement dispatch, modelling the IPC cost a
    // deployed engine pays; without it the in-process workload is so cheap
    // that thread-dispatch overhead hides the parallelism.
    const EE_COST_US: u64 = 2;
    println!(
        "smart-meter ingestion: {READINGS} readings, batches of {BATCH}, \
              {EE_COST_US} us/statement dispatch\n"
    );
    println!("partitions | wall secs | readings/s | speedup");

    let mut base = 0.0f64;
    for n in [1usize, 2, 4, 8] {
        let builder = SStoreBuilder::new().ee_trip_cost(EE_COST_US);
        let mut cluster = Cluster::new(n, &builder, deploy)?;
        let rows = workload(READINGS);
        let t0 = Instant::now();
        for chunk in rows.chunks(BATCH) {
            cluster.submit_batch_partitioned("meter_ingest", chunk.to_vec(), 0)?;
        }
        let secs = t0.elapsed().as_secs_f64();
        if n == 1 {
            base = secs;
        }
        println!(
            "{:>10} | {:>9.2} | {:>10.0} | {:>6.2}x",
            n,
            secs,
            READINGS as f64 / secs,
            base / secs
        );
        // Sanity: every reading landed exactly once.
        let total: i64 = cluster
            .query_all("SELECT SUM(readings) FROM usage_totals", &[])?
            .iter()
            .map(|r| r[0].as_int().unwrap_or(0))
            .sum();
        assert_eq!(total, READINGS as i64);
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "\n(each partition is single-sited and serial, per the paper; the cluster\n          adds shared-nothing parallelism across partition keys — wall-clock\n          speedup is bounded by min(partitions, cores); this host has {cores} core(s))"
    );
    Ok(())
}
