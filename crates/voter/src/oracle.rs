//! Ground-truth oracle.
//!
//! A pure-Rust simulator of the Voter rules with **batch semantics that
//! mirror the S-Store workflow exactly**: each input batch goes through a
//! validation pass (SP1), a counting pass (SP2), and any eliminations the
//! counting pass signalled (SP3) — before the next batch begins. Experiment
//! E1 compares both engines' final state against this oracle.

use crate::schema::VoterConfig;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// The reference implementation of the game's rules.
#[derive(Debug, Clone)]
pub struct Oracle {
    cfg: VoterConfig,
    /// Live contestants.
    pub contestants: BTreeSet<i64>,
    /// Per-contestant counted votes (live contestants only).
    pub counts: BTreeMap<i64, i64>,
    /// Live votes: vote id -> (phone, contestant).
    votes: HashMap<i64, (i64, i64)>,
    /// Phones with a live vote.
    phones: HashSet<i64>,
    /// Eliminated contestants in order, with the vote total at elimination.
    pub eliminated: Vec<(i64, i64)>,
    /// Counted votes so far.
    pub total: i64,
    since: i64,
    next_vote_id: i64,
    /// Rejected submissions.
    pub rejected: i64,
}

impl Oracle {
    /// Fresh oracle for a configuration.
    pub fn new(cfg: VoterConfig) -> Self {
        let contestants: BTreeSet<i64> = (1..=cfg.num_contestants).collect();
        let counts = contestants.iter().map(|&c| (c, 0)).collect();
        Oracle {
            cfg,
            contestants,
            counts,
            votes: HashMap::new(),
            phones: HashSet::new(),
            eliminated: Vec::new(),
            total: 0,
            since: 0,
            next_vote_id: 0,
            rejected: 0,
        }
    }

    /// Process one input batch through the three workflow passes.
    pub fn feed_batch(&mut self, batch: &[(i64, i64)]) {
        // SP1: validate and record.
        let mut validated = Vec::new();
        for &(phone, contestant) in batch {
            if !self.contestants.contains(&contestant) || self.phones.contains(&phone) {
                self.rejected += 1;
                continue;
            }
            self.next_vote_id += 1;
            self.votes.insert(self.next_vote_id, (phone, contestant));
            self.phones.insert(phone);
            validated.push(contestant);
        }
        // SP2: count and signal.
        let mut signals = 0;
        for contestant in validated {
            *self.counts.get_mut(&contestant).expect("validated") += 1;
            self.total += 1;
            self.since += 1;
            if self.since >= self.cfg.elimination_every {
                self.since = 0;
                signals += 1;
            }
        }
        // SP3: eliminate once per signal.
        for _ in 0..signals {
            self.eliminate_lowest();
        }
    }

    /// Convenience: feed votes one at a time (batch size 1).
    pub fn feed(&mut self, phone: i64, contestant: i64) {
        self.feed_batch(&[(phone, contestant)]);
    }

    fn eliminate_lowest(&mut self) {
        // The show runs until a single winner remains.
        if self.contestants.len() <= 1 {
            return;
        }
        // Lowest count, ties broken by lowest contestant number — matching
        // SP3's ORDER BY num_votes ASC, contestant_number ASC LIMIT 1.
        let Some((&loser, _)) = self.counts.iter().min_by_key(|(&c, &n)| (n, c)) else {
            return;
        };
        self.contestants.remove(&loser);
        self.counts.remove(&loser);
        self.eliminated.push((loser, self.total));
        // Return votes to the people: free those phones.
        let dead: Vec<i64> = self
            .votes
            .iter()
            .filter(|(_, &(_, c))| c == loser)
            .map(|(&vid, _)| vid)
            .collect();
        for vid in dead {
            let (phone, _) = self.votes.remove(&vid).expect("listed");
            self.phones.remove(&phone);
        }
    }

    /// Live recorded votes.
    pub fn live_votes(&self) -> usize {
        self.votes.len()
    }

    /// The current leader (highest count, ties to lowest number).
    pub fn leader(&self) -> Option<i64> {
        self.counts
            .iter()
            .max_by_key(|(&c, &n)| (n, std::cmp::Reverse(c)))
            .map(|(&c, _)| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: i64, every: i64) -> VoterConfig {
        VoterConfig {
            num_contestants: n,
            elimination_every: every,
            trending_window: 10,
            trending_slide: 1,
        }
    }

    #[test]
    fn validates_and_counts() {
        let mut o = Oracle::new(cfg(3, 100));
        o.feed(1, 1);
        o.feed(2, 1);
        o.feed(1, 2); // duplicate phone
        o.feed(3, 99); // no such contestant
        assert_eq!(o.total, 2);
        assert_eq!(o.rejected, 2);
        assert_eq!(o.counts[&1], 2);
    }

    #[test]
    fn eliminates_lowest_with_tiebreak() {
        let mut o = Oracle::new(cfg(3, 4));
        // 4 votes: c1 x2, c2 x2 -> c3 has 0, eliminated.
        o.feed(1, 1);
        o.feed(2, 1);
        o.feed(3, 2);
        o.feed(4, 2);
        assert_eq!(o.eliminated, vec![(3, 4)]);
        // Next 4 votes: all for c1 -> c2 (2 votes) vs c1; c2 loses.
        for p in 5..9 {
            o.feed(p, 1);
        }
        assert_eq!(o.eliminated.len(), 2);
        assert_eq!(o.eliminated[1].0, 2);
        assert_eq!(o.leader(), Some(1));
    }

    #[test]
    fn eliminated_votes_free_phones() {
        let mut o = Oracle::new(cfg(3, 4));
        o.feed(10, 3); // phone 10 votes for c3
        o.feed(1, 1);
        o.feed(2, 1);
        o.feed(3, 2);
        // 4 counted votes; lowest is c2(1) vs c3(1)? counts: c1=2,c2=1,c3=1
        // tie c2/c3 -> lowest number c2 eliminated.
        assert_eq!(o.eliminated[0].0, 2);
        // phone 3 voted for c2; freed, can vote again.
        o.feed(3, 1);
        assert_eq!(o.total, 5);
        assert_eq!(o.rejected, 0);
        // phone 10 still bound (c3 alive).
        o.feed(10, 1);
        assert_eq!(o.rejected, 1);
    }

    #[test]
    fn batch_semantics_defer_elimination() {
        let mut per_vote = Oracle::new(cfg(3, 2));
        let mut batched = Oracle::new(cfg(3, 2));
        let votes = [(1i64, 1i64), (2, 1), (3, 1), (4, 1)];
        for &(p, c) in &votes {
            per_vote.feed(p, c);
        }
        batched.feed_batch(&votes);
        // Both eliminate twice, but the *timing* of validation differs only
        // across batches, so final eliminated sets can match here.
        assert_eq!(per_vote.eliminated.len(), 2);
        assert_eq!(batched.eliminated.len(), 2);
    }

    #[test]
    fn runs_to_a_winner() {
        let mut o = Oracle::new(cfg(5, 3));
        let mut phone = 0;
        while o.contestants.len() > 1 {
            phone += 1;
            // Everyone votes for the live contestant with the lowest id.
            let c = *o.contestants.iter().next().unwrap();
            o.feed(phone, c);
        }
        assert_eq!(o.contestants.len(), 1);
        assert_eq!(o.eliminated.len(), 4);
    }
}
