//! Workload runners for both systems.
//!
//! * [`run_sstore`] — push-based: votes are submitted as border batches;
//!   PE triggers drive SP2/SP3.
//! * [`run_hstore`] — the paper's baseline: a [`PipelinedClient`] drives
//!   the workflow itself. Follow-up invocations (SP2 for a validated vote,
//!   SP3 for an elimination signal) join the request queue *behind* newer
//!   votes — the reordering that produces §3.1's anomalies.

use crate::workload::Vote;
use sstore_common::{Result, Value};
use sstore_core::{ClientRequest, PipelinedClient, SStore};
use std::time::Instant;

/// What a run measured.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Votes submitted.
    pub votes: u64,
    /// TEs committed.
    pub committed: u64,
    /// Wall time in seconds.
    pub elapsed_secs: f64,
    /// Client→PE round trips consumed.
    pub client_pe_trips: u64,
    /// PE→EE statement dispatches consumed.
    pub pe_ee_trips: u64,
    /// Votes per wall-second.
    pub votes_per_sec: f64,
}

fn report(db: &SStore, votes: u64, elapsed_secs: f64) -> RunReport {
    RunReport {
        votes,
        committed: db.stats().committed,
        elapsed_secs,
        client_pe_trips: db.stats().client_pe_trips,
        pe_ee_trips: db.engine().stats().pe_ee_trips,
        votes_per_sec: if elapsed_secs > 0.0 {
            votes as f64 / elapsed_secs
        } else {
            0.0
        },
    }
}

/// Drive `votes` through the S-Store workflow in batches of `batch_size`.
pub fn run_sstore(db: &mut SStore, votes: &[Vote], batch_size: usize) -> Result<RunReport> {
    assert!(batch_size > 0);
    db.reset_stats();
    let start = Instant::now();
    for chunk in votes.chunks(batch_size) {
        let rows = chunk
            .iter()
            .map(|v| vec![Value::Int(v.phone), Value::Int(v.contestant)])
            .collect();
        db.submit_batch("validate", rows)?;
        db.advance_clock(1_000); // 1ms of show time per submission
    }
    Ok(report(
        db,
        votes.len() as u64,
        start.elapsed().as_secs_f64(),
    ))
}

/// Drive `votes` against H-Store mode with a client-owned workflow.
///
/// `inflight` is the client's pipelining window: how many requests it keeps
/// outstanding. With `inflight = 1` the client fully serializes (no
/// anomalies, maximal latency); larger windows let fresh votes overtake
/// pending SP2/SP3 follow-ups, exactly the paper's failure scenario.
pub fn run_hstore(db: &mut SStore, votes: &[Vote], inflight: usize) -> Result<RunReport> {
    assert!(inflight > 0);
    db.reset_stats();
    let start = Instant::now();

    let mut client = PipelinedClient::new(|req, outcome, out| {
        if !outcome.is_committed() {
            return;
        }
        match req.proc.as_str() {
            "validate" => {
                // Forward each validated vote to the leaderboard proc.
                if let Some(resp) = &outcome.response {
                    if !resp.rows.is_empty() {
                        out.push(ClientRequest::follow_up("leaderboard", resp.rows.clone()));
                    }
                }
            }
            "leaderboard" => {
                // The response tells the client how many eliminations to run.
                if let Some(resp) = &outcome.response {
                    let signals = resp.scalar().and_then(|v| v.as_int().ok()).unwrap_or(0);
                    for _ in 0..signals {
                        out.push(ClientRequest::follow_up(
                            "eliminate",
                            vec![vec![Value::Int(0)]],
                        ));
                    }
                }
            }
            _ => {}
        }
    });

    let mut pending_votes = votes.iter();
    loop {
        // Keep the pipeline full: new votes arrive while follow-ups wait.
        while client.pending() < inflight {
            match pending_votes.next() {
                Some(v) => {
                    client.feed(ClientRequest::external(
                        "validate",
                        vec![vec![Value::Int(v.phone), Value::Int(v.contestant)]],
                    ));
                    db.advance_clock(1_000);
                }
                None => break,
            }
        }
        if client.step(db)?.is_none() {
            break;
        }
    }
    Ok(report(
        db,
        votes.len() as u64,
        start.elapsed().as_secs_f64(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{capture_state, diff_states, oracle_state};
    use crate::oracle::Oracle;
    use crate::procs::{install, WindowImpl};
    use crate::schema::VoterConfig;
    use crate::workload::VoteGen;
    use sstore_core::SStoreBuilder;

    fn cfg() -> VoterConfig {
        VoterConfig {
            num_contestants: 10,
            elimination_every: 20,
            trending_window: 20,
            trending_slide: 5,
        }
    }

    #[test]
    fn sstore_matches_oracle_batch_1() {
        let config = cfg();
        let votes = VoteGen::new(11, config.num_contestants).take(300);
        let mut db = SStoreBuilder::new().build().unwrap();
        install(&mut db, WindowImpl::Native, &config).unwrap();
        run_sstore(&mut db, &votes, 1).unwrap();

        let mut oracle = Oracle::new(config);
        for v in &votes {
            oracle.feed(v.phone, v.contestant);
        }
        let d = diff_states(&oracle_state(&oracle), &capture_state(&mut db).unwrap());
        assert!(d.is_clean(), "S-Store diverged from oracle: {d:?}");
    }

    #[test]
    fn sstore_matches_oracle_batched() {
        let config = cfg();
        let votes = VoteGen::new(5, config.num_contestants).take(300);
        for batch_size in [2usize, 10, 64] {
            let mut db = SStoreBuilder::new().build().unwrap();
            install(&mut db, WindowImpl::Native, &config).unwrap();
            run_sstore(&mut db, &votes, batch_size).unwrap();

            let mut oracle = Oracle::new(config.clone());
            for chunk in votes.chunks(batch_size) {
                let pairs: Vec<(i64, i64)> =
                    chunk.iter().map(|v| (v.phone, v.contestant)).collect();
                oracle.feed_batch(&pairs);
            }
            let d = diff_states(&oracle_state(&oracle), &capture_state(&mut db).unwrap());
            assert!(d.is_clean(), "batch={batch_size} diverged: {d:?}");
        }
    }

    #[test]
    fn hstore_with_pipelining_produces_anomalies() {
        let config = cfg();
        let votes = VoteGen::new(11, config.num_contestants).take(600);

        let mut db = SStoreBuilder::new().hstore_mode().build().unwrap();
        install(&mut db, WindowImpl::Emulated, &config).unwrap();
        run_hstore(&mut db, &votes, 16).unwrap();

        let mut oracle = Oracle::new(config);
        for v in &votes {
            oracle.feed(v.phone, v.contestant);
        }
        let d = diff_states(&oracle_state(&oracle), &capture_state(&mut db).unwrap());
        assert!(
            !d.is_clean(),
            "expected H-Store anomalies with inflight=16, got a clean run"
        );
        assert!(d.wrong_eliminations > 0 || d.tally_mismatches > 0);
    }

    #[test]
    fn hstore_serialized_client_is_correct() {
        // inflight=1 -> the client waits for every follow-up before the
        // next vote: slow but correct, confirming the anomaly really is
        // caused by reordering, not by some engine bug.
        let config = cfg();
        let votes = VoteGen::new(11, config.num_contestants).take(200);
        let mut db = SStoreBuilder::new().hstore_mode().build().unwrap();
        install(&mut db, WindowImpl::Emulated, &config).unwrap();
        run_hstore(&mut db, &votes, 1).unwrap();

        let mut oracle = Oracle::new(config);
        for v in &votes {
            oracle.feed(v.phone, v.contestant);
        }
        let d = diff_states(&oracle_state(&oracle), &capture_state(&mut db).unwrap());
        assert!(d.is_clean(), "serialized H-Store client diverged: {d:?}");
    }

    #[test]
    fn sstore_uses_fewer_client_trips() {
        let config = cfg();
        let votes = VoteGen::new(3, config.num_contestants).take(200);

        let mut s = SStoreBuilder::new().build().unwrap();
        install(&mut s, WindowImpl::Native, &config).unwrap();
        let rs = run_sstore(&mut s, &votes, 1).unwrap();

        let mut h = SStoreBuilder::new().hstore_mode().build().unwrap();
        install(&mut h, WindowImpl::Emulated, &config).unwrap();
        let rh = run_hstore(&mut h, &votes, 8).unwrap();

        assert!(
            rs.client_pe_trips < rh.client_pe_trips,
            "push-based S-Store should need fewer client trips: {} vs {}",
            rs.client_pe_trips,
            rh.client_pe_trips
        );
        assert!(
            rs.pe_ee_trips < rh.pe_ee_trips,
            "native windows should need fewer PE-EE trips: {} vs {}",
            rs.pe_ee_trips,
            rh.pe_ee_trips
        );
    }
}
