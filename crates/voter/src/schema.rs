//! Voter schema and configuration.

use sstore_common::{Result, Value};
use sstore_core::SStore;

/// Tunables for the Voter application.
#[derive(Debug, Clone)]
pub struct VoterConfig {
    /// Number of candidates at the start of the show (paper: 25).
    pub num_contestants: i64,
    /// Eliminate the lowest candidate every this many counted votes
    /// (paper: 100).
    pub elimination_every: i64,
    /// Trending leaderboard window size in votes (paper: last 100 votes).
    pub trending_window: i64,
    /// Trending window slide (votes between leaderboard refreshes).
    pub trending_slide: i64,
}

impl Default for VoterConfig {
    fn default() -> Self {
        VoterConfig {
            num_contestants: 25,
            elimination_every: 100,
            trending_window: 100,
            trending_slide: 10,
        }
    }
}

/// Create every table, stream, window, and index the Voter app needs, and
/// seed the contestants. Idempotence is not required (fresh partitions).
pub fn install_schema(db: &mut SStore, config: &VoterConfig) -> Result<()> {
    db.ddl(
        "CREATE TABLE contestants (contestant_number INT NOT NULL, \
         contestant_name VARCHAR(64) NOT NULL, PRIMARY KEY (contestant_number))",
    )?;
    db.ddl(
        "CREATE TABLE votes (vote_id INT NOT NULL, phone_number INT NOT NULL, \
         contestant_number INT NOT NULL, created TIMESTAMP, PRIMARY KEY (vote_id))",
    )?;
    db.create_index("votes", "votes_by_phone", &["phone_number"], false)?;
    db.create_index(
        "votes",
        "votes_by_contestant",
        &["contestant_number"],
        false,
    )?;
    db.ddl(
        "CREATE TABLE lb_counts (contestant_number INT NOT NULL, num_votes INT NOT NULL, \
         PRIMARY KEY (contestant_number))",
    )?;
    db.ddl(
        "CREATE TABLE lb_trending (contestant_number INT NOT NULL, num_votes INT NOT NULL, \
         PRIMARY KEY (contestant_number))",
    )?;
    db.ddl(
        "CREATE TABLE vote_totals (k INT NOT NULL, total INT NOT NULL, \
         since_elim INT NOT NULL, next_vote_id INT NOT NULL, rejected INT NOT NULL, \
         PRIMARY KEY (k))",
    )?;
    db.ddl(
        "CREATE TABLE eliminations (elim_order INT NOT NULL, contestant_number INT NOT NULL, \
         at_total INT NOT NULL, PRIMARY KEY (elim_order))",
    )?;
    // Streams connecting the workflow (Fig. 3).
    db.ddl("CREATE STREAM s_votes (phone_number INT, contestant_number INT)")?;
    db.ddl("CREATE STREAM s_validated (vote_id INT, phone_number INT, contestant_number INT)")?;
    db.ddl("CREATE STREAM s_elim (at_total INT)")?;
    // Trending window (native path). The emulated path uses this raw table:
    db.ddl(&format!(
        "CREATE WINDOW w_trending (contestant_number INT) ROWS {} SLIDE {}",
        config.trending_window, config.trending_slide
    ))?;
    db.ddl(
        "CREATE TABLE trending_raw (seq INT NOT NULL, contestant_number INT NOT NULL, \
         PRIMARY KEY (seq))",
    )?;

    // Seed contestants, counts, and counters (setup path — deterministic,
    // so recovery's redeployment reproduces it).
    for c in 1..=config.num_contestants {
        db.setup_sql(
            "INSERT INTO contestants VALUES (?, ?)",
            &[Value::Int(c), Value::Text(format!("Candidate {c}"))],
        )?;
        db.setup_sql("INSERT INTO lb_counts VALUES (?, 0)", &[Value::Int(c)])?;
    }
    db.setup_sql("INSERT INTO vote_totals VALUES (0, 0, 0, 0, 0)", &[])?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstore_core::SStoreBuilder;

    #[test]
    fn schema_installs_and_seeds() {
        let mut db = SStoreBuilder::new().build().unwrap();
        install_schema(&mut db, &VoterConfig::default()).unwrap();
        let n = db
            .query("SELECT COUNT(*) FROM contestants", &[])
            .unwrap()
            .scalar_i64()
            .unwrap();
        assert_eq!(n, 25);
        let counts = db
            .query("SELECT COUNT(*) FROM lb_counts", &[])
            .unwrap()
            .scalar_i64()
            .unwrap();
        assert_eq!(counts, 25);
        assert!(db.engine().db().resolve("w_trending").is_ok());
    }

    #[test]
    fn custom_config_sizes() {
        let mut db = SStoreBuilder::new().build().unwrap();
        let cfg = VoterConfig {
            num_contestants: 5,
            elimination_every: 10,
            trending_window: 20,
            trending_slide: 2,
        };
        install_schema(&mut db, &cfg).unwrap();
        let n = db
            .query("SELECT COUNT(*) FROM contestants", &[])
            .unwrap()
            .scalar_i64()
            .unwrap();
        assert_eq!(n, 5);
    }
}
