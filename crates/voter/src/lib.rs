//! # sstore-voter — Voter with Leaderboard (paper §3.1)
//!
//! The "Canadian Dreamboat" demo: viewers vote by phone for one of 25
//! candidates; every 100 counted votes the candidate with the fewest votes
//! is eliminated and their votes are returned to the voters; three
//! leaderboards (top-3, bottom-3, trending over the last 100 votes) are
//! maintained continuously (Fig. 2).
//!
//! The workflow (Fig. 3) is three stored procedures:
//!
//! * **SP1 `validate`** — checks the contestant exists and the phone has
//!   not voted, records the vote, and forwards it downstream;
//! * **SP2 `leaderboard`** — updates per-candidate counts, feeds the
//!   trending window, and signals when the elimination threshold is hit;
//! * **SP3 `eliminate`** — removes the lowest candidate, their votes
//!   (freeing those phones), and their leaderboard entries.
//!
//! All three share writable tables, so S-Store runs the whole workflow
//! serially per input batch — exactly the guarantee H-Store lacks, and the
//! source of the demo's anomalies when the same workload is driven
//! client-side against H-Store mode ([`runner::run_hstore`]).

pub mod checker;
pub mod oracle;
pub mod procs;
pub mod runner;
pub mod schema;
pub mod workload;

pub use checker::{capture_state, diff_states, Discrepancies, VoterState};
pub use oracle::Oracle;
pub use procs::{install, WindowImpl};
pub use runner::{run_hstore, run_sstore, RunReport};
pub use schema::VoterConfig;
pub use workload::VoteGen;
