//! State capture and anomaly detection (experiment E1).
//!
//! The demo's claim: running the same votes against naïve H-Store yields
//! *incorrect results* — wrong candidates eliminated, stale tallies, even a
//! false winner — while S-Store matches the rules exactly. This module
//! captures an engine's Voter state and diffs it against the [`Oracle`].

use crate::oracle::Oracle;
use sstore_common::Result;
use sstore_core::SStore;
use std::collections::{BTreeMap, BTreeSet};

/// A comparable snapshot of the Voter application state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoterState {
    /// Live contestants.
    pub contestants: BTreeSet<i64>,
    /// Per-contestant counted votes.
    pub counts: BTreeMap<i64, i64>,
    /// Eliminated contestants, in order.
    pub eliminated: Vec<i64>,
    /// Counted votes.
    pub total: i64,
    /// Rejected submissions.
    pub rejected: i64,
    /// Live rows in the votes table.
    pub live_votes: i64,
    /// Current leader (top of the leaderboard).
    pub leader: Option<i64>,
}

/// Read the engine's state through SQL.
pub fn capture_state(db: &mut SStore) -> Result<VoterState> {
    let contestants = db
        .query("SELECT contestant_number FROM contestants", &[])?
        .rows
        .iter()
        .map(|r| r[0].as_int())
        .collect::<Result<BTreeSet<_>>>()?;
    let counts = db
        .query("SELECT contestant_number, num_votes FROM lb_counts", &[])?
        .rows
        .iter()
        .map(|r| Ok((r[0].as_int()?, r[1].as_int()?)))
        .collect::<Result<BTreeMap<_, _>>>()?;
    let eliminated = db
        .query(
            "SELECT contestant_number FROM eliminations ORDER BY elim_order",
            &[],
        )?
        .rows
        .iter()
        .map(|r| r[0].as_int())
        .collect::<Result<Vec<_>>>()?;
    let totals = db.query("SELECT total, rejected FROM vote_totals WHERE k = 0", &[])?;
    let total = totals.rows[0][0].as_int()?;
    let rejected = totals.rows[0][1].as_int()?;
    let live_votes = db.query("SELECT COUNT(*) FROM votes", &[])?.scalar_i64()?;
    let leader = db
        .query(
            "SELECT contestant_number FROM lb_counts \
             ORDER BY num_votes DESC, contestant_number ASC LIMIT 1",
            &[],
        )?
        .rows
        .first()
        .map(|r| r[0].as_int())
        .transpose()?;
    Ok(VoterState {
        contestants,
        counts,
        eliminated,
        total,
        rejected,
        live_votes,
        leader,
    })
}

/// Snapshot the oracle in the same shape.
pub fn oracle_state(o: &Oracle) -> VoterState {
    VoterState {
        contestants: o.contestants.clone(),
        counts: o.counts.clone(),
        eliminated: o.eliminated.iter().map(|&(c, _)| c).collect(),
        total: o.total,
        rejected: o.rejected,
        live_votes: o.live_votes() as i64,
        leader: o.leader(),
    }
}

/// The anomaly counts experiment E1 reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Discrepancies {
    /// Positions where the elimination sequences differ (including length
    /// differences) — "incorrect candidates being removed" (paper §3.1).
    pub wrong_eliminations: usize,
    /// Live contestants present in one state but not the other.
    pub contestant_set_diff: usize,
    /// Contestants whose counted-vote tallies differ.
    pub tally_mismatches: usize,
    /// Difference in total counted votes (absolute).
    pub total_delta: i64,
    /// "The possibility for a false winner": does the current leader
    /// differ?
    pub false_leader: bool,
}

impl Discrepancies {
    /// True when the states agree completely.
    pub fn is_clean(&self) -> bool {
        *self == Discrepancies::default()
    }

    /// Total anomaly count (for one-line reporting).
    pub fn total(&self) -> usize {
        self.wrong_eliminations
            + self.contestant_set_diff
            + self.tally_mismatches
            + self.total_delta.unsigned_abs() as usize
            + usize::from(self.false_leader)
    }
}

/// Diff two states (reference first).
pub fn diff_states(expected: &VoterState, actual: &VoterState) -> Discrepancies {
    let mut d = Discrepancies::default();

    let max_len = expected.eliminated.len().max(actual.eliminated.len());
    for i in 0..max_len {
        if expected.eliminated.get(i) != actual.eliminated.get(i) {
            d.wrong_eliminations += 1;
        }
    }
    d.contestant_set_diff = expected
        .contestants
        .symmetric_difference(&actual.contestants)
        .count();
    let all_candidates: BTreeSet<i64> = expected
        .counts
        .keys()
        .chain(actual.counts.keys())
        .copied()
        .collect();
    for c in all_candidates {
        if expected.counts.get(&c) != actual.counts.get(&c) {
            d.tally_mismatches += 1;
        }
    }
    d.total_delta = (expected.total - actual.total).abs();
    d.false_leader = expected.leader != actual.leader;
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::VoterConfig;

    fn state(elims: &[i64], leader: Option<i64>) -> VoterState {
        VoterState {
            contestants: (1..=3).collect(),
            counts: (1..=3).map(|c| (c, 10)).collect(),
            eliminated: elims.to_vec(),
            total: 30,
            rejected: 0,
            live_votes: 30,
            leader,
        }
    }

    #[test]
    fn identical_states_are_clean() {
        let a = state(&[4, 5], Some(1));
        let d = diff_states(&a, &a.clone());
        assert!(d.is_clean());
        assert_eq!(d.total(), 0);
    }

    #[test]
    fn elimination_divergence_counted() {
        let a = state(&[4, 5], Some(1));
        let b = state(&[4, 6, 7], Some(1));
        let d = diff_states(&a, &b);
        assert_eq!(d.wrong_eliminations, 2); // position 1 differs + extra
        assert!(!d.is_clean());
    }

    #[test]
    fn false_leader_detected() {
        let a = state(&[], Some(1));
        let b = state(&[], Some(2));
        let d = diff_states(&a, &b);
        assert!(d.false_leader);
        assert_eq!(d.total(), 1);
    }

    #[test]
    fn oracle_state_shape() {
        let mut o = Oracle::new(VoterConfig {
            num_contestants: 3,
            elimination_every: 100,
            trending_window: 10,
            trending_slide: 1,
        });
        o.feed(1, 2);
        let s = oracle_state(&o);
        assert_eq!(s.total, 1);
        assert_eq!(s.counts[&2], 1);
        assert_eq!(s.leader, Some(2));
        assert_eq!(s.live_votes, 1);
    }
}
