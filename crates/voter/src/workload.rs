//! Vote workload generation.
//!
//! Deterministic, seeded vote streams with the statistical shape of the
//! demo: zipfian candidate popularity (reality shows have favourites),
//! occasional duplicate phone numbers (repeat voters), and occasional
//! invalid contestant numbers (typos).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated vote submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vote {
    /// Caller's phone number.
    pub phone: i64,
    /// Contestant voted for (may be invalid).
    pub contestant: i64,
}

/// Seeded vote generator.
#[derive(Debug, Clone)]
pub struct VoteGen {
    rng: StdRng,
    /// Zipf CDF over contestant ranks.
    cdf: Vec<f64>,
    num_contestants: i64,
    /// Probability a vote reuses an already-used phone.
    p_duplicate: f64,
    /// Probability a vote names a nonexistent contestant.
    p_invalid: f64,
    used_phones: Vec<i64>,
    next_phone: i64,
}

impl VoteGen {
    /// Generator with the demo's default mix: zipf skew 1.0, 5% duplicate
    /// phones, 2% invalid contestants.
    pub fn new(seed: u64, num_contestants: i64) -> Self {
        VoteGen::with_mix(seed, num_contestants, 1.0, 0.05, 0.02)
    }

    /// Fully parameterized generator.
    pub fn with_mix(
        seed: u64,
        num_contestants: i64,
        zipf_s: f64,
        p_duplicate: f64,
        p_invalid: f64,
    ) -> Self {
        assert!(num_contestants > 0);
        // Zipf CDF: P(rank k) proportional to 1 / k^s.
        let weights: Vec<f64> = (1..=num_contestants)
            .map(|k| 1.0 / (k as f64).powf(zipf_s))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        VoteGen {
            rng: StdRng::seed_from_u64(seed),
            cdf,
            num_contestants,
            p_duplicate,
            p_invalid,
            used_phones: Vec::new(),
            next_phone: 10_000_000,
        }
    }

    /// Produce the next vote.
    pub fn next_vote(&mut self) -> Vote {
        let contestant = if self.rng.random_bool(self.p_invalid) {
            self.num_contestants + 1 + self.rng.random_range(0..100)
        } else {
            let u: f64 = self.rng.random();
            let rank = match self
                .cdf
                .binary_search_by(|p| p.partial_cmp(&u).expect("no NaN"))
            {
                Ok(i) | Err(i) => i,
            };
            (rank as i64 + 1).min(self.num_contestants)
        };
        let phone = if !self.used_phones.is_empty() && self.rng.random_bool(self.p_duplicate) {
            let i = self.rng.random_range(0..self.used_phones.len());
            self.used_phones[i]
        } else {
            self.next_phone += 1;
            self.used_phones.push(self.next_phone);
            self.next_phone
        };
        Vote { phone, contestant }
    }

    /// Produce `n` votes.
    pub fn take(&mut self, n: usize) -> Vec<Vote> {
        (0..n).map(|_| self.next_vote()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<Vote> = VoteGen::new(42, 25).take(100);
        let b: Vec<Vote> = VoteGen::new(42, 25).take(100);
        let c: Vec<Vote> = VoteGen::new(43, 25).take(100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zipf_is_skewed() {
        let votes = VoteGen::with_mix(1, 25, 1.0, 0.0, 0.0).take(5000);
        let top = votes.iter().filter(|v| v.contestant == 1).count();
        let bottom = votes.iter().filter(|v| v.contestant == 25).count();
        assert!(
            top > bottom * 3,
            "zipf should favor rank 1: top={top} bottom={bottom}"
        );
    }

    #[test]
    fn invalid_and_duplicate_mix() {
        let votes = VoteGen::with_mix(7, 10, 1.0, 0.5, 0.5).take(2000);
        let invalid = votes.iter().filter(|v| v.contestant > 10).count();
        assert!(invalid > 500, "expected many invalid votes, got {invalid}");
        let mut phones: Vec<i64> = votes.iter().map(|v| v.phone).collect();
        let total = phones.len();
        phones.sort_unstable();
        phones.dedup();
        assert!(phones.len() < total, "expected duplicate phones");
    }

    #[test]
    fn all_valid_when_mix_zero() {
        let votes = VoteGen::with_mix(7, 10, 1.0, 0.0, 0.0).take(500);
        assert!(votes.iter().all(|v| (1..=10).contains(&v.contestant)));
        let mut phones: Vec<i64> = votes.iter().map(|v| v.phone).collect();
        let n = phones.len();
        phones.sort_unstable();
        phones.dedup();
        assert_eq!(phones.len(), n);
    }
}
