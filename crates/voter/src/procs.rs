//! The three Voter stored procedures (Fig. 3) and their registration.

use crate::schema::{install_schema, VoterConfig};
use sstore_common::{Result, Row, Value};
use sstore_core::{ExecMode, ProcSpec, QueryResult, SStore, TriggerEvent};

/// How the trending window is maintained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowImpl {
    /// S-Store native window + EE slide trigger: SP2 issues one insert per
    /// vote; eviction and the `lb_trending` refresh happen inside the EE.
    Native,
    /// H-Store-style emulation: SP2 maintains a plain table with explicit
    /// insert/evict/refresh statements — several extra PE→EE round trips
    /// per vote (experiment E3b).
    Emulated,
}

/// Install the full Voter application: schema, seeds, (native-path) EE
/// trigger, and the three procedures. Wiring adapts to the partition's
/// mode: in S-Store mode the procedures are connected by streams and PE
/// triggers; in H-Store mode they stand alone and the client must drive
/// the workflow ([`crate::runner::run_hstore`]).
pub fn install(db: &mut SStore, window_impl: WindowImpl, config: &VoterConfig) -> Result<()> {
    install_schema(db, config)?;
    let wired = db.mode() == ExecMode::SStore;

    if window_impl == WindowImpl::Native {
        // Refresh the trending leaderboard inside the EE on every slide.
        db.create_ee_trigger(
            "trending_refresh",
            "w_trending",
            TriggerEvent::OnSlide,
            &[
                "DELETE FROM lb_trending",
                "INSERT INTO lb_trending SELECT contestant_number, COUNT(*) \
                 FROM w_trending GROUP BY contestant_number",
            ],
        )?;
    }

    register_sp1(db, wired)?;
    register_sp2(db, wired, window_impl, config)?;
    register_sp3(db, wired)?;
    Ok(())
}

/// SP1 — validate and record each vote; forward valid ones.
fn register_sp1(db: &mut SStore, wired: bool) -> Result<()> {
    let mut spec = ProcSpec::new("validate", move |ctx| {
        let rows = ctx.input().rows.clone();
        let mut validated = Vec::new();
        for row in rows {
            let phone = row[0].clone();
            let contestant = row[1].clone();
            let exists = ctx.exec("contestant_exists", std::slice::from_ref(&contestant))?;
            if exists.rows.is_empty() {
                ctx.exec("reject", &[])?;
                continue;
            }
            let dup = ctx.exec("phone_voted", std::slice::from_ref(&phone))?;
            if !dup.rows.is_empty() {
                ctx.exec("reject", &[])?;
                continue;
            }
            ctx.exec("bump_vote_id", &[])?;
            let vid = ctx.exec("get_vote_id", &[])?.scalar_i64()?;
            ctx.exec(
                "record",
                &[Value::Int(vid), phone.clone(), contestant.clone()],
            )?;
            let out = Row::new(vec![Value::Int(vid), phone, contestant]);
            if ctx.output_stream.is_some() {
                ctx.emit(out.clone())?;
            }
            validated.push(out);
        }
        // The H-Store client forwards these to SP2 itself.
        ctx.respond(QueryResult {
            columns: vec![
                "vote_id".into(),
                "phone_number".into(),
                "contestant_number".into(),
            ],
            rows: validated,
            rows_affected: 0,
        });
        Ok(())
    })
    .stmt(
        "contestant_exists",
        "SELECT contestant_number FROM contestants WHERE contestant_number = ?",
    )
    .stmt(
        "phone_voted",
        "SELECT vote_id FROM votes WHERE phone_number = ?",
    )
    .stmt(
        "bump_vote_id",
        "UPDATE vote_totals SET next_vote_id = next_vote_id + 1 WHERE k = 0",
    )
    .stmt(
        "get_vote_id",
        "SELECT next_vote_id FROM vote_totals WHERE k = 0",
    )
    .stmt("record", "INSERT INTO votes VALUES (?, ?, ?, NOW())")
    .stmt(
        "reject",
        "UPDATE vote_totals SET rejected = rejected + 1 WHERE k = 0",
    );
    if wired {
        spec = spec.consumes("s_votes").emits("s_validated");
    }
    db.register(spec)?;
    Ok(())
}

/// SP2 — maintain the leaderboards and signal eliminations.
fn register_sp2(
    db: &mut SStore,
    wired: bool,
    window_impl: WindowImpl,
    config: &VoterConfig,
) -> Result<()> {
    let every = config.elimination_every;
    let window = config.trending_window;
    let slide = config.trending_slide;
    let native = window_impl == WindowImpl::Native;

    let mut spec = ProcSpec::new("leaderboard", move |ctx| {
        let rows = ctx.input().rows.clone();
        let mut signals = 0i64;
        for row in rows {
            let contestant = row[2].clone();
            ctx.exec("bump_count", std::slice::from_ref(&contestant))?;
            ctx.exec("bump_total", &[])?;
            let total = ctx.exec("get_total", &[])?.scalar_i64()?;
            if native {
                // One statement; the EE window + slide trigger do the rest.
                ctx.exec("win_insert", std::slice::from_ref(&contestant))?;
            } else {
                // Emulated window: explicit insert, evict, periodic refresh.
                ctx.exec("raw_insert", &[Value::Int(total), contestant.clone()])?;
                ctx.exec("raw_evict", &[Value::Int(total - window)])?;
                if total % slide == 0 {
                    ctx.exec("trend_clear", &[])?;
                    ctx.exec("trend_refresh", &[])?;
                }
            }
            let since = ctx.exec("get_since", &[])?.scalar_i64()?;
            if since >= every {
                ctx.exec("reset_since", &[])?;
                if ctx.output_stream.is_some() {
                    ctx.emit(vec![Value::Int(total)])?;
                }
                signals += 1;
            }
        }
        ctx.respond(QueryResult {
            columns: vec!["signals".into()],
            rows: vec![vec![Value::Int(signals)].into()],
            rows_affected: 0,
        });
        Ok(())
    })
    .owns_window("w_trending")
    .stmt(
        "bump_count",
        "UPDATE lb_counts SET num_votes = num_votes + 1 WHERE contestant_number = ?",
    )
    .stmt(
        "bump_total",
        "UPDATE vote_totals SET total = total + 1, since_elim = since_elim + 1 WHERE k = 0",
    )
    .stmt("get_total", "SELECT total FROM vote_totals WHERE k = 0")
    .stmt(
        "get_since",
        "SELECT since_elim FROM vote_totals WHERE k = 0",
    )
    .stmt(
        "reset_since",
        "UPDATE vote_totals SET since_elim = 0 WHERE k = 0",
    )
    .stmt("win_insert", "INSERT INTO w_trending VALUES (?)")
    .stmt("raw_insert", "INSERT INTO trending_raw VALUES (?, ?)")
    .stmt("raw_evict", "DELETE FROM trending_raw WHERE seq <= ?")
    .stmt("trend_clear", "DELETE FROM lb_trending")
    .stmt(
        "trend_refresh",
        "INSERT INTO lb_trending SELECT contestant_number, COUNT(*) \
         FROM trending_raw GROUP BY contestant_number",
    );
    if wired {
        spec = spec.consumes("s_validated").emits("s_elim");
    }
    db.register(spec)?;
    Ok(())
}

/// SP3 — eliminate the lowest-vote candidate (once per signal tuple).
fn register_sp3(db: &mut SStore, wired: bool) -> Result<()> {
    let mut spec = ProcSpec::new("eliminate", move |ctx| {
        let signals = ctx.input().len().max(1);
        for _ in 0..signals {
            // The show runs until a single winner is declared (paper §3.1).
            if ctx.exec("remaining", &[])?.scalar_i64()? <= 1 {
                return Ok(());
            }
            let loser_q = ctx.exec("find_loser", &[])?;
            let Some(loser) = loser_q.rows.first().map(|r| r[0].clone()) else {
                return Ok(());
            };
            let at_total = ctx.exec("get_total", &[])?.scalar_i64()?;
            let order = ctx.exec("elim_count", &[])?.scalar_i64()? + 1;
            ctx.exec(
                "record_elim",
                &[Value::Int(order), loser.clone(), Value::Int(at_total)],
            )?;
            ctx.exec("delete_votes", std::slice::from_ref(&loser))?;
            ctx.exec("delete_count", std::slice::from_ref(&loser))?;
            ctx.exec("delete_trending", std::slice::from_ref(&loser))?;
            ctx.exec("delete_contestant", std::slice::from_ref(&loser))?;
        }
        Ok(())
    })
    .stmt("remaining", "SELECT COUNT(*) FROM contestants")
    .stmt(
        "find_loser",
        "SELECT contestant_number FROM lb_counts \
         ORDER BY num_votes ASC, contestant_number ASC LIMIT 1",
    )
    .stmt("get_total", "SELECT total FROM vote_totals WHERE k = 0")
    .stmt("elim_count", "SELECT COUNT(*) FROM eliminations")
    .stmt("record_elim", "INSERT INTO eliminations VALUES (?, ?, ?)")
    .stmt(
        "delete_votes",
        "DELETE FROM votes WHERE contestant_number = ?",
    )
    .stmt(
        "delete_count",
        "DELETE FROM lb_counts WHERE contestant_number = ?",
    )
    .stmt(
        "delete_trending",
        "DELETE FROM lb_trending WHERE contestant_number = ?",
    )
    .stmt(
        "delete_contestant",
        "DELETE FROM contestants WHERE contestant_number = ?",
    );
    if wired {
        spec = spec.consumes("s_elim");
    }
    db.register(spec)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstore_core::SStoreBuilder;

    fn small_config() -> VoterConfig {
        VoterConfig {
            num_contestants: 3,
            elimination_every: 5,
            trending_window: 10,
            trending_slide: 1,
        }
    }

    #[test]
    fn installs_in_both_modes() {
        let mut s = SStoreBuilder::new().build().unwrap();
        install(&mut s, WindowImpl::Native, &small_config()).unwrap();
        assert_eq!(s.workflow().len(), 3);
        assert!(s.workflow().has_shared_writables());

        let mut h = SStoreBuilder::new().hstore_mode().build().unwrap();
        install(&mut h, WindowImpl::Emulated, &small_config()).unwrap();
        assert_eq!(h.workflow().len(), 3);
    }

    #[test]
    fn single_vote_flows_through_workflow() {
        let mut db = SStoreBuilder::new().build().unwrap();
        install(&mut db, WindowImpl::Native, &small_config()).unwrap();
        let outcomes = db
            .submit_batch("validate", vec![vec![Value::Int(5551234), Value::Int(2)]])
            .unwrap();
        // SP1 then SP2; no elimination yet.
        assert_eq!(outcomes.len(), 2);
        let n = db
            .query(
                "SELECT num_votes FROM lb_counts WHERE contestant_number = 2",
                &[],
            )
            .unwrap()
            .scalar_i64()
            .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn elimination_fires_after_threshold() {
        let mut db = SStoreBuilder::new().build().unwrap();
        install(&mut db, WindowImpl::Native, &small_config()).unwrap();
        // 5 valid votes (distinct phones): all for contestant 1 except one
        // for contestant 2 -> contestant 3 has 0 votes and is eliminated.
        for i in 0..5i64 {
            let contestant = if i == 0 { 2 } else { 1 };
            db.submit_batch(
                "validate",
                vec![vec![Value::Int(100 + i), Value::Int(contestant)]],
            )
            .unwrap();
        }
        let elim = db
            .query("SELECT contestant_number FROM eliminations", &[])
            .unwrap();
        assert_eq!(elim.rows.len(), 1);
        assert_eq!(elim.rows[0][0], Value::Int(3));
        // Contestant 3 is gone; votes for it now rejected.
        db.submit_batch("validate", vec![vec![Value::Int(999), Value::Int(3)]])
            .unwrap();
        let rejected = db
            .query("SELECT rejected FROM vote_totals WHERE k = 0", &[])
            .unwrap()
            .scalar_i64()
            .unwrap();
        assert_eq!(rejected, 1);
    }

    #[test]
    fn duplicate_phone_rejected() {
        let mut db = SStoreBuilder::new().build().unwrap();
        install(&mut db, WindowImpl::Native, &small_config()).unwrap();
        db.submit_batch("validate", vec![vec![Value::Int(7), Value::Int(1)]])
            .unwrap();
        db.submit_batch("validate", vec![vec![Value::Int(7), Value::Int(2)]])
            .unwrap();
        let total = db
            .query("SELECT total FROM vote_totals WHERE k = 0", &[])
            .unwrap()
            .scalar_i64()
            .unwrap();
        assert_eq!(total, 1);
    }

    #[test]
    fn trending_leaderboard_refreshes_natively() {
        let mut db = SStoreBuilder::new().build().unwrap();
        let cfg = VoterConfig {
            num_contestants: 3,
            elimination_every: 1000,
            trending_window: 4,
            trending_slide: 1,
        };
        install(&mut db, WindowImpl::Native, &cfg).unwrap();
        for i in 0..6i64 {
            let c = if i < 4 { 1 } else { 2 };
            db.submit_batch("validate", vec![vec![Value::Int(100 + i), Value::Int(c)]])
                .unwrap();
        }
        // Window holds the last 4 votes: contestants [1,1,2,2].
        let r = db
            .query(
                "SELECT contestant_number, num_votes FROM lb_trending \
                 ORDER BY contestant_number",
                &[],
            )
            .unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(2), Value::Int(2)],
            ]
        );
    }

    #[test]
    fn emulated_window_matches_native_trending() {
        let cfg = VoterConfig {
            num_contestants: 3,
            elimination_every: 1000,
            trending_window: 4,
            trending_slide: 1,
        };
        let mut native = SStoreBuilder::new().build().unwrap();
        install(&mut native, WindowImpl::Native, &cfg).unwrap();
        let mut emulated = SStoreBuilder::new().build().unwrap();
        install(&mut emulated, WindowImpl::Emulated, &cfg).unwrap();
        for i in 0..7i64 {
            let c = 1 + (i % 3);
            for db in [&mut native, &mut emulated] {
                db.submit_batch("validate", vec![vec![Value::Int(100 + i), Value::Int(c)]])
                    .unwrap();
            }
        }
        let q = "SELECT contestant_number, num_votes FROM lb_trending ORDER BY contestant_number";
        let a = native.query(q, &[]).unwrap();
        let b = emulated.query(q, &[]).unwrap();
        assert_eq!(a.rows, b.rows);
        // And the native path used fewer PE->EE dispatches.
        assert!(
            native.engine().stats().pe_ee_trips < emulated.engine().stats().pe_ee_trips,
            "native {} !< emulated {}",
            native.engine().stats().pe_ee_trips,
            emulated.engine().stats().pe_ee_trips
        );
    }
}
