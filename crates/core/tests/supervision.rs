//! Worker supervision and admission control: bounded ticket waits,
//! queue-full shedding with backoff-retry, supervised restart of a
//! killed worker on a durable partition (exactly-once preserved), and
//! the permanent-down story for non-durable partitions — clients always
//! see typed errors, never a panic or a hang.

use sstore_core::common::fault::{self, KillMode};
use sstore_core::common::{Result, Row, Value};
use sstore_core::workloads::{count_events_rows, deploy_count_events};
use sstore_core::{
    Cluster, PartitionHealth, ProcSpec, RetryPolicy, RouteSpec, SStore, SStoreBuilder,
};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

/// The fault registry is process-global and `worker-killed-live` sits on
/// every worker's hot path, so tests in this binary must not overlap.
static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|p| p.into_inner())
}

fn tempdir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sstore-supervision-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// A deliberately slow procedure: each batch naps, so ingest queues can
/// be held full deterministically.
fn deploy_slow(db: &mut SStore) -> Result<()> {
    db.ddl("CREATE STREAM ev (key INT)")?;
    db.register(
        ProcSpec::new("nap", |_ctx| {
            std::thread::sleep(Duration::from_millis(20));
            Ok(())
        })
        .consumes("ev"),
    )?;
    Ok(())
}

fn one_row() -> Vec<Row> {
    vec![Row::new(vec![Value::Int(1)])]
}

fn totals_sum(cluster: &Cluster) -> i64 {
    cluster
        .query_all("SELECT SUM(total) FROM totals", &[])
        .unwrap()
        .iter()
        .filter_map(|r| r[0].as_int().ok())
        .sum()
}

#[test]
fn ticket_wait_timeout_expires_with_typed_error() {
    let _g = lock();
    let cluster = Cluster::new(1, &SStoreBuilder::new(), deploy_slow).unwrap();
    // 20ms of work cannot resolve in 1ms: the bounded wait must expire
    // with Error::Timeout (and the work still completes on the worker).
    let t = cluster.submit_batch_async("nap", one_row()).unwrap();
    let err = t.wait_timeout(Duration::from_millis(1)).unwrap_err();
    assert_eq!(err.kind(), "timeout");
    assert!(
        !err.is_retryable(),
        "a timed-out submission still executes; blind resubmit would double it"
    );
    // A generous bound resolves normally.
    let t = cluster.submit_batch_async("nap", one_row()).unwrap();
    let out = t.wait_timeout(Duration::from_secs(30)).unwrap();
    assert!(out
        .iter()
        .all(|po| po.outcomes.iter().all(|o| o.is_committed())));
}

#[test]
fn admission_control_sheds_when_full_and_backoff_retry_succeeds() {
    let _g = lock();
    // Depth-1 queue + 20ms batches: the queue is full whenever the
    // worker is mid-nap with one submission parked behind it.
    let cluster =
        Cluster::with_config(1, RouteSpec::hash(0), 1, &SStoreBuilder::new(), deploy_slow).unwrap();
    let mut tickets = vec![
        cluster.submit_batch_async("nap", one_row()).unwrap(),
        cluster.submit_batch_async("nap", one_row()).unwrap(),
    ];
    let mut shed = false;
    for _ in 0..50 {
        match cluster.try_submit_batch_async("nap", one_row()) {
            Ok(t) => tickets.push(t),
            Err(e) => {
                assert_eq!(e.kind(), "overloaded");
                assert!(
                    e.is_retryable(),
                    "a shed batch landed nowhere; retry is safe"
                );
                shed = true;
                break;
            }
        }
    }
    assert!(shed, "a depth-1 queue behind 20ms batches must shed");
    // The standard client response: back off (deterministic jitter) and
    // resubmit until admitted.
    let policy = RetryPolicy {
        max_attempts: 64,
        base: Duration::from_millis(2),
        cap: Duration::from_millis(20),
        seed: 42,
    };
    tickets.push(
        policy
            .run(|| cluster.try_submit_batch_async("nap", one_row()))
            .expect("backoff retry must eventually be admitted"),
    );
    for t in tickets {
        for po in t.wait().unwrap() {
            assert!(po.outcomes.iter().all(|o| o.is_committed()));
        }
    }
    let m = cluster.metrics();
    assert!(m.sheds >= 1, "sheds must be counted in ClusterMetrics");
    assert_eq!(m.health, vec![PartitionHealth::Healthy]);
}

#[test]
fn killed_worker_restarts_and_preserves_exactly_once() {
    let _g = lock();
    let dir = tempdir("killed");
    let builder = SStoreBuilder::new().durability(&dir, 1);
    let cluster = Cluster::new(1, &builder, deploy_count_events).unwrap();
    // Batch A commits before the kill.
    cluster
        .submit_batch_async("count_events", count_events_rows(10, 5, 3))
        .unwrap()
        .wait()
        .unwrap();
    let after_a = totals_sum(&cluster);

    // The worker dies while holding batch B — at the kill point the
    // group is captured but nothing is logged or executed, so the
    // ticket must resolve retryable (the batch provably did not run).
    fault::arm_once("worker-killed-live", 1, KillMode::Panic);
    let err = cluster
        .submit_batch_async("count_events", count_events_rows(10, 5, 3))
        .unwrap()
        .wait()
        .unwrap_err();
    assert_eq!(err.kind(), "partition_down");
    assert!(err.is_retryable());

    // Retrying rides out the restart (sends queue behind recovery) and
    // lands batch B exactly once.
    RetryPolicy::default()
        .run(|| {
            cluster
                .submit_batch_async("count_events", count_events_rows(10, 5, 3))?
                .wait()
        })
        .expect("the restarted partition must accept the retry");
    assert_eq!(
        totals_sum(&cluster),
        after_a * 2,
        "batch B must land exactly once across the restart"
    );

    let m = cluster.metrics();
    assert_eq!(m.worker_restarts, 1);
    assert_eq!(m.health, vec![PartitionHealth::Healthy]);
    assert!(m.partitions[0].available);
    cluster.quiesce().unwrap();

    // The restart recovery is the same machinery as cold recovery: a
    // fresh handle over the same dirs agrees byte-for-byte.
    drop(cluster);
    let recovered = Cluster::recover(
        1,
        RouteSpec::hash(0),
        16,
        &builder,
        deploy_count_events,
        &[],
    )
    .unwrap();
    assert_eq!(totals_sum(&recovered), after_a * 2);
}

#[test]
fn non_durable_partition_goes_down_with_typed_errors() {
    let _g = lock();
    let cluster = Cluster::new(2, &SStoreBuilder::new(), deploy_count_events).unwrap();
    cluster
        .submit_batch_async("count_events", count_events_rows(40, 20, 3))
        .unwrap()
        .wait()
        .unwrap();

    // A panicking client closure kills worker 0; without a log there is
    // nothing to restart from, so the partition must go Down — and the
    // caller must get a typed error, not a propagated panic.
    let res: Result<()> = cluster.with_partition(0, |_db| panic!("injected test panic"));
    assert_eq!(res.unwrap_err().kind(), "partition_down");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while cluster.health()[0] != PartitionHealth::Down {
        assert!(
            std::time::Instant::now() < deadline,
            "supervisor must mark the non-durable partition Down"
        );
        std::thread::yield_now();
    }
    assert_eq!(cluster.health()[1], PartitionHealth::Healthy);

    // Every surface answers with typed errors: submissions (some rows
    // route to the dead partition), admission control, scatter-gather
    // reads, and quiesce — which must fail fast, not hang.
    let err = cluster
        .submit_batch_async("count_events", count_events_rows(40, 20, 3))
        .unwrap_err();
    assert_eq!(err.kind(), "partition_down");
    let err = cluster
        .try_submit_batch_async("count_events", count_events_rows(40, 20, 3))
        .unwrap_err();
    assert_eq!(err.kind(), "partition_down");
    let err = cluster
        .query_all("SELECT SUM(total) FROM totals", &[])
        .unwrap_err();
    assert_eq!(err.kind(), "partition_down");
    assert_eq!(cluster.quiesce().unwrap_err().kind(), "partition_down");

    // Metrics keep rendering through the outage: the down partition is
    // an explicit placeholder, the survivor still reports.
    let m = cluster.metrics();
    assert!(!m.partitions[0].available);
    assert!(m.partitions[1].available);
    assert_eq!(m.health[0], PartitionHealth::Down);
    // Dropping the cluster with a tombstoned worker must not hang.
}
