//! Crash/quiesce interleaving on cross-partition edges: a receiver that
//! dies at the `forward-logged` kill point (forward durable, edge ack
//! never sent) must make an in-flight [`Cluster::quiesce`] fail fast
//! rather than hang, and the unacked envelope must not be stranded —
//! recovery re-forwards it from the sender's upstream backup and the
//! receiver's high-water dedupe keeps delivery exactly-once.

use sstore_core::common::fault::{self, KillMode};
use sstore_core::workloads::{deploy_two_stage, two_stage_rows, TWO_STAGE_EDGES};
use sstore_core::{Cluster, RouteSpec, SStoreBuilder};
use std::path::PathBuf;

fn tempdir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sstore-quiesce-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn recovered_cluster(dir: &PathBuf) -> Cluster {
    Cluster::recover(
        2,
        RouteSpec::hash(0),
        16,
        &SStoreBuilder::new().durability(dir, 1),
        deploy_two_stage,
        TWO_STAGE_EDGES,
    )
    .unwrap()
}

fn dest_sum(cluster: &Cluster) -> i64 {
    cluster
        .query_all("SELECT SUM(n) FROM dest_totals", &[])
        .unwrap()
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .sum()
}

#[test]
fn crash_during_quiesce_does_not_strand_unacked_envelopes() {
    let dir = tempdir("edges");
    {
        let cluster = Cluster::with_edges(
            2,
            RouteSpec::hash(0),
            16,
            &SStoreBuilder::new().durability(&dir, 1),
            deploy_two_stage,
            TWO_STAGE_EDGES,
        )
        .unwrap();
        // Every receiver dies on its first forward (sticky): the forward
        // is durably logged there, but the edge ack releasing the
        // sender's upstream backup is never sent.
        fault::arm("forward-logged", 1, KillMode::Panic);
        cluster
            .submit_batch_async("route_events", two_stage_rows(40, 10))
            .unwrap()
            .wait()
            .unwrap();
        // Quiesce while the edge traffic crashes under it: the in-flight
        // count can never drain, so it must surface the dead workers as
        // an error instead of spinning forever.
        let err = cluster.quiesce();
        assert!(
            err.is_err(),
            "quiesce over crashed edge receivers must fail, not hang"
        );
        fault::disarm();
        // Dropping the wreck is the crash: the dead receivers hold
        // durable-but-unacked forwards, the senders hold unacked
        // upstream backups.
    }

    let recovered = recovered_cluster(&dir);
    recovered.quiesce().unwrap();
    assert_eq!(
        dest_sum(&recovered),
        40,
        "every tuple must arrive exactly once after the crash"
    );
    let m = recovered.metrics();
    let deduped: u64 = m.partitions.iter().map(|p| p.forwards_deduped).sum();
    assert!(
        deduped >= 1,
        "the re-forwarded envelope must have hit the high-water dedupe"
    );

    // The recovered cluster keeps flowing across the same edges, and a
    // second recovery replays to the same exactly-once state.
    recovered
        .submit_batch_async("route_events", two_stage_rows(10, 10))
        .unwrap()
        .wait()
        .unwrap();
    recovered.quiesce().unwrap();
    assert_eq!(dest_sum(&recovered), 50);
    drop(recovered);
    let again = recovered_cluster(&dir);
    again.quiesce().unwrap();
    assert_eq!(dest_sum(&again), 50, "replay of the replay stays exact");
    drop(again);
    std::fs::remove_dir_all(dir).ok();
}
