//! Property tests for the partition router and the shared-nothing runtime:
//! routing is total and stable over arbitrary keys and partition counts,
//! and any interleaving of per-partition async submissions merges to the
//! same table state as the single-partition reference (determinism of the
//! worker runtime).

use proptest::prelude::*;
use sstore_core::common::{Row, Value};
use sstore_core::workloads::deploy_count_events as deploy;
use sstore_core::{Cluster, RouteSpec, Router, SStoreBuilder};

fn arb_key() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        ".{0,8}".prop_map(Value::Text),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every non-NULL key routes to exactly one in-range partition, and
    /// routing the same key twice gives the same partition.
    #[test]
    fn hash_routing_is_total_and_stable(key in arb_key(), n in 1usize..8) {
        let r = Router::new(RouteSpec::hash(0), n).unwrap();
        let a = r.route_key(&key).unwrap();
        let b = r.route_key(&key).unwrap();
        prop_assert_eq!(a, b);
        prop_assert!((a.raw() as usize) < n);
    }

    /// Range routing is total over i64 keys and respects its bounds.
    #[test]
    fn range_routing_is_total_and_monotone(k in any::<i64>(), split in -1000i64..1000) {
        let r = Router::new(RouteSpec::range(0, vec![split]), 2).unwrap();
        let p = r.route_key(&Value::Int(k)).unwrap();
        prop_assert_eq!(p.raw(), u32::from(k >= split));
    }

    /// Sharding partitions the rows: every row lands in exactly one shard
    /// and shard order preserves input order per partition.
    #[test]
    fn sharding_is_a_partition_of_the_input(
        keys in prop::collection::vec(any::<i64>(), 0..64),
        n in 1usize..6,
    ) {
        let r = Router::new(RouteSpec::hash(0), n).unwrap();
        let rows: Vec<Row> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| Row::new(vec![Value::Int(*k), Value::Int(i as i64)]))
            .collect();
        let shards = r.shard(rows.clone()).unwrap();
        let total: usize = shards.iter().map(Vec::len).sum();
        prop_assert_eq!(total, rows.len());
        for (p, shard) in shards.iter().enumerate() {
            let mut last_seq = -1i64;
            for row in shard {
                prop_assert_eq!(r.route(row).unwrap().raw() as usize, p);
                let seq = row[1].as_int().unwrap();
                prop_assert!(seq > last_seq, "per-partition order broken");
                last_seq = seq;
            }
        }
    }
}

fn state(rows: Vec<Row>) -> Vec<Row> {
    let mut rows = rows;
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any interleaving of per-partition async submissions merges to the
    /// same table state as the single-partition reference: submissions are
    /// split into differently-sized chunks, pushed through the async path
    /// (workers coalesce and drain concurrently), and tickets are awaited
    /// in an arbitrary order driven by `wait_order_seed`.
    #[test]
    fn async_interleavings_match_single_partition_reference(
        events in prop::collection::vec((0i64..32, 0i64..100), 1..120),
        partitions in 1usize..5,
        chunk in 1usize..40,
        wait_order_seed in any::<u64>(),
    ) {
        let rows: Vec<Row> = events
            .iter()
            .map(|(k, a)| Row::new(vec![Value::Int(*k), Value::Int(*a)]))
            .collect();

        // Single-partition reference, one synchronous batch at a time.
        let mut single = SStoreBuilder::new().build().unwrap();
        deploy(&mut single).unwrap();
        for c in rows.chunks(chunk) {
            single.submit_batch("count_events", c.to_vec()).unwrap();
        }
        let reference = state(single.query("SELECT * FROM totals", &[]).unwrap().rows);

        // Cluster, async ingest, tickets awaited in a shuffled order.
        let cluster = Cluster::new(partitions, &SStoreBuilder::new(), deploy).unwrap();
        let mut tickets = Vec::new();
        for c in rows.chunks(chunk) {
            tickets.push(cluster.submit_batch_async("count_events", c.to_vec()).unwrap());
        }
        let mut order: Vec<usize> = (0..tickets.len()).collect();
        // Deterministic pseudo-shuffle from the seed.
        let mut s = wait_order_seed | 1;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut tickets: Vec<Option<sstore_core::Ticket>> = tickets.into_iter().map(Some).collect();
        for i in order {
            for po in tickets[i].take().unwrap().wait().unwrap() {
                prop_assert!(po.outcomes.iter().all(|o| o.is_committed()));
            }
        }
        let merged = state(cluster.query_all("SELECT * FROM totals", &[]).unwrap());
        prop_assert_eq!(merged, reference);
    }
}
