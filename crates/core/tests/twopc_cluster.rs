//! Cluster-level tests of the cross-partition transaction coordinator:
//! atomic commit/abort across workers, the single-partition fast path
//! (byte-identical to the PR 2 ingest path), cross-partition workflow
//! edges, and distributed recovery from durable state.

use sstore_core::common::fault::{self, KillMode};
use sstore_core::common::{Row, Value};
use sstore_core::workloads::{
    deploy_count_events, deploy_count_events_multi, deploy_two_stage, two_stage_rows,
    TWO_STAGE_EDGES,
};
use sstore_core::{Cluster, RouteSpec, SStoreBuilder};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

/// The fault registry is process-global, so every test in this binary
/// serializes through this lock — an armed kill point must never fire in
/// a neighbouring test's cluster.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn fault_lock() -> MutexGuard<'static, ()> {
    let guard = FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    fault::disarm(); // a poisoned predecessor must not leak an armed point
    guard
}

fn tempdir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sstore-2pc-cluster-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

/// Keys guaranteed to straddle at least two partitions of a 2-partition
/// hash router (0..8 hashes onto both sides for the fixed DefaultHasher).
fn straddling_rows() -> Vec<Row> {
    (0..8i64)
        .map(|k| Row::new(vec![Value::Int(k), Value::Int(k * 10)]))
        .collect()
}

#[test]
fn atomic_batch_commits_on_every_partition_exactly_once() {
    let _guard = fault_lock();
    let cluster = Cluster::new(2, &SStoreBuilder::new(), deploy_count_events_multi).unwrap();
    let outcomes = cluster
        .submit_batch_atomic("count_events", straddling_rows())
        .unwrap()
        .wait()
        .unwrap();
    assert!(outcomes.len() >= 2, "batch must have straddled partitions");
    for po in &outcomes {
        assert!(po.outcomes.iter().all(|o| o.is_committed()));
    }
    let n: i64 = cluster
        .query_all("SELECT SUM(n) FROM totals", &[])
        .unwrap()
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .sum();
    assert_eq!(n, 8);
    let stats = cluster.coordinator_stats();
    assert_eq!(stats.multi_partition_txns, 1);
    assert_eq!(stats.commits, 1);
    assert_eq!(stats.prepares_sent, 2);
    let m = cluster.metrics();
    assert_eq!(m.partitions.iter().map(|p| p.twopc_commits).sum::<u64>(), 2);
}

#[test]
fn one_no_vote_aborts_the_whole_transaction() {
    let _guard = fault_lock();
    let cluster = Cluster::new(2, &SStoreBuilder::new(), deploy_count_events_multi).unwrap();
    // One poison row (negative amount) makes its partition vote no; every
    // other fragment must roll back too.
    let mut rows = straddling_rows();
    rows.push(Row::new(vec![Value::Int(3), Value::Int(-1)]));
    let err = cluster
        .submit_batch_atomic("count_events", rows)
        .unwrap()
        .wait()
        .unwrap_err();
    assert!(err.to_string().contains("negative amount") || err.kind() == "txn");
    let n: i64 = cluster
        .query_all("SELECT COUNT(*) FROM totals", &[])
        .unwrap()
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .sum();
    assert_eq!(
        n, 0,
        "aborted global transaction must leave no partial state"
    );
    let stats = cluster.coordinator_stats();
    assert_eq!(stats.aborts, 1);
    assert_eq!(stats.commits, 0);
    // The cluster keeps accepting work afterwards.
    cluster
        .submit_batch_atomic("count_events", straddling_rows())
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(cluster.coordinator_stats().commits, 1);
}

#[test]
fn declared_multi_partition_procs_upgrade_plain_submissions() {
    let _guard = fault_lock();
    let cluster = Cluster::new(2, &SStoreBuilder::new(), deploy_count_events_multi).unwrap();
    // The ordinary async path detects the declaration and coordinates.
    cluster
        .submit_batch_async("count_events", straddling_rows())
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(cluster.coordinator_stats().multi_partition_txns, 1);
    // An undeclared procedure keeps PR 2's independent-shard semantics.
    let plain = Cluster::new(2, &SStoreBuilder::new(), deploy_count_events).unwrap();
    plain
        .submit_batch_async("count_events", straddling_rows())
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(plain.coordinator_stats().multi_partition_txns, 0);
    assert_eq!(plain.coordinator_stats().single_partition_fast_path, 0);
}

/// Satellite: a submission whose rows all route to one partition skips
/// 2PC entirely — no prepares, no extra log records; the durable log of
/// the involved partition is **byte-identical** to a PR 2-style run with
/// an undeclared procedure.
#[test]
fn single_partition_fast_path_is_byte_identical_to_plain_ingest() {
    let _guard = fault_lock();
    // All rows share one key → one partition, even under hash routing.
    let rows = || vec![Row::new(vec![Value::Int(5), Value::Int(1)]); 4];

    let dir_multi = tempdir("fastpath-multi");
    let dir_plain = tempdir("fastpath-plain");
    {
        let multi = Cluster::with_config(
            2,
            RouteSpec::hash(0),
            16,
            &SStoreBuilder::new().durability(&dir_multi, 1),
            deploy_count_events_multi,
        )
        .unwrap();
        multi
            .submit_batch_async("count_events", rows())
            .unwrap()
            .wait()
            .unwrap();
        let stats = multi.coordinator_stats();
        assert_eq!(stats.single_partition_fast_path, 1);
        assert_eq!(stats.multi_partition_txns, 0);
        let m = multi.metrics();
        assert_eq!(
            m.partitions.iter().map(|p| p.twopc_prepares).sum::<u64>(),
            0
        );
        // Same rows through an undeclared proc on an identical cluster.
        let plain = Cluster::with_config(
            2,
            RouteSpec::hash(0),
            16,
            &SStoreBuilder::new().durability(&dir_plain, 1),
            deploy_count_events,
        )
        .unwrap();
        plain
            .submit_batch_async("count_events", rows())
            .unwrap()
            .wait()
            .unwrap();
    }
    // Byte-identical per-partition command logs: the fast path added no
    // records, reordered nothing, and left timestamps untouched.
    for i in 0..2 {
        let a = std::fs::read(dir_multi.join(format!("p{i}/command.log"))).unwrap_or_default();
        let b = std::fs::read(dir_plain.join(format!("p{i}/command.log"))).unwrap_or_default();
        assert_eq!(a, b, "partition {i} log diverged from the PR 2 hot path");
    }
    std::fs::remove_dir_all(dir_multi).ok();
    std::fs::remove_dir_all(dir_plain).ok();
}

#[test]
fn cross_partition_edge_runs_downstream_on_owning_partition() {
    let _guard = fault_lock();
    let cluster = Cluster::with_edges(
        2,
        RouteSpec::hash(0),
        16,
        &SStoreBuilder::new(),
        deploy_two_stage,
        TWO_STAGE_EDGES,
    )
    .unwrap();
    cluster
        .submit_batch_async("route_events", two_stage_rows(40, 10))
        .unwrap()
        .wait()
        .unwrap();
    cluster.quiesce().unwrap();
    let n: i64 = cluster
        .query_all("SELECT SUM(n) FROM dest_totals", &[])
        .unwrap()
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .sum();
    assert_eq!(n, 40, "every tuple must arrive exactly once downstream");
    let m = cluster.metrics();
    let fwd_out: u64 = m.partitions.iter().map(|p| p.forwards_out).sum();
    let fwd_in: u64 = m.partitions.iter().map(|p| p.forwards_in).sum();
    assert!(fwd_out >= 2, "both partitions should have emitted edges");
    assert!(fwd_in >= fwd_out, "each envelope lands as >= 1 shard");
    // dest_totals content matches a single-partition run of the same
    // topology (the hub self-delivers on 1 partition).
    let single = Cluster::with_edges(
        1,
        RouteSpec::hash(0),
        16,
        &SStoreBuilder::new(),
        deploy_two_stage,
        TWO_STAGE_EDGES,
    )
    .unwrap();
    single
        .submit_batch_async("route_events", two_stage_rows(40, 10))
        .unwrap()
        .wait()
        .unwrap();
    single.quiesce().unwrap();
    assert_eq!(
        sorted(cluster.query_all("SELECT * FROM dest_totals", &[]).unwrap()),
        sorted(single.query_all("SELECT * FROM dest_totals", &[]).unwrap()),
    );
}

#[test]
fn cluster_recovers_to_identical_state_after_shutdown() {
    let _guard = fault_lock();
    let dir = tempdir("recover");
    let build = |recover: bool| {
        let builder = SStoreBuilder::new().durability(&dir, 1);
        if recover {
            Cluster::recover(
                2,
                RouteSpec::hash(0),
                16,
                &builder,
                deploy_two_stage,
                TWO_STAGE_EDGES,
            )
        } else {
            Cluster::with_edges(
                2,
                RouteSpec::hash(0),
                16,
                &builder,
                deploy_two_stage,
                TWO_STAGE_EDGES,
            )
        }
    };
    let reference = {
        let cluster = build(false).unwrap();
        cluster
            .submit_batch_async("route_events", two_stage_rows(30, 8))
            .unwrap()
            .wait()
            .unwrap();
        cluster.quiesce().unwrap();
        (
            sorted(cluster.query_all("SELECT * FROM dest_totals", &[]).unwrap()),
            sorted(cluster.query_all("SELECT * FROM src_counts", &[]).unwrap()),
        )
    };
    let recovered = build(true).unwrap();
    recovered.quiesce().unwrap();
    assert_eq!(
        sorted(
            recovered
                .query_all("SELECT * FROM dest_totals", &[])
                .unwrap()
        ),
        reference.0
    );
    assert_eq!(
        sorted(
            recovered
                .query_all("SELECT * FROM src_counts", &[])
                .unwrap()
        ),
        reference.1
    );
    // The recovered cluster keeps flowing across the same edges.
    recovered
        .submit_batch_async("route_events", two_stage_rows(10, 8))
        .unwrap()
        .wait()
        .unwrap();
    recovered.quiesce().unwrap();
    let n: i64 = recovered
        .query_all("SELECT SUM(n) FROM dest_totals", &[])
        .unwrap()
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .sum();
    assert_eq!(n, 40);
    drop(recovered);
    std::fs::remove_dir_all(dir).ok();
}

/// Straddling rows with 8 consecutive keys starting at `base` (amount 1
/// each) — distinguishable from [`straddling_rows`] so a resurrected
/// fragment is identifiable by key.
fn straddling_rows_from(base: i64) -> Vec<Row> {
    (base..base + 8)
        .map(|k| Row::new(vec![Value::Int(k), Value::Int(1)]))
        .collect()
}

/// Crash the cluster at `point` (its first hit) while it runs one atomic
/// batch, then freeze the wreck: the kill unwinds whichever thread hits
/// the point, and `mem::forget` stops every graceful-shutdown path (which
/// would otherwise resolve in-doubt fragments) from running — on-disk
/// state is exactly what a machine crash at the point leaves behind.
fn crash_atomic_submission(cluster: Cluster, point: &str, rows: Vec<Row>) {
    fault::arm(point, 1, KillMode::Panic);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        // The coordinator runs on this thread: a coordinator-side kill
        // point panics the call itself; a participant-side kill surfaces
        // as a dead-worker error from `wait()` instead.
        cluster
            .submit_batch_atomic("count_events", rows)
            .and_then(|t| t.wait())
    }));
    assert!(
        !matches!(outcome, Ok(Ok(_))),
        "the armed kill point `{point}` must have crashed the transaction"
    );
    fault::disarm();
    std::mem::forget(cluster);
}

/// A recovered coordinator must sequence past every gtid any partition
/// ever *prepared* — not just past decided ones. If the in-doubt gtid 1
/// were reused, the new transaction's commit record would make the next
/// recovery resolve the OLD aborted fragment as committed, resurrecting
/// its writes.
#[test]
fn recovered_coordinator_never_reuses_in_doubt_gtids() {
    let _guard = fault_lock();
    let dir = tempdir("gtid-reuse");
    let builder = || SStoreBuilder::new().durability(&dir, 1);
    {
        let cluster = Cluster::with_config(
            2,
            RouteSpec::hash(0),
            16,
            &builder(),
            deploy_count_events_multi,
        )
        .unwrap();
        // The very first global transaction (gtid 1) crashes in doubt:
        // prepared on both partitions, the coordinator dies at the commit
        // point before its decision is durable — decided nowhere.
        crash_atomic_submission(cluster, "pre-commit-point-fsync", straddling_rows_from(700));
    }
    {
        // First recovery: gtid 1 presumes abort; a fresh transaction is
        // then committed — it must get a NEW gtid.
        let recovered = Cluster::recover(
            2,
            RouteSpec::hash(0),
            16,
            &builder(),
            deploy_count_events_multi,
            &[],
        )
        .unwrap();
        let n: i64 = recovered
            .query_all("SELECT COUNT(*) FROM totals", &[])
            .unwrap()
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .sum();
        assert_eq!(n, 0, "in-doubt fragment must abort");
        recovered
            .submit_batch_atomic("count_events", straddling_rows())
            .unwrap()
            .wait()
            .unwrap();
    }
    // Second recovery: the new transaction's commit record must not
    // resurrect the old fragment's keys (700..708).
    let recovered = Cluster::recover(
        2,
        RouteSpec::hash(0),
        16,
        &builder(),
        deploy_count_events_multi,
        &[],
    )
    .unwrap();
    let keys: Vec<i64> = recovered
        .query_all("SELECT key FROM totals", &[])
        .unwrap()
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .collect();
    assert!(
        keys.iter().all(|k| !(700..708).contains(k)),
        "aborted in-doubt fragment resurrected: keys {keys:?}"
    );
    assert_eq!(keys.len(), 8, "the committed transaction must survive");
    drop(recovered);
    std::fs::remove_dir_all(dir).ok();
}

/// An in-doubt fragment left by a crash between prepare and decide
/// aborts across the cluster: the coordinator's decision log is silent
/// about the gtid, so every partition presumes abort and the cluster
/// converges to the pre-transaction state.
#[test]
fn cluster_recovery_presumes_abort_for_in_doubt_fragment() {
    let _guard = fault_lock();
    let dir = tempdir("indoubt");
    {
        let cluster = Cluster::with_config(
            2,
            RouteSpec::hash(0),
            16,
            &SStoreBuilder::new().durability(&dir, 1),
            deploy_count_events_multi,
        )
        .unwrap();
        cluster
            .submit_batch_atomic("count_events", straddling_rows())
            .unwrap()
            .wait()
            .unwrap();
        // The next global transaction crashes after phase 1: every
        // participant's yes-vote (prepare record) is durable, but the
        // coordinator dies at the commit point before its decision is —
        // the fragments are in doubt on disk.
        crash_atomic_submission(cluster, "pre-commit-point-fsync", straddling_rows_from(100));
    }
    let recovered = Cluster::recover(
        2,
        RouteSpec::hash(0),
        16,
        &SStoreBuilder::new().durability(&dir, 1),
        deploy_count_events_multi,
        &[],
    )
    .unwrap();
    let n: i64 = recovered
        .query_all("SELECT SUM(n) FROM totals", &[])
        .unwrap()
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .sum();
    assert_eq!(n, 8, "in-doubt fragments must not commit");
    let m = recovered.metrics();
    assert_eq!(
        m.partitions.iter().map(|p| p.twopc_aborts).sum::<u64>(),
        2,
        "both in-doubt fragments abort"
    );
    // The committed transaction replayed; work continues.
    recovered
        .submit_batch_atomic("count_events", straddling_rows())
        .unwrap()
        .wait()
        .unwrap();
    drop(recovered);
    std::fs::remove_dir_all(dir).ok();
}

/// A crash immediately **after** the commit point (the decision fsync
/// succeeded; no participant ever heard phase 2) must COMMIT the in-doubt
/// fragments at recovery: the coordinator's durable decision log — not
/// presumed abort — resolves them, and the transaction survives.
#[test]
fn commit_point_crash_completes_phase_two_at_recovery() {
    let _guard = fault_lock();
    let dir = tempdir("commit-point");
    {
        let cluster = Cluster::with_config(
            2,
            RouteSpec::hash(0),
            16,
            &SStoreBuilder::new().durability(&dir, 1),
            deploy_count_events_multi,
        )
        .unwrap();
        crash_atomic_submission(cluster, "post-commit-point-fsync", straddling_rows());
    }
    let recovered = Cluster::recover(
        2,
        RouteSpec::hash(0),
        16,
        &SStoreBuilder::new().durability(&dir, 1),
        deploy_count_events_multi,
        &[],
    )
    .unwrap();
    let n: i64 = recovered
        .query_all("SELECT SUM(n) FROM totals", &[])
        .unwrap()
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .sum();
    assert_eq!(
        n, 8,
        "a decided commit must survive — recovery finishes phase 2"
    );
    let m = recovered.metrics();
    assert_eq!(
        m.partitions.iter().map(|p| p.twopc_commits).sum::<u64>(),
        2,
        "both fragments resolve as committed from the coordinator log"
    );
    drop(recovered);
    std::fs::remove_dir_all(dir).ok();
}

/// A participant that crashes after durably logging the coordinator's
/// commit decision — but before applying it — must finish the commit from
/// its **local** decision record at replay, without consulting the
/// coordinator log.
#[test]
fn participant_crash_after_decision_logged_replays_the_commit() {
    let _guard = fault_lock();
    let dir = tempdir("decide-delivered");
    {
        let cluster = Cluster::with_config(
            2,
            RouteSpec::hash(0),
            16,
            &SStoreBuilder::new().durability(&dir, 1),
            deploy_count_events_multi,
        )
        .unwrap();
        // Both participants die inside phase 2 (the armed point is
        // sticky): each has PrepareMarker + Decision(commit) durable and
        // no effects applied.
        crash_atomic_submission(cluster, "decide-delivered", straddling_rows());
    }
    let recovered = Cluster::recover(
        2,
        RouteSpec::hash(0),
        16,
        &SStoreBuilder::new().durability(&dir, 1),
        deploy_count_events_multi,
        &[],
    )
    .unwrap();
    let n: i64 = recovered
        .query_all("SELECT SUM(n) FROM totals", &[])
        .unwrap()
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .sum();
    assert_eq!(n, 8, "locally-decided commit must be applied by replay");
    let m = recovered.metrics();
    assert_eq!(m.partitions.iter().map(|p| p.twopc_commits).sum::<u64>(), 2);
    // Exactly once: a second recovery replays to the same state.
    drop(recovered);
    let again = Cluster::recover(
        2,
        RouteSpec::hash(0),
        16,
        &SStoreBuilder::new().durability(&dir, 1),
        deploy_count_events_multi,
        &[],
    )
    .unwrap();
    let n: i64 = again
        .query_all("SELECT SUM(n) FROM totals", &[])
        .unwrap()
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .sum();
    assert_eq!(n, 8, "replay of the replay must not double-apply");
    drop(again);
    std::fs::remove_dir_all(dir).ok();
}
