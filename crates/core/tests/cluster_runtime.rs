//! Integration tests for the persistent shared-nothing partition runtime:
//! routed sync/async ingest, determinism against the single-partition
//! reference, NULL-key rejection, per-partition metrics, and shutdown.

use sstore_core::common::{PartitionId, Row, Value};
use sstore_core::workloads::{count_events_rows, deploy_count_events as deploy};
use sstore_core::{cluster::DEFAULT_INGEST_QUEUE_DEPTH, Cluster, RouteSpec, SStoreBuilder};

/// Narrow key space (37 keys over 0..=36) so keys collide across batches
/// and the range-routing assertions below stay meaningful.
fn workload(n: usize) -> Vec<Row> {
    count_events_rows(n, 37, 11)
}

fn reference_state(n_rows: usize) -> Vec<Row> {
    let mut single = SStoreBuilder::new().build().unwrap();
    deploy(&mut single).unwrap();
    single
        .submit_batch("count_events", workload(n_rows))
        .unwrap();
    let mut rows = single
        .query("SELECT key, n, total FROM totals", &[])
        .unwrap()
        .rows;
    rows.sort();
    rows
}

#[test]
fn partitioned_run_matches_single_partition() {
    let reference = reference_state(500);
    let cluster = Cluster::new(4, &SStoreBuilder::new(), deploy).unwrap();
    cluster
        .submit_batch_partitioned("count_events", workload(500), 0)
        .unwrap();
    let mut merged = cluster
        .query_all("SELECT key, n, total FROM totals", &[])
        .unwrap();
    merged.sort();
    assert_eq!(merged, reference);
    assert!(cluster.total_committed() >= 4); // every non-empty shard ran
}

#[test]
fn async_ingest_matches_single_partition() {
    let reference = reference_state(500);
    let cluster = Cluster::new(4, &SStoreBuilder::new(), deploy).unwrap();
    // Pipeline many small submissions without waiting in between; the
    // workers drain their queues (possibly coalescing) in FIFO order.
    let mut tickets = Vec::new();
    for chunk in workload(500).chunks(50) {
        tickets.push(
            cluster
                .submit_batch_async("count_events", chunk.to_vec())
                .unwrap(),
        );
    }
    for t in tickets {
        for po in t.wait().unwrap() {
            assert!(po.outcomes.iter().all(|o| o.is_committed()));
        }
    }
    let mut merged = cluster
        .query_all("SELECT key, n, total FROM totals", &[])
        .unwrap();
    merged.sort();
    assert_eq!(merged, reference);
}

#[test]
fn range_routing_places_keys_explicitly() {
    let builder = SStoreBuilder::new();
    let cluster = Cluster::with_config(
        2,
        RouteSpec::range(0, vec![19]),
        DEFAULT_INGEST_QUEUE_DEPTH,
        &builder,
        deploy,
    )
    .unwrap();
    cluster
        .submit_batch_async("count_events", workload(100))
        .unwrap()
        .wait()
        .unwrap();
    // Keys 0..=18 live on p0, 19..=36 on p1 — verifiable directly.
    let p0_max = cluster.with_partition(0, |p| {
        p.query("SELECT MAX(key) FROM totals", &[])
            .unwrap()
            .scalar_i64()
            .unwrap()
    });
    let p0_max = p0_max.unwrap();
    let p1_min = cluster.with_partition(1, |p| {
        p.query("SELECT MIN(key) FROM totals", &[])
            .unwrap()
            .scalar_i64()
            .unwrap()
    });
    assert!(p0_max <= 18);
    assert!(p1_min.unwrap() >= 19);
}

#[test]
fn blocking_wrapper_respects_range_route() {
    let cluster = Cluster::with_config(
        2,
        RouteSpec::range(0, vec![19]),
        DEFAULT_INGEST_QUEUE_DEPTH,
        &SStoreBuilder::new(),
        deploy,
    )
    .unwrap();
    // Matching key column: rows go where the declared ranges say.
    cluster
        .submit_batch_partitioned("count_events", workload(100), 0)
        .unwrap();
    let p0_max = cluster.with_partition(0, |p| {
        p.query("SELECT MAX(key) FROM totals", &[])
            .unwrap()
            .scalar_i64()
            .unwrap()
    });
    assert!(p0_max.unwrap() <= 18);
    // A different key column would hash-place rows against the declared
    // ranges — rejected outright.
    let err = cluster
        .submit_batch_partitioned("count_events", workload(10), 1)
        .unwrap_err();
    assert_eq!(err.kind(), "schedule");
}

#[test]
fn null_partition_keys_rejected() {
    let cluster = Cluster::new(2, &SStoreBuilder::new(), deploy).unwrap();
    let rows = vec![
        vec![Value::Int(1), Value::Int(2)],
        vec![Value::Null, Value::Int(3)],
    ];
    let err = cluster
        .submit_batch_partitioned("count_events", rows.clone(), 0)
        .unwrap_err();
    assert_eq!(err.kind(), "schedule");
    let err = cluster
        .submit_batch_async("count_events", rows)
        .unwrap_err();
    assert_eq!(err.kind(), "schedule");
    // Nothing was enqueued: state untouched.
    assert_eq!(cluster.total_committed(), 0);
}

#[test]
fn empty_cluster_rejected() {
    assert!(Cluster::new(0, &SStoreBuilder::new(), |_| Ok(())).is_err());
}

#[test]
fn per_partition_outcomes_reported() {
    let cluster = Cluster::new(2, &SStoreBuilder::new(), deploy).unwrap();
    let results = cluster
        .submit_batch_partitioned("count_events", workload(20), 0)
        .unwrap();
    assert_eq!(results.len(), 2);
    let total_tes: usize = results.iter().map(Vec::len).sum();
    assert!(total_tes >= 1);
}

#[test]
fn metrics_attribute_partition_ids() {
    let cluster = Cluster::new(3, &SStoreBuilder::new(), deploy).unwrap();
    cluster
        .submit_batch_partitioned("count_events", workload(60), 0)
        .unwrap();
    let m = cluster.metrics();
    assert_eq!(m.partitions.len(), 3);
    for (i, pm) in m.partitions.iter().enumerate() {
        assert_eq!(pm.partition, PartitionId::new(i as u32));
    }
    assert_eq!(m.total_committed(), cluster.total_committed());
    assert!(m.skew() >= 1.0);
}

#[test]
fn submission_errors_surface_through_tickets() {
    let cluster = Cluster::new(2, &SStoreBuilder::new(), deploy).unwrap();
    let ticket = cluster
        .submit_batch_async("no_such_proc", workload(10))
        .unwrap();
    assert!(ticket.wait().is_err());
}

#[test]
fn clock_advances_in_lockstep() {
    let cluster = Cluster::new(2, &SStoreBuilder::new(), deploy).unwrap();
    cluster.advance_clock(1_000).unwrap();
    for i in 0..2 {
        assert_eq!(
            cluster.with_partition(i, |p| p.clock().now()).unwrap(),
            1_000
        );
    }
}
