//! Injected disk IO errors (`fault::arm_io_error`) at each durability
//! site: the command-log group write, the snapshot writers, and the
//! coordinator decision log. Every site must fail with a typed `Err`,
//! leave zero partial state behind, and keep the partition usable — the
//! failure mode is a clean refusal, never a panic, a hang, or a torn
//! durable prefix.

use sstore_core::common::fault;
use sstore_core::common::{Result, Row, Value};
use sstore_core::workloads::deploy_count_events_multi;
use sstore_core::{recover, Cluster, LogConfig, PeConfig, RouteSpec, SStore, SStoreBuilder};
use sstore_core::{ProcSpec, TxnStatus};
use std::path::PathBuf;
use std::sync::Mutex;

/// The fault registry is process-global: tests in this binary must not
/// overlap, or one test's armed point fires inside another.
static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|p| p.into_inner())
}

fn tempdir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sstore-io-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn deploy(p: &mut SStore) -> Result<()> {
    p.ddl("CREATE STREAM events (v INT)")?;
    p.ddl("CREATE TABLE totals (k INT NOT NULL, n INT NOT NULL, PRIMARY KEY (k))")?;
    p.setup_sql("INSERT INTO totals VALUES (0, 0)", &[])?;
    p.register(
        ProcSpec::new("ingest", |ctx| {
            for row in ctx.input().rows.clone() {
                ctx.exec("bump", &[row[0].clone()])?;
            }
            Ok(())
        })
        .consumes("events")
        .stmt("bump", "UPDATE totals SET n = n + ? WHERE k = 0"),
    )?;
    Ok(())
}

fn config(dir: &PathBuf) -> PeConfig {
    PeConfig {
        log: Some(LogConfig::new(dir)),
        ..PeConfig::default()
    }
}

fn batch() -> Vec<Row> {
    vec![Row::new(vec![Value::Int(1)]), Row::new(vec![Value::Int(2)])]
}

fn total(p: &mut SStore) -> i64 {
    p.query("SELECT n FROM totals WHERE k = 0", &[])
        .unwrap()
        .rows[0][0]
        .as_int()
        .unwrap()
}

/// `log-append-io-error`: the group write fails, the bytes are rolled
/// back to the pre-write length, and the batch surfaces a typed IO error
/// with nothing applied. The partition stays usable — the next batch
/// (the one-shot arm has expired) commits and is durable — and recovery
/// over the log sees exactly the successful batches.
#[test]
fn log_append_io_error_rolls_back_and_partition_stays_usable() {
    let _g = lock();
    let dir = tempdir("log-append");
    {
        let mut p = SStore::new(config(&dir)).unwrap();
        deploy(&mut p).unwrap();
        p.submit_batch("ingest", batch()).unwrap();
        assert_eq!(total(&mut p), 3);

        fault::arm_io_error("log-append-io-error", 1);
        let err = p.submit_batch("ingest", batch()).unwrap_err();
        assert_eq!(err.kind(), "io");
        assert_eq!(
            total(&mut p),
            3,
            "a failed durable write must leave zero partial state"
        );

        // The disk "heals" (the one-shot arm expired): normal service.
        p.submit_batch("ingest", batch()).unwrap();
        assert_eq!(total(&mut p), 6);
    }
    let mut r = recover(config(&dir), deploy).unwrap();
    assert_eq!(
        total(&mut r),
        6,
        "recovery must replay the two successful batches, nothing else"
    );
    drop(r);
    std::fs::remove_dir_all(dir).ok();
}

/// `snapshot-io-error`: a failed checkpoint write reaches no durable
/// name (the injection fires before the temp file exists), so the log
/// remains the authoritative prefix. The partition keeps committing, a
/// retried snapshot succeeds, and recovery agrees with live state.
#[test]
fn snapshot_io_error_leaves_log_authoritative() {
    let _g = lock();
    let dir = tempdir("snapshot");
    {
        let mut p = SStore::new(config(&dir)).unwrap();
        deploy(&mut p).unwrap();
        p.submit_batch("ingest", batch()).unwrap();

        fault::arm_io_error("snapshot-io-error", 1);
        let err = p.snapshot().unwrap_err();
        assert_eq!(err.kind(), "io");

        // Still fully usable: more commits, then a successful retry.
        p.submit_batch("ingest", batch()).unwrap();
        assert_eq!(total(&mut p), 6);
        p.snapshot().unwrap();
        p.submit_batch("ingest", batch()).unwrap();
        assert_eq!(total(&mut p), 9);
    }
    let mut r = recover(config(&dir), deploy).unwrap();
    assert_eq!(
        total(&mut r),
        9,
        "snapshot + log tail must reproduce live state despite the failed checkpoint"
    );
    drop(r);
    std::fs::remove_dir_all(dir).ok();
}

/// A forward whose log write fails must leave a *hole*, not a skipped
/// batch: the edge's high-water dedupe may never advance past a batch
/// that was refused, or the sender's re-forward of it would be dropped
/// as a duplicate. Younger forwards are refused until the hole refills,
/// then everything lands exactly once — live and through recovery.
#[test]
fn forward_io_error_leaves_no_hole_in_edge_dedupe() {
    let _g = lock();
    let dir = tempdir("edge-gap");
    {
        let mut p = SStore::new(config(&dir)).unwrap();
        deploy(&mut p).unwrap();
        let row5 = vec![Row::new(vec![Value::Int(5)])];
        let row7 = vec![Row::new(vec![Value::Int(7)])];

        fault::arm_io_error("log-append-io-error", 1);
        let err = p.accept_forward("events", 1, 5, row5.clone()).unwrap_err();
        assert_eq!(err.kind(), "io");

        // A younger batch must not leapfrog the hole.
        let err = p.accept_forward("events", 1, 7, row7.clone()).unwrap_err();
        assert_eq!(err.kind(), "io");
        assert_eq!(total(&mut p), 0, "refused forwards must apply nothing");

        // The sender re-forwards in order (both acks were withheld): the
        // hole refills, then the younger batch lands.
        assert!(p
            .accept_forward("events", 1, 5, row5.clone())
            .unwrap()
            .is_some());
        p.run_queued().unwrap();
        assert!(p.accept_forward("events", 1, 7, row7).unwrap().is_some());
        p.run_queued().unwrap();
        assert_eq!(total(&mut p), 12);

        // The refilled batch is now a duplicate: exactly once.
        assert!(p.accept_forward("events", 1, 5, row5).unwrap().is_none());
        assert_eq!(total(&mut p), 12);
    }
    let mut r = recover(config(&dir), deploy).unwrap();
    assert_eq!(total(&mut r), 12, "recovery must agree with live state");
    drop(r);
    std::fs::remove_dir_all(dir).ok();
}

/// `coord-log-io-error`: the commit-point write fails with its bytes
/// rolled back, so the decision is provably absent and the coordinator
/// flips the round to abort — no participant may apply, and the next
/// round commits normally.
#[test]
fn coord_log_io_error_aborts_round_cleanly() {
    let _g = lock();
    let dir = tempdir("coord");
    let builder = SStoreBuilder::new().durability(&dir, 1);
    let cluster = Cluster::with_config(
        2,
        RouteSpec::range(0, vec![10]),
        16,
        &builder,
        deploy_count_events_multi,
    )
    .unwrap();
    // Keys 5 and 15 straddle the range split — a genuine 2PC round.
    let straddle = || {
        vec![
            Row::new(vec![Value::Int(5), Value::Int(50)]),
            Row::new(vec![Value::Int(15), Value::Int(150)]),
        ]
    };

    fault::arm_io_error("coord-log-io-error", 1);
    let res = cluster
        .submit_batch_atomic("count_events", straddle())
        .unwrap()
        .wait();
    // The round must abort — either surfaced as an error or as
    // explicitly non-committed outcomes — and apply nothing.
    match res {
        Err(_) => {}
        Ok(outcomes) => {
            assert!(
                outcomes
                    .iter()
                    .flat_map(|po| &po.outcomes)
                    .all(|o| o.status != TxnStatus::Committed),
                "a failed commit-point write must not release a commit"
            );
        }
    }
    let n: i64 = cluster
        .query_all("SELECT COUNT(*) FROM totals", &[])
        .unwrap()
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .sum();
    assert_eq!(n, 0, "the aborted round must leave zero partial state");
    let stats = cluster.coordinator_stats();
    assert_eq!((stats.commits, stats.aborts), (0, 1));

    // The disk heals: the next round commits on both sides.
    cluster
        .submit_batch_atomic("count_events", straddle())
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(cluster.coordinator_stats().commits, 1);
    let n: i64 = cluster
        .query_all("SELECT SUM(n) FROM totals", &[])
        .unwrap()
        .iter()
        .filter_map(|r| r[0].as_int().ok())
        .sum();
    assert_eq!(n, 2);
    cluster.quiesce().unwrap();
    drop(cluster);
    std::fs::remove_dir_all(dir).ok();
}
