//! Property tests for the cross-partition transaction coordinator and
//! cross-partition workflow edges: any interleaving of multi-sited
//! submissions is state-equivalent to the single-partition reference
//! execution, atomicity holds under mixed commit/abort workloads, and
//! edge dataflow is exactly-once at every partition count.

use proptest::prelude::*;
use sstore_core::common::{Row, Value};
use sstore_core::workloads::{
    deploy_count_events, deploy_count_events_multi, deploy_two_stage, TWO_STAGE_EDGES,
};
use sstore_core::{Cluster, RouteSpec, SStoreBuilder};

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any chunking of a multi-sited workload through the 2PC coordinator
    /// merges to the same table state as a single partition executing the
    /// same chunks serially — ticket waits shuffled to exercise
    /// interleavings of in-flight global transactions.
    #[test]
    fn atomic_submissions_match_single_partition_reference(
        events in prop::collection::vec((0i64..24, 0i64..50), 1..80),
        partitions in 1usize..5,
        chunk in 1usize..24,
        wait_order_seed in any::<u64>(),
    ) {
        let rows: Vec<Row> = events
            .iter()
            .map(|(k, a)| Row::new(vec![Value::Int(*k), Value::Int(*a)]))
            .collect();

        // Single-partition reference (plain submissions: on one partition
        // the coordinator path degenerates to exactly this).
        let single = Cluster::new(1, &SStoreBuilder::new(), deploy_count_events).unwrap();
        for c in rows.chunks(chunk) {
            single.submit_batch_async("count_events", c.to_vec()).unwrap().wait().unwrap();
        }
        let reference = sorted(single.query_all("SELECT * FROM totals", &[]).unwrap());

        // Partitioned run: every chunk is one atomic global transaction.
        let cluster =
            Cluster::new(partitions, &SStoreBuilder::new(), deploy_count_events_multi).unwrap();
        let mut tickets = Vec::new();
        for c in rows.chunks(chunk) {
            tickets.push(cluster.submit_batch_atomic("count_events", c.to_vec()).unwrap());
        }
        let mut order: Vec<usize> = (0..tickets.len()).collect();
        let mut s = wait_order_seed | 1;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut tickets: Vec<Option<sstore_core::Ticket>> =
            tickets.into_iter().map(Some).collect();
        for i in order {
            for po in tickets[i].take().unwrap().wait().unwrap() {
                prop_assert!(po.outcomes.iter().all(|o| o.is_committed()));
            }
        }
        let merged = sorted(cluster.query_all("SELECT * FROM totals", &[]).unwrap());
        prop_assert_eq!(merged, reference);
    }

    /// Mixed workload with aborting transactions: a chunk containing a
    /// poison row aborts atomically on every partition; the surviving
    /// state equals the reference executing only the clean chunks.
    #[test]
    fn aborted_transactions_leave_no_partial_state(
        events in prop::collection::vec((0i64..16, 0i64..50), 1..60),
        poison_mask in any::<u32>(),
        partitions in 2usize..5,
        chunk in 1usize..16,
    ) {
        let rows: Vec<Row> = events
            .iter()
            .map(|(k, a)| Row::new(vec![Value::Int(*k), Value::Int(*a)]))
            .collect();
        let chunks: Vec<Vec<Row>> = rows.chunks(chunk).map(|c| c.to_vec()).collect();

        // Reference: only the chunks that will not be poisoned.
        let single = Cluster::new(1, &SStoreBuilder::new(), deploy_count_events).unwrap();
        for (i, c) in chunks.iter().enumerate() {
            if poison_mask & (1 << (i % 32)) == 0 {
                single.submit_batch_async("count_events", c.clone()).unwrap().wait().unwrap();
            }
        }
        let reference = sorted(single.query_all("SELECT * FROM totals", &[]).unwrap());

        let cluster =
            Cluster::new(partitions, &SStoreBuilder::new(), deploy_count_events_multi).unwrap();
        for (i, c) in chunks.iter().enumerate() {
            let mut c = c.clone();
            let poisoned = poison_mask & (1 << (i % 32)) != 0;
            if poisoned {
                c.push(Row::new(vec![Value::Int(0), Value::Int(-1)]));
            }
            // A poisoned chunk must not commit anywhere. (Surface differs
            // by path: a multi-sited no-vote propagates as Err from
            // wait(), while a single-partition abort resolves Ok with an
            // Aborted outcome — both leave zero state.)
            let committed = match cluster.submit_batch_atomic("count_events", c).unwrap().wait() {
                Ok(pos) => pos.iter().all(|po| po.outcomes.iter().all(|o| o.is_committed())),
                Err(_) => false,
            };
            prop_assert_eq!(committed, !poisoned);
        }
        let merged = sorted(cluster.query_all("SELECT * FROM totals", &[]).unwrap());
        prop_assert_eq!(merged, reference);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Cross-partition workflow edges deliver every emitted tuple exactly
    /// once to the partition owning its downstream key: the two-stage
    /// pipeline's final state matches the single-partition run of the
    /// identical topology, at any partition count and chunking.
    #[test]
    fn cross_edge_dataflow_matches_single_partition_reference(
        events in prop::collection::vec((0i64..12, 0i64..12, 0i64..9), 1..80),
        partitions in 1usize..5,
        chunk in 1usize..20,
    ) {
        let rows: Vec<Row> = events
            .iter()
            .map(|(s, d, a)| Row::new(vec![Value::Int(*s), Value::Int(*d), Value::Int(*a)]))
            .collect();
        let run = |n: usize| -> (Vec<Row>, Vec<Row>) {
            let cluster = Cluster::with_edges(
                n,
                RouteSpec::hash(0),
                16,
                &SStoreBuilder::new(),
                deploy_two_stage,
                TWO_STAGE_EDGES,
            )
            .unwrap();
            for c in rows.chunks(chunk) {
                cluster.submit_batch_async("route_events", c.to_vec()).unwrap().wait().unwrap();
            }
            cluster.quiesce().unwrap();
            (
                sorted(cluster.query_all("SELECT * FROM src_counts", &[]).unwrap()),
                sorted(cluster.query_all("SELECT * FROM dest_totals", &[]).unwrap()),
            )
        };
        let (ref_src, ref_dest) = run(1);
        let (got_src, got_dest) = run(partitions);
        prop_assert_eq!(got_src, ref_src);
        prop_assert_eq!(got_dest, ref_dest);
    }
}
