//! The structured telemetry export layer: [`Cluster::observability_report`]
//! assembles everything the `sstore_common::obs` substrate recorded —
//! per-stage dataflow latency histograms, registry counters and gauges,
//! named phase timers (recovery breakdown), the K slowest batch
//! timelines — together with a [`ClusterMetrics`] capture into one
//! serde-serializable [`ObsReport`], dumped as JSON by benches and the
//! CI observability smoke step.
//!
//! # Report window
//!
//! Stage histograms and trace spans are **windowed to this cluster**: a
//! baseline snapshot is captured when the cluster is built and
//! subtracted at report time ([`HistogramSnapshot::since`]), so several
//! clusters in one process (tests, benches) each report only their own
//! traffic. Registry counters, gauges, and phase histograms are
//! **process-wide absolutes** — deliberately, because this cluster's
//! own recovery phases run *before* its baseline exists and would
//! vanish from a windowed view.
//!
//! # Reconciliation
//!
//! With tracing on, every border batch this cluster logged records
//! exactly one `logged` stage passage, so in a single-cluster process
//! `stages["logged"].count` equals the cluster-wide
//! `batches_submitted` total of durable partitions (the standalone
//! `obs_report` smoke binary asserts this).

use crate::cluster::Cluster;
use crate::metrics::ClusterMetrics;
use serde::{Deserialize, Serialize};
use sstore_common::obs::{self, HistogramReport, HistogramSnapshot, TraceSpan, STAGES};
use std::collections::BTreeMap;
use std::time::Instant;

/// How many of the slowest batch timelines a report embeds.
pub const SLOWEST_SPANS: usize = 8;

/// Observability state at cluster construction, subtracted from
/// process-wide totals at report time so a report is windowed to one
/// cluster's lifetime.
pub struct ObsBaseline {
    /// One snapshot per [`STAGES`] entry, in stage order.
    stages: Vec<HistogramSnapshot>,
    /// Traces minted before this id belong to earlier clusters.
    first_trace: u64,
    /// Construction instant (report `uptime_s` window).
    started: Instant,
}

impl ObsBaseline {
    /// Snapshot the current stage histograms and trace horizon.
    pub fn capture() -> ObsBaseline {
        ObsBaseline {
            stages: STAGES.iter().map(|s| obs::stage_snapshot(*s)).collect(),
            first_trace: obs::next_trace_id(),
            started: Instant::now(),
        }
    }
}

/// The exported telemetry document. Everything is plain data; the
/// schema is stable across runs (every key below is always present).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObsReport {
    /// Seconds from cluster construction to this report.
    pub uptime_s: f64,
    /// Committed TEs per second over the report window.
    pub committed_per_s: f64,
    /// Load imbalance across available partitions
    /// ([`ClusterMetrics::skew`]).
    pub skew: f64,
    /// Per-stage cumulative-since-submit latency histograms for traffic
    /// submitted through this cluster (`routed`, `queued`, `logged`,
    /// `executed`, `fsynced`, `prepared`, `decided`, `forwarded`,
    /// `acked`). Because each stage records time since submit, reading
    /// the p95 column down the pipeline gives a latency waterfall.
    pub stages: BTreeMap<String, HistogramReport>,
    /// Process-wide named counters (`log.warn`, …).
    pub counters: BTreeMap<String, u64>,
    /// Process-wide named gauges.
    pub gauges: BTreeMap<String, i64>,
    /// Process-wide named phase timers (`recovery.base_image`,
    /// `recovery.delta_apply`, `recovery.log_replay`,
    /// `recovery.parallel_join`, …), one histogram each.
    pub phases: BTreeMap<String, HistogramReport>,
    /// The standard metrics capture (per-partition counters, health,
    /// coordinator stats, sheds, restarts), embedded verbatim so the
    /// report is the superset surface.
    pub metrics: ClusterMetrics,
    /// The slowest batch timelines observed in the trace rings since
    /// this cluster was built, slowest first (at most
    /// [`SLOWEST_SPANS`]).
    pub slowest_batches: Vec<TraceSpan>,
    /// Trace-ring events overwritten process-wide: non-zero means the
    /// slowest-batch list may miss older batches (raise
    /// `SSTORE_TRACE_RING`).
    pub trace_ring_overwrites: u64,
}

impl ObsReport {
    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("ObsReport serializes infallibly")
    }

    /// Parse a report back from JSON (schema checks in tests and CI).
    pub fn from_json(s: &str) -> std::result::Result<ObsReport, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }
}

impl Cluster {
    /// Assemble the full telemetry export: per-stage dataflow latency
    /// since this cluster was built, registry counters/gauges/phase
    /// timers, a [`ClusterMetrics`] capture, and the slowest batch
    /// timelines. See the [module docs](self) for windowing semantics.
    pub fn observability_report(&self) -> ObsReport {
        let metrics = self.metrics();
        let uptime_s = self.obs_baseline.started.elapsed().as_secs_f64();
        let committed_per_s = if uptime_s > 0.0 {
            metrics.total_committed() as f64 / uptime_s
        } else {
            0.0
        };
        let mut stages = BTreeMap::new();
        for (stage, baseline) in STAGES.iter().zip(&self.obs_baseline.stages) {
            let delta = obs::stage_snapshot(*stage).since(baseline);
            stages.insert(stage.name().to_string(), delta.report());
        }
        let registry = obs::registry_snapshot();
        ObsReport {
            uptime_s,
            committed_per_s,
            skew: metrics.skew(),
            stages,
            counters: registry.counters,
            gauges: registry.gauges,
            phases: registry
                .histograms
                .into_iter()
                .map(|(name, h)| (name, h.report()))
                .collect(),
            metrics,
            slowest_batches: obs::slowest_spans(SLOWEST_SPANS, self.obs_baseline.first_trace),
            trace_ring_overwrites: obs::collect_events().1,
        }
    }
}
