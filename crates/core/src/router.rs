//! Routing of border batches across shared-nothing partitions.
//!
//! H-Store partitions every table on a partition key so that most
//! transactions are single-sited (paper §2); the router is the client-side
//! half of that contract. A [`RouteSpec`] declares the partition-key
//! column and the placement function — [`RouteSpec::Hash`] for uniform
//! spread or [`RouteSpec::Range`] for explicit key ranges — and the
//! compiled [`Router`] splits each border batch into per-partition shards.
//!
//! Routing is **total and stable**: every non-NULL key maps to exactly one
//! partition, and the same key always maps to the same partition (the hash
//! is `DefaultHasher` with its fixed initial state, not a per-process
//! random seed). `NULL` keys are rejected with [`Error::Schedule`] rather
//! than silently hashed onto one partition — a NULL key means the client
//! never declared where the row lives, and mis-partitioned rows would
//! quietly produce per-partition answers that merge to garbage.

use sstore_common::{Error, PartitionId, Result, Row, Value};
use sstore_txn::TxnOutcome;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Declarative placement: which column is the partition key and how keys
/// map to partitions.
#[derive(Debug, Clone, PartialEq)]
pub enum RouteSpec {
    /// Hash the key column over all partitions (uniform spread).
    Hash {
        /// Visible column index of the partition key.
        key_col: usize,
    },
    /// Explicit ranges over an integer key: partition `i` takes keys
    /// strictly below `bounds[i]`; the last partition takes the rest.
    /// Requires `bounds.len() == partitions - 1`, strictly increasing.
    Range {
        /// Visible column index of the partition key.
        key_col: usize,
        /// Upper-exclusive bounds, one per non-final partition.
        bounds: Vec<i64>,
    },
}

impl RouteSpec {
    /// Hash routing over `key_col`.
    pub fn hash(key_col: usize) -> RouteSpec {
        RouteSpec::Hash { key_col }
    }

    /// Range routing over `key_col` with upper-exclusive `bounds`.
    pub fn range(key_col: usize, bounds: Vec<i64>) -> RouteSpec {
        RouteSpec::Range { key_col, bounds }
    }

    /// The declared partition-key column.
    pub fn key_col(&self) -> usize {
        match self {
            RouteSpec::Hash { key_col } | RouteSpec::Range { key_col, .. } => *key_col,
        }
    }
}

/// A route spec compiled against a partition count.
#[derive(Debug, Clone)]
pub struct Router {
    spec: RouteSpec,
    partitions: usize,
}

impl Router {
    /// Validate `spec` against `partitions` and build the router.
    pub fn new(spec: RouteSpec, partitions: usize) -> Result<Router> {
        if partitions == 0 {
            return Err(Error::Schedule(
                "a router needs at least 1 partition".into(),
            ));
        }
        if let RouteSpec::Range { bounds, .. } = &spec {
            if bounds.len() + 1 != partitions {
                return Err(Error::Schedule(format!(
                    "range routing over {partitions} partitions needs {} bounds, got {}",
                    partitions - 1,
                    bounds.len()
                )));
            }
            if bounds.windows(2).any(|w| w[0] >= w[1]) {
                return Err(Error::Schedule(
                    "range-routing bounds must be strictly increasing".into(),
                ));
            }
        }
        Ok(Router { spec, partitions })
    }

    /// Number of partitions routed over.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// The spec this router was compiled from.
    pub fn spec(&self) -> &RouteSpec {
        &self.spec
    }

    /// Route one key value to its owning partition. `NULL` keys are
    /// rejected (see module docs).
    pub fn route_key(&self, key: &Value) -> Result<PartitionId> {
        if matches!(key, Value::Null) {
            return Err(Error::Schedule(
                "partition key is NULL; cannot route a row without a key".into(),
            ));
        }
        match &self.spec {
            RouteSpec::Hash { .. } => {
                use std::hash::{Hash, Hasher};
                let mut h = std::collections::hash_map::DefaultHasher::new();
                key.hash(&mut h);
                Ok(PartitionId::new(
                    (h.finish() % self.partitions as u64) as u32,
                ))
            }
            RouteSpec::Range { bounds, .. } => {
                let k = key.as_int()?;
                let idx = bounds.partition_point(|b| *b <= k);
                Ok(PartitionId::new(idx as u32))
            }
        }
    }

    /// Route one row by the declared partition-key column.
    pub fn route(&self, row: &[Value]) -> Result<PartitionId> {
        let col = self.spec.key_col();
        let key = row
            .get(col)
            .ok_or_else(|| Error::Schedule(format!("partition key column {col} out of range")))?;
        self.route_key(key)
    }

    /// Split `rows` into per-partition shards, preserving the relative
    /// order of rows within each shard (per-partition FIFO is what makes
    /// the parallel run deterministic).
    pub fn shard(&self, rows: Vec<Row>) -> Result<Vec<Vec<Row>>> {
        let mut shards: Vec<Vec<Row>> = vec![Vec::new(); self.partitions];
        for row in rows {
            let p = self.route(&row)?;
            shards[p.raw() as usize].push(row);
        }
        Ok(shards)
    }
}

/// Outcomes from one partition's share of an async submission.
#[derive(Debug)]
pub struct PartitionOutcomes {
    /// The partition that executed this share.
    pub partition: PartitionId,
    /// Its TE outcomes, in execution order.
    pub outcomes: Vec<TxnOutcome>,
}

/// Handle to an in-flight asynchronous submission
/// ([`crate::Cluster::submit_batch_async`]). The submission is already
/// enqueued on every involved partition's ingest queue; [`Ticket::wait`]
/// blocks until each has executed its share and resolves to the per-TE
/// outcomes.
#[derive(Debug)]
#[must_use = "dropping a Ticket discards per-batch outcomes AND errors; call wait()"]
pub struct Ticket {
    pub(crate) pending: Vec<(PartitionId, mpsc::Receiver<Result<Vec<TxnOutcome>>>)>,
}

impl Ticket {
    /// Partitions involved in this submission (those that received rows).
    pub fn partitions(&self) -> Vec<PartitionId> {
        self.pending.iter().map(|(p, _)| *p).collect()
    }

    /// Block until every involved partition finished its share; returns
    /// per-partition outcomes in partition order.
    ///
    /// A share whose reply channel was dropped unresolved (the worker
    /// died mid-processing and its supervisor could not attribute the
    /// loss) surfaces as [`Error::PartitionDown`].
    pub fn wait(self) -> Result<Vec<PartitionOutcomes>> {
        let mut out = Vec::with_capacity(self.pending.len());
        for (partition, rx) in self.pending {
            let outcomes = rx.recv().map_err(|_| {
                Error::PartitionDown(format!(
                    "partition worker {partition} dropped this submission's reply"
                ))
            })??;
            out.push(PartitionOutcomes {
                partition,
                outcomes,
            });
        }
        Ok(out)
    }

    /// Like [`Ticket::wait`], but gives the whole submission at most
    /// `timeout` to resolve. On expiry returns [`Error::Timeout`] — note
    /// the submission is already enqueued and **still executes** on its
    /// partitions; only the outcomes are discarded. A timed-out ticket
    /// must therefore not be blindly resubmitted.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Vec<PartitionOutcomes>> {
        let deadline = Instant::now() + timeout;
        let mut out = Vec::with_capacity(self.pending.len());
        for (partition, rx) in self.pending {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let outcomes = match rx.recv_timeout(remaining) {
                Ok(r) => r?,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    return Err(Error::Timeout(format!(
                        "submission unresolved after {timeout:?} (still executing on \
                         partition {partition}; outcomes discarded)"
                    )))
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(Error::PartitionDown(format!(
                        "partition worker {partition} dropped this submission's reply"
                    )))
                }
            };
            out.push(PartitionOutcomes {
                partition,
                outcomes,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_routing_is_total_and_stable() {
        let r = Router::new(RouteSpec::hash(0), 3).unwrap();
        for i in 0..200i64 {
            let a = r.route_key(&Value::Int(i)).unwrap();
            let b = r.route_key(&Value::Int(i)).unwrap();
            assert_eq!(a, b);
            assert!((a.raw() as usize) < 3);
        }
    }

    #[test]
    fn null_keys_rejected() {
        let r = Router::new(RouteSpec::hash(0), 2).unwrap();
        let err = r.route_key(&Value::Null).unwrap_err();
        assert_eq!(err.kind(), "schedule");
        let err = r.route(&[Value::Null, Value::Int(1)]).unwrap_err();
        assert_eq!(err.kind(), "schedule");
    }

    #[test]
    fn range_routing_respects_bounds() {
        let r = Router::new(RouteSpec::range(0, vec![10, 20]), 3).unwrap();
        assert_eq!(r.route_key(&Value::Int(-5)).unwrap().raw(), 0);
        assert_eq!(r.route_key(&Value::Int(9)).unwrap().raw(), 0);
        assert_eq!(r.route_key(&Value::Int(10)).unwrap().raw(), 1);
        assert_eq!(r.route_key(&Value::Int(19)).unwrap().raw(), 1);
        assert_eq!(r.route_key(&Value::Int(20)).unwrap().raw(), 2);
        assert_eq!(r.route_key(&Value::Int(1_000_000)).unwrap().raw(), 2);
    }

    #[test]
    fn bad_specs_rejected() {
        assert!(Router::new(RouteSpec::hash(0), 0).is_err());
        assert!(Router::new(RouteSpec::range(0, vec![1]), 3).is_err());
        assert!(Router::new(RouteSpec::range(0, vec![5, 5]), 3).is_err());
    }

    #[test]
    fn shard_preserves_order_and_key_errors_surface() {
        let r = Router::new(RouteSpec::range(1, vec![100]), 2).unwrap();
        let rows: Vec<Row> = vec![
            vec![Value::Int(1), Value::Int(5)].into(),
            vec![Value::Int(2), Value::Int(500)].into(),
            vec![Value::Int(3), Value::Int(6)].into(),
        ];
        let shards = r.shard(rows).unwrap();
        assert_eq!(shards[0].len(), 2);
        assert_eq!(shards[0][0][0], Value::Int(1));
        assert_eq!(shards[0][1][0], Value::Int(3));
        assert_eq!(shards[1].len(), 1);
        // Out-of-range key column.
        assert!(r.shard(vec![vec![Value::Int(1)].into()]).is_err());
    }
}
