//! Reference workloads shared by the benches, the `figures` harness, the
//! cluster integration tests, and the router property suite.
//!
//! Keeping these in one place means every consumer — including the E9
//! determinism gate, which compares a partitioned run byte-for-byte
//! against the single-partition reference — deploys the *same* schema and
//! procedure; a copy-paste drift between a bench and its correctness
//! test would otherwise go unnoticed.

use crate::SStore;
use sstore_common::{Result, Row, Value};
use sstore_txn::ProcSpec;

/// Deploy the `count_events` workload: a `ev (key, amount)` stream feeding
/// per-key counters in a `totals` table. Embarrassingly partitionable by
/// `key` (column 0) — the shape the shared-nothing runtime is built for.
pub fn deploy_count_events(db: &mut SStore) -> Result<()> {
    db.ddl("CREATE STREAM ev (key INT, amount INT)")?;
    db.ddl(
        "CREATE TABLE totals (key INT NOT NULL, n INT NOT NULL, \
            total INT NOT NULL, PRIMARY KEY (key))",
    )?;
    db.register(
        ProcSpec::new("count_events", |ctx| {
            for row in ctx.input().rows.clone() {
                let key = row[0].clone();
                let amount = row[1].clone();
                let seen = ctx.exec("get", std::slice::from_ref(&key))?;
                if seen.rows.is_empty() {
                    ctx.exec("init", &[key, amount])?;
                } else {
                    ctx.exec("bump", &[amount, key])?;
                }
            }
            Ok(())
        })
        .consumes("ev")
        .stmt("get", "SELECT key FROM totals WHERE key = ?")
        .stmt("init", "INSERT INTO totals VALUES (?, 1, ?)")
        .stmt(
            "bump",
            "UPDATE totals SET n = n + 1, total = total + ? WHERE key = ?",
        ),
    )?;
    Ok(())
}

/// Deterministic `count_events` input rows: key `i % key_mod`, amount
/// `i % amount_mod`. Benches use wide key spaces (many keys per
/// partition); tests use narrow ones (collisions exercise the
/// init-vs-bump path).
pub fn count_events_rows(n: usize, key_mod: i64, amount_mod: i64) -> Vec<Row> {
    (0..n)
        .map(|i| {
            Row::new(vec![
                Value::Int(i as i64 % key_mod),
                Value::Int(i as i64 % amount_mod),
            ])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SStoreBuilder;

    #[test]
    fn count_events_counts() {
        let mut db = SStoreBuilder::new().build().unwrap();
        deploy_count_events(&mut db).unwrap();
        db.submit_batch("count_events", count_events_rows(10, 5, 3))
            .unwrap();
        let n: i64 = db
            .query("SELECT SUM(n) FROM totals", &[])
            .unwrap()
            .scalar_i64()
            .unwrap();
        assert_eq!(n, 10);
    }
}
