//! Reference workloads shared by the benches, the `figures` harness, the
//! cluster integration tests, and the router property suite.
//!
//! Keeping these in one place means every consumer — including the E9
//! determinism gate, which compares a partitioned run byte-for-byte
//! against the single-partition reference — deploys the *same* schema and
//! procedure; a copy-paste drift between a bench and its correctness
//! test would otherwise go unnoticed.

use crate::SStore;
use sstore_common::{Result, Row, Value};
use sstore_txn::ProcSpec;

/// Deploy the `count_events` workload: a `ev (key, amount)` stream feeding
/// per-key counters in a `totals` table. Embarrassingly partitionable by
/// `key` (column 0) — the shape the shared-nothing runtime is built for.
pub fn deploy_count_events(db: &mut SStore) -> Result<()> {
    db.ddl("CREATE STREAM ev (key INT, amount INT)")?;
    db.ddl(
        "CREATE TABLE totals (key INT NOT NULL, n INT NOT NULL, \
            total INT NOT NULL, PRIMARY KEY (key))",
    )?;
    db.register(
        ProcSpec::new("count_events", |ctx| {
            for row in ctx.input().rows.clone() {
                let key = row[0].clone();
                let amount = row[1].clone();
                let seen = ctx.exec("get", std::slice::from_ref(&key))?;
                if seen.rows.is_empty() {
                    ctx.exec("init", &[key, amount])?;
                } else {
                    ctx.exec("bump", &[amount, key])?;
                }
            }
            Ok(())
        })
        .consumes("ev")
        .stmt("get", "SELECT key FROM totals WHERE key = ?")
        .stmt("init", "INSERT INTO totals VALUES (?, 1, ?)")
        .stmt(
            "bump",
            "UPDATE totals SET n = n + 1, total = total + ? WHERE key = ?",
        ),
    )?;
    Ok(())
}

/// Deterministic `count_events` input rows: key `i % key_mod`, amount
/// `i % amount_mod`. Benches use wide key spaces (many keys per
/// partition); tests use narrow ones (collisions exercise the
/// init-vs-bump path).
pub fn count_events_rows(n: usize, key_mod: i64, amount_mod: i64) -> Vec<Row> {
    (0..n)
        .map(|i| {
            Row::new(vec![
                Value::Int(i as i64 % key_mod),
                Value::Int(i as i64 % amount_mod),
            ])
        })
        .collect()
}

/// The `count_events` workload with the procedure declared
/// `multi_partition`: a border batch whose keys straddle partitions runs
/// as one global transaction under the cluster's 2PC coordinator
/// (single-partition batches take the fast path unchanged).
pub fn deploy_count_events_multi(db: &mut SStore) -> Result<()> {
    db.ddl("CREATE STREAM ev (key INT, amount INT)")?;
    db.ddl(
        "CREATE TABLE totals (key INT NOT NULL, n INT NOT NULL, \
            total INT NOT NULL, PRIMARY KEY (key))",
    )?;
    db.register(
        ProcSpec::new("count_events", |ctx| {
            for row in ctx.input().rows.clone() {
                let key = row[0].clone();
                let amount = row[1].clone();
                if amount.as_int()? < 0 {
                    // A poison amount: this fragment votes no, aborting
                    // the whole global transaction (tests use this to
                    // exercise the abort round).
                    return Err(ctx.abort("negative amount"));
                }
                let seen = ctx.exec("get", std::slice::from_ref(&key))?;
                if seen.rows.is_empty() {
                    ctx.exec("init", &[key, amount])?;
                } else {
                    ctx.exec("bump", &[amount, key])?;
                }
            }
            Ok(())
        })
        .consumes("ev")
        .multi_partition()
        .stmt("get", "SELECT key FROM totals WHERE key = ?")
        .stmt("init", "INSERT INTO totals VALUES (?, 1, ?)")
        .stmt(
            "bump",
            "UPDATE totals SET n = n + 1, total = total + ? WHERE key = ?",
        ),
    )?;
    Ok(())
}

/// A two-stage workflow with a cross-partition edge: `route_events`
/// (stage 1, partitioned by source key, column 0) counts per-source
/// traffic and re-emits each tuple keyed by its *destination*; the
/// `hand_off` stream carries the edge, and `apply_events` (stage 2, on
/// the partition owning the destination key) applies the amounts to
/// `dest_totals`. Deploy with [`TWO_STAGE_EDGES`] on the cluster so
/// stage 2 runs where the destination lives.
pub fn deploy_two_stage(db: &mut SStore) -> Result<()> {
    db.ddl("CREATE STREAM routed (src INT, dest INT, amount INT)")?;
    db.ddl("CREATE STREAM hand_off (dest INT, amount INT)")?;
    db.ddl("CREATE TABLE src_counts (key INT NOT NULL, n INT NOT NULL, PRIMARY KEY (key))")?;
    db.ddl(
        "CREATE TABLE dest_totals (key INT NOT NULL, n INT NOT NULL, \
            total INT NOT NULL, PRIMARY KEY (key))",
    )?;
    db.register(
        ProcSpec::new("route_events", |ctx| {
            for row in ctx.input().rows.clone() {
                let src = row[0].clone();
                let seen = ctx.exec("get", std::slice::from_ref(&src))?;
                if seen.rows.is_empty() {
                    ctx.exec("init", &[src])?;
                } else {
                    ctx.exec("bump", &[src])?;
                }
                ctx.emit(vec![row[1].clone(), row[2].clone()])?;
            }
            Ok(())
        })
        .consumes("routed")
        .emits("hand_off")
        .stmt("get", "SELECT key FROM src_counts WHERE key = ?")
        .stmt("init", "INSERT INTO src_counts VALUES (?, 1)")
        .stmt("bump", "UPDATE src_counts SET n = n + 1 WHERE key = ?"),
    )?;
    db.register(
        ProcSpec::new("apply_events", |ctx| {
            for row in ctx.input().rows.clone() {
                let dest = row[0].clone();
                let amount = row[1].clone();
                let seen = ctx.exec("get", std::slice::from_ref(&dest))?;
                if seen.rows.is_empty() {
                    ctx.exec("init", &[dest, amount])?;
                } else {
                    ctx.exec("bump", &[amount, dest])?;
                }
            }
            Ok(())
        })
        .consumes("hand_off")
        .stmt("get", "SELECT key FROM dest_totals WHERE key = ?")
        .stmt("init", "INSERT INTO dest_totals VALUES (?, 1, ?)")
        .stmt(
            "bump",
            "UPDATE dest_totals SET n = n + 1, total = total + ? WHERE key = ?",
        ),
    )?;
    Ok(())
}

/// The cross-partition edge declaration for [`deploy_two_stage`]:
/// `hand_off` routes by its destination key (column 0).
pub const TWO_STAGE_EDGES: &[(&str, usize)] = &[("hand_off", 0)];

/// Deterministic [`deploy_two_stage`] input rows: `(src, dest, amount)`
/// with sources and destinations cycling through disjoint residues so
/// most tuples hop partitions.
pub fn two_stage_rows(n: usize, key_mod: i64) -> Vec<Row> {
    (0..n)
        .map(|i| {
            Row::new(vec![
                Value::Int(i as i64 % key_mod),
                Value::Int((i as i64 + 1) % key_mod),
                Value::Int(i as i64 % 7),
            ])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SStoreBuilder;

    #[test]
    fn count_events_counts() {
        let mut db = SStoreBuilder::new().build().unwrap();
        deploy_count_events(&mut db).unwrap();
        db.submit_batch("count_events", count_events_rows(10, 5, 3))
            .unwrap();
        let n: i64 = db
            .query("SELECT SUM(n) FROM totals", &[])
            .unwrap()
            .scalar_i64()
            .unwrap();
        assert_eq!(n, 10);
    }
}
