//! Persistent shared-nothing partition runtime.
//!
//! H-Store — and therefore S-Store — is "designed for shared-nothing
//! clusters": the database is partitioned so that most transactions run
//! **single-sited**, serially, on the partition owning their data (paper
//! §2, citing Pavlo et al. (ref. 8) for partition design). [`Cluster`]
//! realizes that shape as a *runtime*, not a per-call simulation:
//!
//! * **N long-lived worker threads**, one per partition, mirroring
//!   H-Store's one-execution-site-per-core layout. Each worker *owns* its
//!   [`SStore`] outright (shared-nothing: no locks, no shared state) and
//!   drains a bounded MPSC ingest queue in FIFO order — per-partition
//!   submission order is execution order, which keeps parallel runs
//!   deterministic.
//! * **Routed ingest** via [`Router`]: a declared partition-key column
//!   with hash or explicit range placement splits each border batch into
//!   per-partition shards. `NULL` keys are rejected, never silently
//!   hashed.
//! * **Async submission**: [`Cluster::submit_batch_async`] enqueues shards
//!   and returns a [`Ticket`] that later resolves to per-TE outcomes;
//!   [`Cluster::submit_batch_partitioned`] is the blocking wrapper
//!   preserving the original API. While a ticket is in flight the worker
//!   may **coalesce** queued batches for the same procedure into one
//!   scheduler pass ([`sstore_txn::Partition::submit_batch_group`]),
//!   cutting per-submission PE-boundary overhead exactly where the paper
//!   claims EE/PE round-trip savings.
//! * **Scatter-gather reads**: [`Cluster::query_all`] fans a read-only
//!   query out to every worker in parallel and concatenates rows in
//!   partition order (cross-partition aggregation stays the caller's job,
//!   as in any shared-nothing system).
//!
//! Cross-partition *transactions* are still deliberately out of scope —
//! the paper's demo never leaves one site. Routing a tuple to the wrong
//! partition yields the same answer a mis-partitioned H-Store would: each
//! partition sees only its share.

use crate::builder::SStoreBuilder;
use crate::metrics::{ClusterMetrics, PartitionMetrics};
use crate::router::{RouteSpec, Router, Ticket};
use crate::SStore;
use sstore_common::{Error, PartitionId, Result, Row, Value};
use sstore_txn::TxnOutcome;
use std::sync::mpsc;
use std::thread::JoinHandle;

/// Default bound of each worker's ingest queue, in queued submissions.
/// A full queue applies backpressure: `submit_batch_async` blocks until
/// the worker drains a slot.
pub const DEFAULT_INGEST_QUEUE_DEPTH: usize = 256;

/// One unit of work on a partition worker's queue.
enum Job {
    /// A border-batch shard for this partition.
    Ingest {
        proc: String,
        rows: Vec<Row>,
        reply: mpsc::Sender<Result<Vec<TxnOutcome>>>,
    },
    /// One leg of a scatter-gather read-only query.
    Query {
        sql: String,
        params: Vec<Value>,
        reply: mpsc::Sender<Result<Vec<Row>>>,
    },
    /// Arbitrary code against the owned partition (stats, snapshots,
    /// tests). The closure captures its own reply channel.
    Exec(Box<dyn FnOnce(&mut SStore) + Send>),
    /// Advance the partition's logical clock.
    AdvanceClock(i64),
}

/// Handle to one partition worker thread.
struct Worker {
    id: PartitionId,
    /// `None` once the cluster began shutdown.
    tx: Option<mpsc::SyncSender<Job>>,
    handle: Option<JoinHandle<()>>,
}

impl Worker {
    fn send(&self, job: Job) -> Result<()> {
        self.tx
            .as_ref()
            .ok_or_else(|| Error::Internal(format!("partition {} is shut down", self.id)))?
            .send(job)
            .map_err(|_| Error::Internal(format!("partition worker {} disconnected", self.id)))
    }
}

/// A shared-nothing group of identically-deployed partitions, each run by
/// a persistent worker thread (see module docs).
pub struct Cluster {
    workers: Vec<Worker>,
    router: Router,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("partitions", &self.workers.len())
            .field("router", &self.router)
            .finish()
    }
}

impl Cluster {
    /// Build `n` partitions from one builder with the default routing
    /// (hash over column 0) and queue depth. See [`Cluster::with_config`].
    pub fn new(
        n: usize,
        builder: &SStoreBuilder,
        deploy: impl Fn(&mut SStore) -> Result<()>,
    ) -> Result<Cluster> {
        Cluster::with_config(
            n,
            RouteSpec::hash(0),
            DEFAULT_INGEST_QUEUE_DEPTH,
            builder,
            deploy,
        )
    }

    /// Build `n` partitions from one builder, running the same `deploy`
    /// (DDL + procedure registration + seeding) on each — deterministic
    /// redeployment, exactly like the recovery contract. Each partition
    /// gets its own [`PartitionId`] (threaded into its stats) and, when
    /// durability is configured, its own `p{i}` subdirectory of the
    /// builder's log dir. The partitions are then moved onto long-lived
    /// worker threads owning them until the cluster drops.
    pub fn with_config(
        n: usize,
        route: RouteSpec,
        queue_depth: usize,
        builder: &SStoreBuilder,
        deploy: impl Fn(&mut SStore) -> Result<()>,
    ) -> Result<Cluster> {
        if n == 0 {
            return Err(Error::Schedule(
                "a cluster needs at least 1 partition".into(),
            ));
        }
        let router = Router::new(route, n)?;
        let depth = queue_depth.max(1);
        let mut workers = Vec::with_capacity(n);
        for i in 0..n {
            let id = PartitionId::new(i as u32);
            let mut b = builder.clone().partition_id(id);
            if let Some(log) = b.config().log.clone() {
                // Shared-nothing durability too: one log dir per site.
                b = b.durability(log.dir.join(format!("p{i}")), log.group_commit_n);
            }
            let mut p = b.build()?;
            deploy(&mut p)?;
            let (tx, rx) = mpsc::sync_channel::<Job>(depth);
            let handle = std::thread::Builder::new()
                .name(format!("sstore-p{i}"))
                .spawn(move || worker_loop(p, rx))
                .map_err(|e| Error::Internal(format!("spawn partition worker: {e}")))?;
            workers.push(Worker {
                id,
                tx: Some(tx),
                handle: Some(handle),
            });
        }
        Ok(Cluster { workers, router })
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// True when the cluster has no partitions (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// The declared router.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Replace the routing declaration (validated against the partition
    /// count). Affects subsequent submissions only.
    pub fn declare_route(&mut self, spec: RouteSpec) -> Result<()> {
        self.router = Router::new(spec, self.workers.len())?;
        Ok(())
    }

    /// Run `f` against one partition on its worker thread and return the
    /// result (dashboards, tests, snapshots). Blocks until the worker
    /// reaches this job in queue order.
    ///
    /// # Panics
    /// Panics if the worker has died — which only happens when a previous
    /// `with_partition` closure panicked on it (a caller bug; the runtime
    /// itself replies with `Err` rather than panicking).
    pub fn with_partition<R, F>(&self, i: usize, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut SStore) -> R + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        self.workers[i]
            .send(Job::Exec(Box::new(move |db| {
                let _ = tx.send(f(db));
            })))
            .expect("partition worker disconnected");
        rx.recv().expect("partition worker dropped reply")
    }

    /// Submit a border batch asynchronously: shard by the declared route,
    /// enqueue each shard on its partition's ingest queue (blocking only
    /// if a queue is full — backpressure), and return a [`Ticket`] that
    /// resolves to per-partition TE outcomes. Rows with `NULL` partition
    /// keys are rejected before anything is enqueued.
    pub fn submit_batch_async<R: Into<Row>>(&self, proc: &str, rows: Vec<R>) -> Result<Ticket> {
        let rows: Vec<Row> = rows.into_iter().map(Into::into).collect();
        let shards = self.router.shard(rows)?;
        self.submit_shards(proc, shards)
    }

    /// Submit a border batch split by the declared route, and block for
    /// the results — the original synchronous API, now a wrapper over the
    /// async path. Returns per-partition outcomes (empty for partitions
    /// that received no rows).
    ///
    /// `key_col` must name the cluster's declared partition-key column
    /// (anything else is rejected — routing the same table by two
    /// different columns would silently split a key's state across
    /// partitions). To route by another column, [`Cluster::declare_route`]
    /// first.
    pub fn submit_batch_partitioned<R: Into<Row>>(
        &self,
        proc: &str,
        rows: Vec<R>,
        key_col: usize,
    ) -> Result<Vec<Vec<TxnOutcome>>> {
        let declared = self.router.spec().key_col();
        if declared != key_col {
            return Err(Error::Schedule(format!(
                "cluster routes on partition-key column {declared}; cannot route by \
                 column {key_col} (declare_route first to change the partition key)"
            )));
        }
        let rows: Vec<Row> = rows.into_iter().map(Into::into).collect();
        let ticket = self.submit_shards(proc, self.router.shard(rows)?)?;
        let mut results: Vec<Vec<TxnOutcome>> =
            (0..self.workers.len()).map(|_| Vec::new()).collect();
        for po in ticket.wait()? {
            results[po.partition.raw() as usize] = po.outcomes;
        }
        Ok(results)
    }

    fn submit_shards(&self, proc: &str, shards: Vec<Vec<Row>>) -> Result<Ticket> {
        let mut pending = Vec::new();
        for (worker, shard) in self.workers.iter().zip(shards) {
            if shard.is_empty() {
                continue;
            }
            let (tx, rx) = mpsc::channel();
            worker.send(Job::Ingest {
                proc: proc.to_string(),
                rows: shard,
                reply: tx,
            })?;
            pending.push((worker.id, rx));
        }
        Ok(Ticket { pending })
    }

    /// Run a read-only query on every partition **in parallel** and
    /// concatenate the rows in partition order (a scatter-gather read;
    /// aggregation across partitions is the caller's job, as in any
    /// shared-nothing system).
    pub fn query_all(&self, sql: &str, params: &[Value]) -> Result<Vec<Row>> {
        let mut replies = Vec::with_capacity(self.workers.len());
        for worker in &self.workers {
            let (tx, rx) = mpsc::channel();
            worker.send(Job::Query {
                sql: sql.to_string(),
                params: params.to_vec(),
                reply: tx,
            })?;
            replies.push((worker.id, rx));
        }
        let mut out = Vec::new();
        for (id, rx) in replies {
            let rows = rx
                .recv()
                .map_err(|_| Error::Internal(format!("partition worker {id} disconnected")))??;
            out.extend(rows);
        }
        Ok(out)
    }

    /// Advance every partition's logical clock in lockstep. The advance
    /// is queued FIFO like any other job, so it lands at a deterministic
    /// point relative to this caller's submissions.
    pub fn advance_clock(&self, micros: i64) -> Result<()> {
        for worker in &self.workers {
            worker.send(Job::AdvanceClock(micros))?;
        }
        Ok(())
    }

    /// Capture per-partition counters. The capture jobs are enqueued on
    /// every worker first and then collected, so the wait is bounded by
    /// the slowest single worker (like [`Cluster::query_all`]), and each
    /// capture reflects everything queued on its partition before it.
    pub fn metrics(&self) -> ClusterMetrics {
        let mut replies = Vec::with_capacity(self.workers.len());
        for worker in &self.workers {
            let (tx, rx) = mpsc::channel();
            worker
                .send(Job::Exec(Box::new(move |db| {
                    let _ = tx.send(PartitionMetrics::capture(db));
                })))
                .expect("partition worker disconnected");
            replies.push(rx);
        }
        ClusterMetrics {
            partitions: replies
                .into_iter()
                .map(|rx| rx.recv().expect("partition worker dropped reply"))
                .collect(),
            rows: sstore_common::RowMetrics::snapshot(),
        }
    }

    /// Sum of committed TEs across partitions.
    pub fn total_committed(&self) -> u64 {
        self.metrics().total_committed()
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        // Closing the queues lets each worker finish everything already
        // enqueued, then exit.
        for w in &mut self.workers {
            w.tx = None;
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// The partition worker: drain the ingest queue in FIFO order until the
/// cluster handle drops. Consecutive queued submissions for the same
/// procedure are coalesced into one PE scheduler pass
/// ([`sstore_txn::Partition::submit_batch_group`]) — per-submission order
/// is preserved, so the final state is byte-for-byte what one-at-a-time
/// execution would produce, minus the per-submission boundary overhead.
fn worker_loop(mut db: SStore, rx: mpsc::Receiver<Job>) {
    let mut carry: Option<Job> = None;
    loop {
        let job = match carry.take() {
            Some(j) => j,
            None => match rx.recv() {
                Ok(j) => j,
                Err(_) => break, // cluster dropped; queue fully drained
            },
        };
        match job {
            Job::Ingest { proc, rows, reply } => {
                let mut group = vec![(rows, reply)];
                // Opportunistically coalesce same-procedure submissions
                // already waiting in the queue. A job for a different
                // procedure (or kind) is carried into the next iteration
                // so FIFO order holds.
                while carry.is_none() {
                    match rx.try_recv() {
                        Ok(Job::Ingest {
                            proc: p,
                            rows,
                            reply,
                        }) if p == proc => group.push((rows, reply)),
                        Ok(other) => carry = Some(other),
                        Err(_) => break,
                    }
                }
                if group.len() == 1 {
                    let (rows, reply) = group.pop().expect("one submission");
                    let _ = reply.send(db.submit_batch(&proc, rows));
                } else {
                    let (batches, replies): (Vec<_>, Vec<_>) = group.into_iter().unzip();
                    match db.submit_batch_group(&proc, batches) {
                        // Per-submission results: a batch that committed
                        // resolves Ok even when a later group member
                        // failed to enqueue — the same answer it would
                        // have gotten uncoalesced.
                        Ok(results) => {
                            for (reply, result) in replies.into_iter().zip(results) {
                                let _ = reply.send(result);
                            }
                        }
                        Err(e) => {
                            for reply in replies {
                                let _ = reply.send(Err(e.clone()));
                            }
                        }
                    }
                }
            }
            Job::Query { sql, params, reply } => {
                let _ = reply.send(db.query(&sql, &params).map(|r| r.rows));
            }
            Job::Exec(f) => f(&mut db),
            Job::AdvanceClock(micros) => {
                db.advance_clock(micros);
            }
        }
    }
}
