//! Persistent shared-nothing partition runtime.
//!
//! H-Store — and therefore S-Store — is "designed for shared-nothing
//! clusters": the database is partitioned so that most transactions run
//! **single-sited**, serially, on the partition owning their data (paper
//! §2, citing Pavlo et al. (ref. 8) for partition design). [`Cluster`]
//! realizes that shape as a *runtime*, not a per-call simulation:
//!
//! * **N long-lived worker threads**, one per partition, mirroring
//!   H-Store's one-execution-site-per-core layout. Each worker *owns* its
//!   [`SStore`] outright (shared-nothing: no locks, no shared state) and
//!   drains a bounded MPSC ingest queue in FIFO order — per-partition
//!   submission order is execution order, which keeps parallel runs
//!   deterministic.
//! * **Routed ingest** via [`Router`]: a declared partition-key column
//!   with hash or explicit range placement splits each border batch into
//!   per-partition shards. `NULL` keys are rejected, never silently
//!   hashed.
//! * **Async submission**: [`Cluster::submit_batch_async`] enqueues shards
//!   and returns a [`Ticket`] that later resolves to per-TE outcomes;
//!   [`Cluster::submit_batch_partitioned`] is the blocking wrapper
//!   preserving the original API. While a ticket is in flight the worker
//!   may **coalesce** queued batches for the same procedure into one
//!   scheduler pass ([`sstore_txn::Partition::submit_batch_group`]),
//!   cutting per-submission PE-boundary overhead exactly where the paper
//!   claims EE/PE round-trip savings.
//! * **Scatter-gather reads**: [`Cluster::query_all`] fans a read-only
//!   query out to every worker in parallel and concatenates rows in
//!   partition order (cross-partition aggregation stays the caller's job,
//!   as in any shared-nothing system).
//!
//! # Cross-partition transactions (2PC)
//!
//! A border submission of a procedure declared `multi_partition` whose
//! rows route to more than one partition runs as **one global
//! transaction** under two-phase commit ([`crate::coordinator`]):
//!
//! 1. the coordinator fragments the batch and sends `WorkerMsg::Prepare`
//!    down each involved partition's ingest queue;
//! 2. each participant logs the fragment (fsync), executes it with the
//!    **undo log held open**, and votes;
//! 3. the coordinator makes the decision durable (`coord.log` — the
//!    commit point) and sends `WorkerMsg::Decide`;
//! 4. participants commit (dropping the undo, firing PE triggers) or
//!    roll back, and resolve the [`Ticket`].
//!
//! Between its vote and the decision a worker **defers** every other
//! queued job — the fragment's uncommitted writes are in storage, and
//! serial execution is what makes the rollback sound. Two fast paths
//! relax the protocol without weakening it:
//!
//! * **Presumed abort** — abort decisions are never logged; recovery
//!   reads a gtid's absence from `coord.log` as abort, so the abort
//!   round skips the coordinator fsync entirely.
//! * **Early-prepare speculation** — while the prepared fragment waits
//!   for its decision, queued single-partition submissions whose
//!   transitive workflow closure is provably disjoint from the
//!   fragment's keep executing (`SSTORE_SPECULATION=off` disables;
//!   see [`sstore_txn::Partition::speculation_safe`]).
//!
//! A submission whose rows all land on one partition skips all of this:
//! the coordinator detects it and takes the PR 2 ingest path
//! byte-for-byte (the single-partition fast path).
//!
//! Recovery rebuilds the partitions **in parallel** — each replays its
//! own `p{i}` log on a scoped thread against the shared decision map —
//! and only wires the workers (whose startup re-forwards unacked edge
//! envelopes) once every partition is up. `SSTORE_RECOVERY=serial`
//! forces the sequential loop for A/B measurement (benchmark E13).
//!
//! # Cross-partition workflow edges
//!
//! A stream declared a cross-partition edge ([`Cluster::with_edges`])
//! carries tuples from a committing TE on one partition to the consuming
//! procedures on the partitions owning the downstream keys: the emitting
//! worker buffers an envelope, the **forward hub** (a dedicated router
//! thread) shards it by the edge's key column, and each receiving worker
//! logs the forward durably (dedup'd by per-edge high-water mark) before
//! executing it — ordered, exactly-once dataflow across partitions. The
//! emitting batch's input record stays replayable (unacked) until every
//! receiver has logged its shard: upstream backup spans the edge.
//! Workers never block on the hub (its queue is unbounded), and the hub
//! is the only thread that blocks on worker queues, so forward storms
//! cannot deadlock the worker set.

use crate::builder::SStoreBuilder;
use crate::coordinator::{CoordState, CoordStats, Coordinator, CoordinatorLog};
use crate::metrics::{ClusterMetrics, PartitionMetrics};
use crate::router::{RouteSpec, Router, Ticket};
use crate::SStore;
use sstore_common::{BatchId, Error, PartitionId, Result, Row, Value};
use sstore_txn::recovery::recover_with_decisions;
use sstore_txn::TxnOutcome;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// Default bound of each worker's ingest queue, in queued submissions.
/// A full queue applies backpressure: `submit_batch_async` blocks until
/// the worker drains a slot.
pub const DEFAULT_INGEST_QUEUE_DEPTH: usize = 256;

/// One message on a partition worker's ingest queue.
enum WorkerMsg {
    /// A border-batch shard for this partition.
    Ingest {
        proc: String,
        rows: Vec<Row>,
        reply: mpsc::Sender<Result<Vec<TxnOutcome>>>,
    },
    /// One leg of a scatter-gather read-only query.
    Query {
        sql: String,
        params: Vec<Value>,
        reply: mpsc::Sender<Result<Vec<Row>>>,
    },
    /// Arbitrary code against the owned partition (stats, snapshots,
    /// tests). The closure captures its own reply channel.
    Exec(Box<dyn FnOnce(&mut SStore) + Send>),
    /// Advance the partition's logical clock.
    AdvanceClock(i64),
    /// 2PC phase 1: prepare a fragment of global transaction `gtid`.
    /// The worker votes on `vote`, then blocks (deferring other queued
    /// jobs) until the matching [`WorkerMsg::Decide`] arrives, and
    /// finally resolves `reply` with the fragment's outcomes.
    Prepare {
        gtid: u64,
        proc: String,
        rows: Vec<Row>,
        vote: mpsc::Sender<Result<()>>,
        reply: mpsc::Sender<Result<Vec<TxnOutcome>>>,
    },
    /// 2PC phase 2: the coordinator's durable decision for `gtid`.
    Decide { gtid: u64, commit: bool },
    /// A shard of a cross-partition workflow edge, delivered by the hub.
    Forward {
        stream: String,
        src: PartitionId,
        src_batch: BatchId,
        rows: Vec<Row>,
    },
    /// Every receiver of `batch`'s edge forwards has durably logged its
    /// shard: release the emitting batch's upstream backup.
    EdgeAck { batch: BatchId },
}

/// Messages to the forward hub (the cross-edge router thread).
enum HubMsg {
    /// An emitted batch bound for the partitions owning its keys.
    Forward {
        src: PartitionId,
        fwd: sstore_txn::RemoteForward,
    },
    /// A receiver durably logged (or deduplicated) its shard of the
    /// identified edge instance. `ok = false` means the log write failed:
    /// the edge ack is withheld so the emitting batch stays replayable.
    Logged {
        src: PartitionId,
        src_batch: BatchId,
        stream: String,
        ok: bool,
    },
    /// Cluster shutdown: drain what is queued, then exit.
    Shutdown,
}

/// Handle to one partition worker thread.
struct Worker {
    id: PartitionId,
    /// `None` once the cluster began shutdown.
    tx: Option<mpsc::SyncSender<WorkerMsg>>,
    handle: Option<JoinHandle<()>>,
}

impl Worker {
    fn send(&self, msg: WorkerMsg) -> Result<()> {
        self.tx
            .as_ref()
            .ok_or_else(|| Error::Internal(format!("partition {} is shut down", self.id)))?
            .send(msg)
            .map_err(|_| Error::Internal(format!("partition worker {} disconnected", self.id)))
    }
}

/// A shared-nothing group of identically-deployed partitions, each run by
/// a persistent worker thread, plus the cross-partition machinery: the
/// 2PC coordinator and the forward hub (see module docs).
pub struct Cluster {
    workers: Vec<Worker>,
    router: Router,
    hub_tx: Option<mpsc::Sender<HubMsg>>,
    hub_handle: Option<JoinHandle<()>>,
    /// Outstanding cross-edge work units (envelopes + delivered shards);
    /// zero ⇔ the dataflow between partitions is quiescent.
    in_flight: Arc<AtomicI64>,
    coordinator: Mutex<Coordinator>,
    /// Procedures declared `multi_partition` (identical on every
    /// partition; captured from partition 0 at build).
    multi_partition_procs: HashSet<String>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("partitions", &self.workers.len())
            .field("router", &self.router)
            .field("multi_partition_procs", &self.multi_partition_procs)
            .finish()
    }
}

impl Cluster {
    /// Build `n` partitions from one builder with the default routing
    /// (hash over column 0) and queue depth. See [`Cluster::with_config`].
    pub fn new(
        n: usize,
        builder: &SStoreBuilder,
        deploy: impl Fn(&mut SStore) -> Result<()> + Sync,
    ) -> Result<Cluster> {
        Cluster::with_config(
            n,
            RouteSpec::hash(0),
            DEFAULT_INGEST_QUEUE_DEPTH,
            builder,
            deploy,
        )
    }

    /// Build `n` partitions from one builder, running the same `deploy`
    /// (DDL + procedure registration + seeding) on each — deterministic
    /// redeployment, exactly like the recovery contract. Each partition
    /// gets its own [`PartitionId`] (threaded into its stats) and, when
    /// durability is configured, its own `p{i}` subdirectory of the
    /// builder's log dir. The partitions are then moved onto long-lived
    /// worker threads owning them until the cluster drops.
    pub fn with_config(
        n: usize,
        route: RouteSpec,
        queue_depth: usize,
        builder: &SStoreBuilder,
        deploy: impl Fn(&mut SStore) -> Result<()> + Sync,
    ) -> Result<Cluster> {
        Cluster::build(n, route, queue_depth, builder, deploy, &[], false)
    }

    /// [`Cluster::with_config`] plus cross-partition workflow edge
    /// declarations: each `(stream, key_col)` pair is declared on every
    /// partition right after `deploy` runs, so emissions onto those
    /// streams route through the forward hub from the first batch.
    pub fn with_edges(
        n: usize,
        route: RouteSpec,
        queue_depth: usize,
        builder: &SStoreBuilder,
        deploy: impl Fn(&mut SStore) -> Result<()> + Sync,
        edges: &[(&str, usize)],
    ) -> Result<Cluster> {
        Cluster::build(n, route, queue_depth, builder, deploy, edges, false)
    }

    /// Rebuild a cluster from its durable state: reads the coordinator's
    /// decision log, then recovers every partition from its `p{i}` dir —
    /// resolving prepared-but-undecided 2PC fragments against the
    /// coordinator's decisions (in-doubt fragments abort) — and finally
    /// re-forwards any unacknowledged cross-edge batches (receivers
    /// deduplicate by high-water mark, so the re-send is exactly-once).
    /// `deploy` and `edges` must match the pre-crash topology.
    pub fn recover(
        n: usize,
        route: RouteSpec,
        queue_depth: usize,
        builder: &SStoreBuilder,
        deploy: impl Fn(&mut SStore) -> Result<()> + Sync,
        edges: &[(&str, usize)],
    ) -> Result<Cluster> {
        Cluster::build(n, route, queue_depth, builder, deploy, edges, true)
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        n: usize,
        route: RouteSpec,
        queue_depth: usize,
        builder: &SStoreBuilder,
        deploy: impl Fn(&mut SStore) -> Result<()> + Sync,
        edges: &[(&str, usize)],
        recover: bool,
    ) -> Result<Cluster> {
        if n == 0 {
            return Err(Error::Schedule(
                "a cluster needs at least 1 partition".into(),
            ));
        }
        let router = Router::new(route, n)?;
        let depth = queue_depth.max(1);

        // Coordinator durability rides the builder's log dir (the
        // partitions use `p{i}` subdirectories of it). The decision log
        // is read on EVERY durable build — not just recovery — because
        // the gtid sequence must never restart: a reused gtid whose old
        // incarnation aborted in doubt would be retroactively committed
        // by a later commit record on the next recovery.
        let coord_dir = builder.config().log.as_ref().map(|l| l.dir.clone());
        let coord_state = match &coord_dir {
            Some(dir) => CoordinatorLog::read(dir)?,
            None => CoordState {
                next_gtid: 1,
                ..CoordState::default()
            },
        };
        let decisions = if recover {
            coord_state.decisions
        } else {
            HashMap::new()
        };
        let mut next_gtid = coord_state.next_gtid;

        // Build (or recover) the partitions first, then wire the threads.
        // The decisions map is read once above and shared; each partition
        // replays only its own `p{i}` log, so recovery parallelizes
        // cleanly across scoped threads. Unacked edge envelopes are only
        // re-forwarded later, by the workers' startup `flush_outbox` —
        // i.e. after every partition is up and able to receive.
        let setup = |p: &mut SStore| -> Result<()> {
            deploy(p)?;
            for &(stream, key_col) in edges {
                p.declare_cross_edge(stream, key_col)?;
            }
            Ok(())
        };
        let site_builder = |i: usize| -> SStoreBuilder {
            let mut b = builder.clone().partition_id(PartitionId::new(i as u32));
            if let Some(log) = b.config().log.clone() {
                // Shared-nothing durability too: one log dir per site.
                b = b.durability(log.dir.join(format!("p{i}")), log.group_commit_n);
            }
            b
        };
        // `build_one` is shared across the recovery threads below, so it
        // captures `setup` by reference (a `&impl Fn` is itself `Fn`).
        let setup = &setup;
        let build_one = |b: SStoreBuilder| -> Result<SStore> {
            if recover && b.config().log.is_some() {
                recover_with_decisions(b.config().clone(), setup, &decisions)
            } else {
                let mut p = b.build()?;
                setup(&mut p)?;
                Ok(p)
            }
        };
        let parallel = recover
            && n > 1
            && !matches!(std::env::var("SSTORE_RECOVERY").as_deref(), Ok("serial"));
        let partitions: Vec<SStore> = if parallel {
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..n)
                    .map(|i| {
                        let b = site_builder(i);
                        let build_one = &build_one;
                        s.spawn(move || build_one(b))
                    })
                    .collect();
                // Join every handle before surfacing the first error: a
                // short-circuiting collect would leave panicked threads
                // for the scope to auto-join, and the scope re-panics on
                // those. A panicking replay (corrupt state tripping an
                // assertion, an injected fault) must instead surface as
                // a clean recovery error.
                let joined: Vec<Result<SStore>> = handles
                    .into_iter()
                    .enumerate()
                    .map(|(i, h)| {
                        h.join().unwrap_or_else(|_| {
                            Err(Error::Recovery(format!(
                                "partition {i} panicked during parallel recovery"
                            )))
                        })
                    })
                    .collect();
                joined.into_iter().collect::<Result<Vec<_>>>()
            })?
        } else {
            (0..n)
                .map(|i| build_one(site_builder(i)))
                .collect::<Result<Vec<_>>>()?
        };
        let mut multi_partition_procs = HashSet::new();
        for (i, p) in partitions.iter().enumerate() {
            if i == 0 {
                multi_partition_procs = p.multi_partition_procs().into_iter().collect();
            }
            // A partition may have prepared gtids the coordinator never
            // decided (in-doubt at the crash): sequence past those too.
            next_gtid = next_gtid.max(p.max_gtid_seen() + 1);
        }
        let coord_log = match &coord_dir {
            Some(dir) => Some(CoordinatorLog::open(dir)?),
            None => None,
        };
        let coordinator = Mutex::new(Coordinator::new(coord_log, next_gtid));

        // Worker channels, then the hub (it holds every worker's sender),
        // then the workers (each holds the hub's sender).
        let mut worker_txs = Vec::with_capacity(n);
        let mut worker_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = mpsc::sync_channel::<WorkerMsg>(depth);
            worker_txs.push(tx);
            worker_rxs.push(rx);
        }
        let in_flight = Arc::new(AtomicI64::new(0));
        let (hub_tx, hub_rx) = mpsc::channel::<HubMsg>();
        let hub_handle = {
            let workers = worker_txs.clone();
            let in_flight = Arc::clone(&in_flight);
            std::thread::Builder::new()
                .name("sstore-hub".into())
                .spawn(move || hub_loop(hub_rx, workers, n, in_flight))
                .map_err(|e| Error::Internal(format!("spawn forward hub: {e}")))?
        };

        let mut workers = Vec::with_capacity(n);
        for (i, (p, rx)) in partitions.into_iter().zip(worker_rxs).enumerate() {
            let id = PartitionId::new(i as u32);
            let hub = hub_tx.clone();
            let in_flight = Arc::clone(&in_flight);
            let handle = std::thread::Builder::new()
                .name(format!("sstore-p{i}"))
                .spawn(move || worker_loop(id, p, rx, hub, in_flight))
                .map_err(|e| Error::Internal(format!("spawn partition worker: {e}")))?;
            workers.push(Worker {
                id,
                tx: Some(worker_txs[i].clone()),
                handle: Some(handle),
            });
        }
        drop(worker_txs);

        Ok(Cluster {
            workers,
            router,
            hub_tx: Some(hub_tx),
            hub_handle: Some(hub_handle),
            in_flight,
            coordinator,
            multi_partition_procs,
        })
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// True when the cluster has no partitions (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// The declared router.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Replace the routing declaration (validated against the partition
    /// count). Affects subsequent submissions only.
    pub fn declare_route(&mut self, spec: RouteSpec) -> Result<()> {
        self.router = Router::new(spec, self.workers.len())?;
        Ok(())
    }

    /// Declare `stream` a cross-partition workflow edge on every
    /// partition (see [`Cluster::with_edges`], which also covers
    /// recovery). Affects subsequent emissions only.
    pub fn declare_cross_edge(&self, stream: &str, key_col: usize) -> Result<()> {
        for i in 0..self.workers.len() {
            let name = stream.to_string();
            self.with_partition(i, move |db| db.declare_cross_edge(&name, key_col))?;
        }
        Ok(())
    }

    /// Run `f` against one partition on its worker thread and return the
    /// result (dashboards, tests, snapshots). Blocks until the worker
    /// reaches this job in queue order.
    ///
    /// # Panics
    /// Panics if the worker has died — which only happens when a previous
    /// `with_partition` closure panicked on it (a caller bug; the runtime
    /// itself replies with `Err` rather than panicking).
    pub fn with_partition<R, F>(&self, i: usize, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut SStore) -> R + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        self.workers[i]
            .send(WorkerMsg::Exec(Box::new(move |db| {
                let _ = tx.send(f(db));
            })))
            .expect("partition worker disconnected");
        rx.recv().expect("partition worker dropped reply")
    }

    /// Submit a border batch asynchronously: shard by the declared route,
    /// enqueue each shard on its partition's ingest queue (blocking only
    /// if a queue is full — backpressure), and return a [`Ticket`] that
    /// resolves to per-partition TE outcomes. Rows with `NULL` partition
    /// keys are rejected before anything is enqueued.
    ///
    /// A procedure declared `multi_partition` whose rows route to more
    /// than one partition runs as one global transaction under 2PC (see
    /// the module docs); all other submissions keep the independent
    /// per-partition semantics.
    pub fn submit_batch_async<R: Into<Row>>(&self, proc: &str, rows: Vec<R>) -> Result<Ticket> {
        let rows: Vec<Row> = rows.into_iter().map(Into::into).collect();
        let shards = self.router.shard(rows)?;
        if self.multi_partition_procs.contains(proc) {
            return self.coordinate(proc, shards);
        }
        self.submit_shards(proc, shards)
    }

    /// Submit a border batch as **one atomic global transaction**,
    /// regardless of the procedure's declaration: two-phase commit when
    /// the rows straddle partitions, the ordinary single-partition path
    /// when they don't. The returned [`Ticket`] resolves to every
    /// participant's outcomes; if any participant votes no, the whole
    /// transaction aborts everywhere and `wait()` surfaces the error.
    pub fn submit_batch_atomic<R: Into<Row>>(&self, proc: &str, rows: Vec<R>) -> Result<Ticket> {
        let rows: Vec<Row> = rows.into_iter().map(Into::into).collect();
        let shards = self.router.shard(rows)?;
        self.coordinate(proc, shards)
    }

    /// Submit a border batch split by the declared route, and block for
    /// the results — the original synchronous API, now a wrapper over the
    /// async path. Returns per-partition outcomes (empty for partitions
    /// that received no rows).
    ///
    /// `key_col` must name the cluster's declared partition-key column
    /// (anything else is rejected — routing the same table by two
    /// different columns would silently split a key's state across
    /// partitions). To route by another column, [`Cluster::declare_route`]
    /// first.
    pub fn submit_batch_partitioned<R: Into<Row>>(
        &self,
        proc: &str,
        rows: Vec<R>,
        key_col: usize,
    ) -> Result<Vec<Vec<TxnOutcome>>> {
        let declared = self.router.spec().key_col();
        if declared != key_col {
            return Err(Error::Schedule(format!(
                "cluster routes on partition-key column {declared}; cannot route by \
                 column {key_col} (declare_route first to change the partition key)"
            )));
        }
        let ticket = self.submit_batch_async(proc, rows)?;
        let mut results: Vec<Vec<TxnOutcome>> =
            (0..self.workers.len()).map(|_| Vec::new()).collect();
        for po in ticket.wait()? {
            results[po.partition.raw() as usize] = po.outcomes;
        }
        Ok(results)
    }

    fn submit_shards(&self, proc: &str, shards: Vec<Vec<Row>>) -> Result<Ticket> {
        let mut pending = Vec::new();
        for (worker, shard) in self.workers.iter().zip(shards) {
            if shard.is_empty() {
                continue;
            }
            let (tx, rx) = mpsc::channel();
            worker.send(WorkerMsg::Ingest {
                proc: proc.to_string(),
                rows: shard,
                reply: tx,
            })?;
            pending.push((worker.id, rx));
        }
        Ok(Ticket { pending })
    }

    /// Run one submission through the transaction coordinator: the
    /// single-partition fast path when at most one shard is non-empty
    /// (byte-identical to plain ingest — no 2PC messages, no extra log
    /// records), a full prepare/decide round otherwise. The coordinator
    /// mutex serializes multi-sited transactions (H-Store's discipline),
    /// which also rules out distributed deadlock between prepare rounds.
    fn coordinate(&self, proc: &str, shards: Vec<Vec<Row>>) -> Result<Ticket> {
        let involved = shards.iter().filter(|s| !s.is_empty()).count();
        let mut coordinator = self
            .coordinator
            .lock()
            .map_err(|_| Error::Internal("coordinator mutex poisoned".into()))?;
        if involved <= 1 {
            coordinator.note_fast_path();
            drop(coordinator);
            return self.submit_shards(proc, shards);
        }

        let gtid = coordinator.begin();
        coordinator.note_multi_partition(involved);

        // Phase 1: prepare every involved partition.
        let mut votes = Vec::with_capacity(involved);
        let mut pending = Vec::with_capacity(involved);
        let mut participants = Vec::with_capacity(involved);
        let mut send_err: Option<Error> = None;
        for (worker, shard) in self.workers.iter().zip(shards) {
            if shard.is_empty() {
                continue;
            }
            let (vote_tx, vote_rx) = mpsc::channel();
            let (reply_tx, reply_rx) = mpsc::channel();
            match worker.send(WorkerMsg::Prepare {
                gtid,
                proc: proc.to_string(),
                rows: shard,
                vote: vote_tx,
                reply: reply_tx,
            }) {
                Ok(()) => {
                    votes.push(vote_rx);
                    pending.push((worker.id, reply_rx));
                    participants.push(worker.id);
                }
                Err(e) => {
                    send_err = Some(e);
                    break;
                }
            }
        }

        // Collect votes; any no (or dead worker, or failed send) aborts.
        let mut commit = send_err.is_none();
        for rx in votes {
            match rx.recv() {
                Ok(Ok(())) => {}
                Ok(Err(_)) | Err(_) => commit = false,
            }
        }

        // Commit point: the decision is durable before any participant
        // may act on it. A failed commit write whose bytes were rolled
        // back is *provably absent*, so flipping to abort is safe; a
        // failure of UNKNOWN durability (kind "recovery") must release
        // no outcome at all — live participants and a later recovery
        // could otherwise resolve the gtid differently. The participants
        // stay blocked until the cluster drops (which aborts them the
        // same way a crash would) and the error surfaces to the caller.
        if commit {
            match coordinator.decide(gtid, true, &participants) {
                Ok(()) => {}
                Err(e) if e.kind() == "recovery" => {
                    drop(coordinator);
                    return Err(e);
                }
                Err(e) => {
                    eprintln!("sstore: coordinator decision log failed, aborting gtid {gtid}: {e}");
                    commit = false;
                    coordinator.decide(gtid, false, &participants).ok();
                }
            }
        } else {
            // Presumed abort: an absent record already means abort, so a
            // failed abort write cannot cause divergence.
            coordinator.decide(gtid, false, &participants).ok();
        }

        // Phase 2: release the participants.
        for id in &participants {
            self.workers[id.raw() as usize]
                .send(WorkerMsg::Decide { gtid, commit })
                .ok();
        }
        // Checkpoint compaction, still under the coordinator mutex (no
        // concurrent decide can interleave). The barrier drains every
        // worker queue — including the Decides just sent — so each
        // participant has durably logged its local Decision for every
        // decided gtid; the coordinator's records are then redundant. A
        // failed barrier (a dead worker that may never log its decision)
        // skips the compaction: correctness first.
        if coordinator.should_compact() && self.barrier().is_ok() {
            if let Err(e) = coordinator.compact() {
                eprintln!("sstore: coordinator log compaction failed (retained): {e}");
            }
        }
        drop(coordinator);
        if let Some(e) = send_err {
            return Err(e);
        }
        Ok(Ticket { pending })
    }

    /// The coordinator's counters (fast-path vs 2PC submissions, commit
    /// and abort decisions).
    pub fn coordinator_stats(&self) -> CoordStats {
        self.coordinator
            .lock()
            .map(|c| c.stats())
            .unwrap_or_default()
    }

    /// Run a read-only query on every partition **in parallel** and
    /// concatenate the rows in partition order (a scatter-gather read;
    /// aggregation across partitions is the caller's job, as in any
    /// shared-nothing system).
    pub fn query_all(&self, sql: &str, params: &[Value]) -> Result<Vec<Row>> {
        let mut replies = Vec::with_capacity(self.workers.len());
        for worker in &self.workers {
            let (tx, rx) = mpsc::channel();
            worker.send(WorkerMsg::Query {
                sql: sql.to_string(),
                params: params.to_vec(),
                reply: tx,
            })?;
            replies.push((worker.id, rx));
        }
        let mut out = Vec::new();
        for (id, rx) in replies {
            let rows = rx
                .recv()
                .map_err(|_| Error::Internal(format!("partition worker {id} disconnected")))??;
            out.extend(rows);
        }
        Ok(out)
    }

    /// Advance every partition's logical clock in lockstep. The advance
    /// is queued FIFO like any other job, so it lands at a deterministic
    /// point relative to this caller's submissions.
    pub fn advance_clock(&self, micros: i64) -> Result<()> {
        for worker in &self.workers {
            worker.send(WorkerMsg::AdvanceClock(micros))?;
        }
        Ok(())
    }

    /// Block until the cross-partition dataflow is quiescent: every
    /// queued job processed, no edge forwards in flight anywhere (hub or
    /// worker queues), and every edge ack delivered. Call before reading
    /// cross-edge results or shutting down cleanly.
    pub fn quiesce(&self) -> Result<()> {
        loop {
            self.barrier()?;
            if self.in_flight.load(Ordering::SeqCst) == 0 {
                // Forwards enqueued before the barrier are processed; a
                // second barrier flushes the edge acks those sent.
                self.barrier()?;
                if self.in_flight.load(Ordering::SeqCst) == 0 {
                    return Ok(());
                }
            }
            std::thread::yield_now();
        }
    }

    /// Enqueue a no-op on every worker and wait for all of them — every
    /// job queued before the barrier has been processed when it returns.
    fn barrier(&self) -> Result<()> {
        let mut replies = Vec::with_capacity(self.workers.len());
        for worker in &self.workers {
            let (tx, rx) = mpsc::channel::<()>();
            worker.send(WorkerMsg::Exec(Box::new(move |_db| {
                let _ = tx.send(());
            })))?;
            replies.push((worker.id, rx));
        }
        for (id, rx) in replies {
            rx.recv()
                .map_err(|_| Error::Internal(format!("partition worker {id} disconnected")))?;
        }
        Ok(())
    }

    /// Capture per-partition counters. The capture jobs are enqueued on
    /// every worker first and then collected, so the wait is bounded by
    /// the slowest single worker (like [`Cluster::query_all`]), and each
    /// capture reflects everything queued on its partition before it.
    pub fn metrics(&self) -> ClusterMetrics {
        let mut replies = Vec::with_capacity(self.workers.len());
        for worker in &self.workers {
            let (tx, rx) = mpsc::channel();
            worker
                .send(WorkerMsg::Exec(Box::new(move |db| {
                    let _ = tx.send(PartitionMetrics::capture(db));
                })))
                .expect("partition worker disconnected");
            replies.push(rx);
        }
        ClusterMetrics {
            partitions: replies
                .into_iter()
                .map(|rx| rx.recv().expect("partition worker dropped reply"))
                .collect(),
            rows: sstore_common::RowMetrics::snapshot(),
            coordinator: self.coordinator_stats(),
        }
    }

    /// Sum of committed TEs across partitions.
    pub fn total_committed(&self) -> u64 {
        self.metrics().total_committed()
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        // Best-effort quiesce so in-flight cross-edge work lands before
        // the hub goes away (bounded; a wedged worker must not hang the
        // drop — recovery covers whatever is left).
        for _ in 0..64 {
            if self.barrier().is_err() {
                break;
            }
            if self.in_flight.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::yield_now();
        }
        // The hub holds clones of every worker sender, so it must exit
        // before closing the queues can stop the workers.
        if let Some(tx) = self.hub_tx.take() {
            let _ = tx.send(HubMsg::Shutdown);
        }
        if let Some(h) = self.hub_handle.take() {
            let _ = h.join();
        }
        // Closing the queues lets each worker finish everything already
        // enqueued, then exit.
        for w in &mut self.workers {
            w.tx = None;
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// `SSTORE_SPECULATION=off` (or `0`) disables early-prepare speculation,
/// restoring the strict defer-everything 2PC wait for A/B comparison.
fn speculation_enabled() -> bool {
    !matches!(
        std::env::var("SSTORE_SPECULATION").as_deref(),
        Ok("off") | Ok("OFF") | Ok("0")
    )
}

/// Push every outbox envelope to the hub. Counted into `in_flight`
/// *before* the send so quiesce can never observe a gap.
fn flush_outbox(
    db: &mut SStore,
    id: PartitionId,
    hub: &mpsc::Sender<HubMsg>,
    in_flight: &AtomicI64,
) {
    for fwd in db.take_outbox() {
        in_flight.fetch_add(1, Ordering::SeqCst);
        if hub.send(HubMsg::Forward { src: id, fwd }).is_err() {
            // Hub already gone (shutdown): the batch stays unacked and
            // replays at the next recovery.
            in_flight.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// The partition worker: drain the ingest queue in FIFO order until the
/// cluster handle drops. Consecutive queued submissions for the same
/// procedure are coalesced into one PE scheduler pass
/// ([`sstore_txn::Partition::submit_batch_group`]) — per-submission order
/// is preserved, so the final state is byte-for-byte what one-at-a-time
/// execution would produce, minus the per-submission boundary overhead.
///
/// 2PC discipline: after voting on a [`WorkerMsg::Prepare`], the worker
/// pulls messages looking only for the matching [`WorkerMsg::Decide`],
/// deferring everything else (order preserved) — the prepared fragment's
/// uncommitted writes must not be observed by other TEs.
fn worker_loop(
    id: PartitionId,
    mut db: SStore,
    rx: mpsc::Receiver<WorkerMsg>,
    hub: mpsc::Sender<HubMsg>,
    in_flight: Arc<AtomicI64>,
) {
    // Jobs pulled off the queue but not yet run (coalescing lookahead and
    // 2PC deferral both park messages here; front = oldest).
    let mut pending: VecDeque<WorkerMsg> = VecDeque::new();
    let mut disconnected = false;
    // A recovered partition may come up with re-forwards already queued.
    flush_outbox(&mut db, id, &hub, &in_flight);
    loop {
        let msg = match pending.pop_front() {
            Some(m) => m,
            None if disconnected => break,
            None => match rx.recv() {
                Ok(m) => m,
                Err(_) => break, // cluster dropped; queue fully drained
            },
        };
        match msg {
            WorkerMsg::Ingest { proc, rows, reply } => {
                let mut group = vec![(rows, reply)];
                // Opportunistically coalesce same-procedure submissions
                // already waiting. A message for a different procedure
                // (or kind) stays parked so FIFO order holds.
                loop {
                    if pending.is_empty() {
                        match rx.try_recv() {
                            Ok(m) => pending.push_back(m),
                            Err(_) => break,
                        }
                    }
                    match pending.front() {
                        Some(WorkerMsg::Ingest { proc: p, .. }) if *p == proc => {
                            let Some(WorkerMsg::Ingest { rows, reply, .. }) = pending.pop_front()
                            else {
                                unreachable!("front was a matching Ingest");
                            };
                            group.push((rows, reply));
                        }
                        _ => break,
                    }
                }
                if group.len() == 1 {
                    let (rows, reply) = group.pop().expect("one submission");
                    let _ = reply.send(db.submit_batch(&proc, rows));
                } else {
                    let (batches, replies): (Vec<_>, Vec<_>) = group.into_iter().unzip();
                    match db.submit_batch_group(&proc, batches) {
                        // Per-submission results: a batch that committed
                        // resolves Ok even when a later group member
                        // failed to enqueue — the same answer it would
                        // have gotten uncoalesced.
                        Ok(results) => {
                            for (reply, result) in replies.into_iter().zip(results) {
                                let _ = reply.send(result);
                            }
                        }
                        Err(e) => {
                            for reply in replies {
                                let _ = reply.send(Err(e.clone()));
                            }
                        }
                    }
                }
            }
            WorkerMsg::Query { sql, params, reply } => {
                let _ = reply.send(db.query(&sql, &params).map(|r| r.rows));
            }
            WorkerMsg::Exec(f) => f(&mut db),
            WorkerMsg::AdvanceClock(micros) => {
                db.advance_clock(micros);
            }
            WorkerMsg::Prepare {
                gtid,
                proc,
                rows,
                vote,
                reply,
            } => {
                let prepared = db.prepare_fragment(gtid, &proc, rows);
                let vote_err = prepared.as_ref().err().cloned();
                let _ = vote.send(prepared.map(|_| ()));
                // Block for the decision, deferring everything else —
                // except, while nothing is deferred yet, single-partition
                // submissions provably disjoint from the prepared
                // fragment's workflow closure: those execute immediately
                // (early-prepare speculation). Once anything defers, all
                // later messages defer too, preserving FIFO order.
                let speculate = vote_err.is_none() && speculation_enabled();
                let mut deferred: Vec<WorkerMsg> = Vec::new();
                let decision = loop {
                    let next = match pending.pop_front() {
                        Some(m) => Some(m),
                        None => rx.recv().ok(),
                    };
                    match next {
                        Some(WorkerMsg::Decide { gtid: g, commit }) if g == gtid => {
                            break Some(commit)
                        }
                        Some(WorkerMsg::Ingest {
                            proc: sp,
                            rows,
                            reply,
                        }) if speculate && deferred.is_empty() && db.speculation_safe(&sp) => {
                            let _ = reply.send(db.submit_batch_speculative(&sp, rows));
                            // Speculative emissions onto cross-partition
                            // edges must not wait out the 2PC round.
                            flush_outbox(&mut db, id, &hub, &in_flight);
                        }
                        Some(other) => deferred.push(other),
                        None => break None, // cluster dropped mid-2PC
                    }
                };
                for m in deferred.into_iter().rev() {
                    pending.push_front(m);
                }
                match decision {
                    Some(commit) => {
                        let out = match vote_err {
                            // Voted no: the fragment is already rolled
                            // back and locally decided; surface the
                            // original error to the ticket.
                            Some(e) => Err(e),
                            None => db.decide_fragment(gtid, commit),
                        };
                        let _ = reply.send(out);
                    }
                    None => {
                        // No decision will ever come (shutdown): abort —
                        // identical to the crash story, where recovery
                        // presumes abort for the in-doubt fragment.
                        if vote_err.is_none() {
                            let _ = db.decide_fragment(gtid, false);
                        }
                        disconnected = true;
                    }
                }
            }
            WorkerMsg::Decide { gtid, commit } => {
                // A decision with no held fragment: the participant voted
                // no and already resolved locally (or a stale retry).
                if db.prepared_gtid() == Some(gtid) {
                    let _ = db.decide_fragment(gtid, commit);
                }
            }
            WorkerMsg::Forward {
                stream,
                src,
                src_batch,
                rows,
            } => {
                let ok = match db.accept_forward(&stream, src.raw(), src_batch.raw(), rows) {
                    Ok(Some(_)) => {
                        if let Err(e) = db.run_queued() {
                            eprintln!(
                                "sstore: partition {id}: forwarded batch on `{stream}` \
                                 failed to execute: {e}"
                            );
                        }
                        true
                    }
                    Ok(None) => true, // duplicate: already durable here
                    Err(e) => {
                        eprintln!(
                            "sstore: partition {id}: could not log forward on `{stream}`: {e}"
                        );
                        false
                    }
                };
                let _ = hub.send(HubMsg::Logged {
                    src,
                    src_batch,
                    stream,
                    ok,
                });
            }
            WorkerMsg::EdgeAck { batch } => {
                if let Err(e) = db.edge_acked(batch) {
                    eprintln!("sstore: partition {id}: edge ack for {batch} failed: {e}");
                }
            }
        }
        // Any of the above may have emitted onto a cross-partition edge
        // (Ingest and Decide through PE triggers, Exec through test
        // closures, Forward through cascading workflows).
        flush_outbox(&mut db, id, &hub, &in_flight);
    }
}

/// The forward hub: the router thread carrying cross-partition workflow
/// edges. Workers push envelopes on an unbounded channel (never
/// blocking); the hub shards each envelope by its edge's key column and
/// delivers the shards to the receiving workers' bounded queues — the
/// hub is the only thread that blocks on worker queues, so edge cycles
/// between partitions cannot deadlock. When every shard of an envelope
/// is durably logged at its receiver, the hub sends the emitting worker
/// an edge ack, releasing that batch's upstream backup.
fn hub_loop(
    rx: mpsc::Receiver<HubMsg>,
    workers: Vec<mpsc::SyncSender<WorkerMsg>>,
    partitions: usize,
    in_flight: Arc<AtomicI64>,
) {
    // Outstanding shard counts (and health) per edge instance.
    let mut pending_acks: HashMap<(u32, u64, String), (usize, bool)> = HashMap::new();
    // One router per edge key column, built on first use — the hot
    // forward path must not re-validate a Router per envelope.
    let mut routers: HashMap<usize, Router> = HashMap::new();
    let mut shutting_down = false;
    loop {
        let msg = if shutting_down {
            match rx.try_recv() {
                Ok(m) => m,
                Err(_) => break, // queue drained; exit
            }
        } else {
            match rx.recv() {
                Ok(m) => m,
                Err(_) => break,
            }
        };
        match msg {
            HubMsg::Forward { src, fwd } => {
                // Edges route by hash over the edge's own key column.
                // (The ingest route's range bounds apply to the ingest
                // key's value domain, which a re-keyed edge need not
                // share — hash placement is total over any key.)
                let router = routers.entry(fwd.key_col).or_insert_with(|| {
                    Router::new(RouteSpec::hash(fwd.key_col), partitions)
                        .expect("partition count validated at build")
                });
                match router.shard(fwd.rows) {
                    Ok(shards) => {
                        let k = shards.iter().filter(|s| !s.is_empty()).count();
                        if k == 0 {
                            // An empty envelope (cannot normally happen):
                            // nothing to deliver, release the sender.
                            let _ = workers[src.raw() as usize]
                                .send(WorkerMsg::EdgeAck { batch: fwd.batch });
                        } else {
                            pending_acks.insert(
                                (src.raw(), fwd.batch.raw(), fwd.stream.clone()),
                                (k, true),
                            );
                            in_flight.fetch_add(k as i64, Ordering::SeqCst);
                            for (i, shard) in shards.into_iter().enumerate() {
                                if shard.is_empty() {
                                    continue;
                                }
                                let _ = workers[i].send(WorkerMsg::Forward {
                                    stream: fwd.stream.clone(),
                                    src,
                                    src_batch: fwd.batch,
                                    rows: shard,
                                });
                            }
                        }
                    }
                    Err(e) => {
                        // Unroutable rows (e.g. NULL edge key): the edge
                        // ack is withheld, so the emitting batch stays
                        // replayable — loudly, not silently.
                        eprintln!(
                            "sstore: cross-edge `{}` from partition {} unroutable: {e}",
                            fwd.stream, src
                        );
                    }
                }
                in_flight.fetch_sub(1, Ordering::SeqCst);
            }
            HubMsg::Logged {
                src,
                src_batch,
                stream,
                ok,
            } => {
                let key = (src.raw(), src_batch.raw(), stream);
                if let Some((remaining, all_ok)) = pending_acks.get_mut(&key) {
                    *remaining -= 1;
                    *all_ok &= ok;
                    if *remaining == 0 {
                        let healthy = *all_ok;
                        pending_acks.remove(&key);
                        if healthy {
                            let _ = workers[src.raw() as usize]
                                .send(WorkerMsg::EdgeAck { batch: src_batch });
                        }
                        // A failed shard withholds the ack: the emitting
                        // batch stays unacked and replays at recovery.
                    }
                }
                in_flight.fetch_sub(1, Ordering::SeqCst);
            }
            HubMsg::Shutdown => {
                shutting_down = true;
            }
        }
    }
    // Dropping `workers` here releases the last sender clones so the
    // worker queues can actually close.
}
