//! Persistent shared-nothing partition runtime.
//!
//! H-Store — and therefore S-Store — is "designed for shared-nothing
//! clusters": the database is partitioned so that most transactions run
//! **single-sited**, serially, on the partition owning their data (paper
//! §2, citing Pavlo et al. (ref. 8) for partition design). [`Cluster`]
//! realizes that shape as a *runtime*, not a per-call simulation:
//!
//! * **N long-lived worker threads**, one per partition, mirroring
//!   H-Store's one-execution-site-per-core layout. Each worker *owns* its
//!   [`SStore`] outright (shared-nothing: no locks, no shared state) and
//!   drains a bounded ingest queue in FIFO order — per-partition
//!   submission order is execution order, which keeps parallel runs
//!   deterministic.
//! * **Routed ingest** via [`Router`]: a declared partition-key column
//!   with hash or explicit range placement splits each border batch into
//!   per-partition shards. `NULL` keys are rejected, never silently
//!   hashed.
//! * **Async submission**: [`Cluster::submit_batch_async`] enqueues shards
//!   and returns a [`Ticket`] that later resolves to per-TE outcomes;
//!   [`Cluster::submit_batch_partitioned`] is the blocking wrapper
//!   preserving the original API. While a ticket is in flight the worker
//!   may **coalesce** queued batches for the same procedure into one
//!   scheduler pass ([`sstore_txn::Partition::submit_batch_group`]),
//!   cutting per-submission PE-boundary overhead exactly where the paper
//!   claims EE/PE round-trip savings.
//! * **Scatter-gather reads**: [`Cluster::query_all`] fans a read-only
//!   query out to every worker in parallel and concatenates rows in
//!   partition order (cross-partition aggregation stays the caller's job,
//!   as in any shared-nothing system).
//!
//! # Supervision and admission control
//!
//! Each worker thread is **supervised**: the drain loop runs under
//! `catch_unwind`, so a panic inside a procedure, a test closure, or an
//! injected fault does not silently wedge the partition. The supervisor
//! transitions the partition through [`PartitionHealth`] states —
//! `Healthy → Restarting → Healthy` when it can re-run log + snapshot
//! recovery and re-attach the *same* ingest queue (exactly-once is
//! preserved by the durable dedupe state: border records replay, edge
//! forwards dedupe by high-water mark, 2PC fragments resolve against the
//! coordinator's decision log), or `→ Down` when the partition is
//! non-durable, recovery fails, or the restart budget
//! (`SSTORE_MAX_WORKER_RESTARTS`, default 3) is spent. A down partition
//! resolves everything queued or subsequently sent with typed
//! [`Error::PartitionDown`] — clients never panic and never hang.
//!
//! In-flight work at the moment of the crash resolves by **provable
//! fate**: submissions the worker had not started are retryable
//! (`PartitionDown` while restarting); submissions that may already have
//! reached the command log resolve as non-retryable [`Error::Io`] — the
//! record replays at recovery, so a blind client resubmit would double
//! the batch ([`Error::is_retryable`] encodes exactly this split).
//!
//! Admission control is the other half of overload hardening:
//! [`Cluster::try_submit_batch_async`] refuses (rather than blocks) when
//! a target ingest queue is full, shedding with retryable
//! [`Error::Overloaded`] *before* anything is enqueued — the
//! all-or-nothing reservation ([`crate::ingest::IngestQueue::try_send_all`])
//! guarantees a shed batch landed nowhere. [`crate::RetryPolicy`] is the
//! matching client loop (exponential backoff, deterministic jitter).
//!
//! # Cross-partition transactions (2PC)
//!
//! A border submission of a procedure declared `multi_partition` whose
//! rows route to more than one partition runs as **one global
//! transaction** under two-phase commit ([`crate::coordinator`]):
//!
//! 1. the coordinator fragments the batch and sends `WorkerMsg::Prepare`
//!    down each involved partition's ingest queue;
//! 2. each participant logs the fragment (fsync), executes it with the
//!    **undo log held open**, and votes;
//! 3. the coordinator makes the decision durable (`coord.log` — the
//!    commit point) and sends `WorkerMsg::Decide`;
//! 4. participants commit (dropping the undo, firing PE triggers) or
//!    roll back, and resolve the [`Ticket`].
//!
//! Between its vote and the decision a worker **defers** every other
//! queued job — the fragment's uncommitted writes are in storage, and
//! serial execution is what makes the rollback sound. Two fast paths
//! relax the protocol without weakening it:
//!
//! * **Presumed abort** — abort decisions are never logged; recovery
//!   reads a gtid's absence from `coord.log` as abort, so the abort
//!   round skips the coordinator fsync entirely.
//! * **Early-prepare speculation** — while the prepared fragment waits
//!   for its decision, queued single-partition submissions whose
//!   transitive workflow closure is provably disjoint from the
//!   fragment's keep executing (`SSTORE_SPECULATION=off` disables;
//!   see [`sstore_txn::Partition::speculation_safe`]).
//!
//! A worker that dies *between its yes-vote and the decision* must not
//! lose the decision: its supervisor drains the queue for the matching
//! `Decide` (the coordinator always sends phase 2 once it collected the
//! vote) and folds it into the recovery decision map, so the restarted
//! partition resolves the in-doubt fragment exactly as the coordinator
//! did.
//!
//! A submission whose rows all land on one partition skips all of this:
//! the coordinator detects it and takes the PR 2 ingest path
//! byte-for-byte (the single-partition fast path).
//!
//! Recovery rebuilds the partitions **in parallel** — each replays its
//! own `p{i}` log on a scoped thread against the shared decision map —
//! and only wires the workers (whose startup re-forwards unacked edge
//! envelopes) once every partition is up. `SSTORE_RECOVERY=serial`
//! forces the sequential loop for A/B measurement (benchmark E13).
//!
//! # Cross-partition workflow edges
//!
//! A stream declared a cross-partition edge ([`Cluster::with_edges`])
//! carries tuples from a committing TE on one partition to the consuming
//! procedures on the partitions owning the downstream keys: the emitting
//! worker buffers an envelope, the **forward hub** (a dedicated router
//! thread) shards it by the edge's key column, and each receiving worker
//! logs the forward durably (dedup'd by per-edge high-water mark) before
//! executing it — ordered, exactly-once dataflow across partitions. The
//! emitting batch's input record stays replayable (unacked) until every
//! receiver has logged its shard: upstream backup spans the edge.
//! Workers never block on the hub (its queue is unbounded), and the hub
//! is the only thread that blocks on worker queues, so forward storms
//! cannot deadlock the worker set. An edge instance that permanently
//! fails delivery (a receiver down, an unroutable key, a failed forward
//! log write) withholds its ack and counts an **edge failure**;
//! [`Cluster::quiesce`] reports those instead of pretending the dataflow
//! settled — the unacked batches replay at the next recovery.

use crate::builder::SStoreBuilder;
use crate::coordinator::{CoordState, CoordStats, Coordinator, CoordinatorLog};
use crate::ingest::{IngestQueue, SendError, TrySendError};
use crate::metrics::{ClusterMetrics, PartitionMetrics};
use crate::router::{RouteSpec, Router, Ticket};
use crate::SStore;
use sstore_common::obs::{self, Stage, TraceCtx};
use sstore_common::{fault, slog, BatchId, Error, PartitionId, Result, Row, Value};
use sstore_txn::recovery::recover_with_decisions;
use sstore_txn::TxnOutcome;
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// Default bound of each worker's ingest queue, in queued submissions.
/// A full queue applies backpressure: `submit_batch_async` blocks until
/// the worker drains a slot ([`Cluster::try_submit_batch_async`] sheds
/// instead).
pub const DEFAULT_INGEST_QUEUE_DEPTH: usize = 256;

/// Supervision state of one partition worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PartitionHealth {
    /// The worker is draining its queue normally. Encoded as 0 in the
    /// shared health cells (variant order is the encoding).
    Healthy,
    /// The worker died and its supervisor is re-running log + snapshot
    /// recovery; queued work waits (sends still succeed) and resolves
    /// once the partition is back. Encoded as 1.
    Restarting,
    /// The partition is permanently down (non-durable, recovery failed,
    /// or the restart budget is spent). All queued and future work
    /// resolves with [`Error::PartitionDown`]. Encoded as 2.
    Down,
}

/// Cluster-wide supervision state shared by the handle, the workers'
/// supervisors, and the forward hub.
struct ClusterShared {
    /// Per-partition [`PartitionHealth`] discriminants.
    health: Vec<AtomicU8>,
    /// Supervised worker restarts, cluster lifetime.
    restarts: AtomicU64,
    /// Submissions refused by admission control, cluster lifetime.
    sheds: AtomicU64,
    /// Edge instances whose ack was permanently withheld (failed forward
    /// log write, receiver down, unroutable rows). Non-zero means the
    /// cross-partition dataflow cannot quiesce: the unacked batches
    /// replay at the next recovery.
    edge_failures: AtomicU64,
    /// False once the hub thread exited (normally only at shutdown).
    hub_alive: AtomicBool,
}

impl ClusterShared {
    fn new(n: usize) -> ClusterShared {
        ClusterShared {
            health: (0..n).map(|_| AtomicU8::new(0)).collect(),
            restarts: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
            edge_failures: AtomicU64::new(0),
            hub_alive: AtomicBool::new(true),
        }
    }

    fn health_of(&self, i: usize) -> PartitionHealth {
        match self.health[i].load(Ordering::SeqCst) {
            0 => PartitionHealth::Healthy,
            1 => PartitionHealth::Restarting,
            _ => PartitionHealth::Down,
        }
    }

    fn set_health(&self, id: PartitionId, h: PartitionHealth) {
        self.health[id.raw() as usize].store(h as u8, Ordering::SeqCst);
    }
}

/// One message on a partition worker's ingest queue.
enum WorkerMsg {
    /// A border-batch shard for this partition.
    Ingest {
        proc: String,
        rows: Vec<Row>,
        reply: ReplyTx,
        /// Dataflow trace minted at submission (None when tracing is off).
        trace: Option<TraceCtx>,
    },
    /// One leg of a scatter-gather read-only query.
    Query {
        sql: String,
        params: Vec<Value>,
        reply: mpsc::Sender<Result<Vec<Row>>>,
    },
    /// Arbitrary code against the owned partition (stats, snapshots,
    /// tests). The closure captures its own reply channel.
    Exec(Box<dyn FnOnce(&mut SStore) + Send>),
    /// Advance the partition's logical clock.
    AdvanceClock(i64),
    /// 2PC phase 1: prepare a fragment of global transaction `gtid`.
    /// The worker votes on `vote`, then blocks (deferring other queued
    /// jobs) until the matching [`WorkerMsg::Decide`] arrives, and
    /// finally resolves `reply` with the fragment's outcomes.
    Prepare {
        gtid: u64,
        proc: String,
        rows: Vec<Row>,
        vote: mpsc::Sender<Result<()>>,
        reply: ReplyTx,
        /// Dataflow trace minted at submission (None when tracing is off).
        trace: Option<TraceCtx>,
    },
    /// 2PC phase 2: the coordinator's durable decision for `gtid`.
    Decide { gtid: u64, commit: bool },
    /// A shard of a cross-partition workflow edge, delivered by the hub.
    Forward {
        stream: String,
        src: PartitionId,
        src_batch: BatchId,
        rows: Vec<Row>,
        /// The emitting batch's trace, carried across the edge so a
        /// multi-hop dataflow keeps one end-to-end trace id.
        trace: Option<TraceCtx>,
    },
    /// Every receiver of `batch`'s edge forwards has durably logged its
    /// shard: release the emitting batch's upstream backup.
    EdgeAck { batch: BatchId },
}

/// Messages to the forward hub (the cross-edge router thread).
enum HubMsg {
    /// An emitted batch bound for the partitions owning its keys.
    Forward {
        src: PartitionId,
        fwd: sstore_txn::RemoteForward,
    },
    /// A receiver durably logged (or deduplicated) its shard of the
    /// identified edge instance. `ok = false` means the log write failed
    /// (or the receiver died holding the shard): the edge ack is
    /// withheld so the emitting batch stays replayable.
    Logged {
        src: PartitionId,
        src_batch: BatchId,
        stream: String,
        ok: bool,
    },
    /// Cluster shutdown: drain what is queued, then exit.
    Shutdown,
}

type ReplyTx = mpsc::Sender<Result<Vec<TxnOutcome>>>;

/// Handle to one partition worker: its supervised thread plus the
/// ingest queue, whose lifetime is independent of the thread so a
/// restarted worker resumes the same backlog.
struct Worker {
    id: PartitionId,
    queue: IngestQueue<WorkerMsg>,
    handle: Option<JoinHandle<()>>,
}

impl Worker {
    fn send(&self, msg: WorkerMsg) -> Result<()> {
        self.queue.send(msg).map_err(|e| match e {
            SendError::Closed => Error::Internal(format!("partition {} is shut down", self.id)),
            SendError::Down => Error::PartitionDown(format!("partition {} is down", self.id)),
        })
    }
}

/// The deterministic redeployment closure every worker's supervisor
/// re-runs to restart a crashed partition.
type SetupFn = Arc<dyn Fn(&mut SStore) -> Result<()> + Send + Sync>;

/// Everything a worker's supervisor needs to run — and re-run — the
/// drain loop: the partition's own site builder (durability already
/// redirected to its `p{i}` dir), the deterministic redeployment
/// closure, and the shared cluster plumbing.
struct WorkerCtx {
    id: PartitionId,
    builder: SStoreBuilder,
    setup: SetupFn,
    coord_dir: Option<PathBuf>,
    queue: IngestQueue<WorkerMsg>,
    hub: mpsc::Sender<HubMsg>,
    in_flight: Arc<AtomicI64>,
    shared: Arc<ClusterShared>,
}

/// Crash bookkeeping the worker maintains *outside* `catch_unwind`, so
/// its supervisor can resolve in-flight work with the right error after
/// a panic instead of silently dropping reply channels.
#[derive(Default)]
struct CrashCtx {
    /// Reply channels of the submissions currently executing. Resolved
    /// by the supervisor: retryable [`Error::PartitionDown`] when the
    /// crash provably preceded execution (`uncertain == false`),
    /// non-retryable [`Error::Io`] otherwise (the border record may be
    /// durable and would replay — a blind resubmit would double it).
    ingest_replies: Vec<ReplyTx>,
    /// True from just before the submit call (which writes the border
    /// record) until its result is in hand.
    uncertain: bool,
    /// The edge shard being logged right now: the supervisor reports it
    /// failed (`Logged { ok: false }`) so the hub's ack bookkeeping
    /// never leaks an envelope.
    in_flight_forward: Option<(PartitionId, BatchId, String)>,
    /// Set between a yes-vote and the coordinator's decision. On a crash
    /// inside that window the supervisor fails the reply (in-doubt:
    /// non-retryable), then drains the queue for the decision and folds
    /// it into restart recovery.
    awaiting_decision: Option<(u64, ReplyTx)>,
    /// Messages deferred during a 2PC decision wait; survives a crash in
    /// that window so no queued work is lost.
    deferred: Vec<WorkerMsg>,
}

/// A shared-nothing group of identically-deployed partitions, each run by
/// a supervised worker thread, plus the cross-partition machinery: the
/// 2PC coordinator and the forward hub (see module docs).
pub struct Cluster {
    workers: Vec<Worker>,
    router: Router,
    hub_tx: Option<mpsc::Sender<HubMsg>>,
    hub_handle: Option<JoinHandle<()>>,
    /// Outstanding cross-edge work units (envelopes + delivered shards);
    /// zero ⇔ the dataflow between partitions is quiescent.
    in_flight: Arc<AtomicI64>,
    shared: Arc<ClusterShared>,
    coordinator: Mutex<Coordinator>,
    /// Procedures declared `multi_partition` (identical on every
    /// partition; captured from partition 0 at build).
    multi_partition_procs: HashSet<String>,
    /// Stage-histogram snapshots, the next trace id, and the wall clock
    /// at construction time: [`Cluster::observability_report`] subtracts
    /// this baseline so a report covers only this cluster's traffic even
    /// when several clusters share the process (tests, benches).
    pub(crate) obs_baseline: crate::obs_report::ObsBaseline,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("partitions", &self.workers.len())
            .field("router", &self.router)
            .field("health", &self.health())
            .field("multi_partition_procs", &self.multi_partition_procs)
            .finish()
    }
}

impl Cluster {
    /// Build `n` partitions from one builder with the default routing
    /// (hash over column 0) and queue depth. See [`Cluster::with_config`].
    pub fn new(
        n: usize,
        builder: &SStoreBuilder,
        deploy: impl Fn(&mut SStore) -> Result<()> + Send + Sync + 'static,
    ) -> Result<Cluster> {
        Cluster::with_config(
            n,
            RouteSpec::hash(0),
            DEFAULT_INGEST_QUEUE_DEPTH,
            builder,
            deploy,
        )
    }

    /// Build `n` partitions from one builder, running the same `deploy`
    /// (DDL + procedure registration + seeding) on each — deterministic
    /// redeployment, exactly like the recovery contract. Each partition
    /// gets its own [`PartitionId`] (threaded into its stats) and, when
    /// durability is configured, its own `p{i}` subdirectory of the
    /// builder's log dir. The partitions are then moved onto long-lived
    /// worker threads owning them until the cluster drops. `deploy` is
    /// retained for the cluster's lifetime: a worker's supervisor re-runs
    /// it when restarting a crashed partition.
    pub fn with_config(
        n: usize,
        route: RouteSpec,
        queue_depth: usize,
        builder: &SStoreBuilder,
        deploy: impl Fn(&mut SStore) -> Result<()> + Send + Sync + 'static,
    ) -> Result<Cluster> {
        Cluster::build(n, route, queue_depth, builder, deploy, &[], false)
    }

    /// [`Cluster::with_config`] plus cross-partition workflow edge
    /// declarations: each `(stream, key_col)` pair is declared on every
    /// partition right after `deploy` runs, so emissions onto those
    /// streams route through the forward hub from the first batch.
    pub fn with_edges(
        n: usize,
        route: RouteSpec,
        queue_depth: usize,
        builder: &SStoreBuilder,
        deploy: impl Fn(&mut SStore) -> Result<()> + Send + Sync + 'static,
        edges: &[(&str, usize)],
    ) -> Result<Cluster> {
        Cluster::build(n, route, queue_depth, builder, deploy, edges, false)
    }

    /// Rebuild a cluster from its durable state: reads the coordinator's
    /// decision log, then recovers every partition from its `p{i}` dir —
    /// resolving prepared-but-undecided 2PC fragments against the
    /// coordinator's decisions (in-doubt fragments abort) — and finally
    /// re-forwards any unacknowledged cross-edge batches (receivers
    /// deduplicate by high-water mark, so the re-send is exactly-once).
    /// `deploy` and `edges` must match the pre-crash topology.
    pub fn recover(
        n: usize,
        route: RouteSpec,
        queue_depth: usize,
        builder: &SStoreBuilder,
        deploy: impl Fn(&mut SStore) -> Result<()> + Send + Sync + 'static,
        edges: &[(&str, usize)],
    ) -> Result<Cluster> {
        Cluster::build(n, route, queue_depth, builder, deploy, edges, true)
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        n: usize,
        route: RouteSpec,
        queue_depth: usize,
        builder: &SStoreBuilder,
        deploy: impl Fn(&mut SStore) -> Result<()> + Send + Sync + 'static,
        edges: &[(&str, usize)],
        recover: bool,
    ) -> Result<Cluster> {
        if n == 0 {
            return Err(Error::Schedule(
                "a cluster needs at least 1 partition".into(),
            ));
        }
        let router = Router::new(route, n)?;
        let depth = queue_depth.max(1);

        // Coordinator durability rides the builder's log dir (the
        // partitions use `p{i}` subdirectories of it). The decision log
        // is read on EVERY durable build — not just recovery — because
        // the gtid sequence must never restart: a reused gtid whose old
        // incarnation aborted in doubt would be retroactively committed
        // by a later commit record on the next recovery.
        let coord_dir = builder.config().log.as_ref().map(|l| l.dir.clone());
        let coord_state = match &coord_dir {
            Some(dir) => CoordinatorLog::read(dir)?,
            None => CoordState {
                next_gtid: 1,
                ..CoordState::default()
            },
        };
        let decisions = if recover {
            coord_state.decisions
        } else {
            HashMap::new()
        };
        let mut next_gtid = coord_state.next_gtid;

        // Build (or recover) the partitions first, then wire the threads.
        // The decisions map is read once above and shared; each partition
        // replays only its own `p{i}` log, so recovery parallelizes
        // cleanly across scoped threads. Unacked edge envelopes are only
        // re-forwarded later, by the workers' startup `flush_outbox` —
        // i.e. after every partition is up and able to receive.
        //
        // The setup closure is `Arc`'d (not borrowed) because it outlives
        // this call: each worker's supervisor re-runs it to restart a
        // crashed partition.
        let edges_owned: Vec<(String, usize)> =
            edges.iter().map(|&(s, k)| (s.to_string(), k)).collect();
        let setup: SetupFn = Arc::new(move |p: &mut SStore| {
            deploy(p)?;
            for (stream, key_col) in &edges_owned {
                p.declare_cross_edge(stream, *key_col)?;
            }
            Ok(())
        });
        let site_builder = |i: usize| -> SStoreBuilder {
            let mut b = builder.clone().partition_id(PartitionId::new(i as u32));
            if let Some(log) = b.config().log.clone() {
                // Shared-nothing durability too: one log dir per site.
                b = b.durability(log.dir.join(format!("p{i}")), log.group_commit_n);
            }
            b
        };
        let build_one = |b: SStoreBuilder| -> Result<SStore> {
            if recover && b.config().log.is_some() {
                recover_with_decisions(b.config().clone(), |p| setup(p), &decisions)
            } else {
                let mut p = b.build()?;
                setup(&mut p)?;
                Ok(p)
            }
        };
        let parallel = recover
            && n > 1
            && !matches!(std::env::var("SSTORE_RECOVERY").as_deref(), Ok("serial"));
        let partitions: Vec<SStore> = if parallel {
            obs::timed_phase("recovery.parallel_join", || {
                std::thread::scope(|s| {
                    let handles: Vec<_> = (0..n)
                        .map(|i| {
                            let b = site_builder(i);
                            let build_one = &build_one;
                            s.spawn(move || build_one(b))
                        })
                        .collect();
                    // Join every handle before surfacing the first error: a
                    // short-circuiting collect would leave panicked threads
                    // for the scope to auto-join, and the scope re-panics on
                    // those. A panicking replay (corrupt state tripping an
                    // assertion, an injected fault) must instead surface as
                    // a clean recovery error.
                    let joined: Vec<Result<SStore>> = handles
                        .into_iter()
                        .enumerate()
                        .map(|(i, h)| {
                            h.join().unwrap_or_else(|_| {
                                Err(Error::Recovery(format!(
                                    "partition {i} panicked during parallel recovery"
                                )))
                            })
                        })
                        .collect();
                    joined.into_iter().collect::<Result<Vec<_>>>()
                })
            })?
        } else {
            (0..n)
                .map(|i| build_one(site_builder(i)))
                .collect::<Result<Vec<_>>>()?
        };
        let mut multi_partition_procs = HashSet::new();
        for (i, p) in partitions.iter().enumerate() {
            if i == 0 {
                multi_partition_procs = p.multi_partition_procs().into_iter().collect();
            }
            // A partition may have prepared gtids the coordinator never
            // decided (in-doubt at the crash): sequence past those too.
            next_gtid = next_gtid.max(p.max_gtid_seen() + 1);
        }
        let coord_log = match &coord_dir {
            Some(dir) => Some(CoordinatorLog::open(dir)?),
            None => None,
        };
        let coordinator = Mutex::new(Coordinator::new(coord_log, next_gtid));

        // Worker queues, then the hub (it holds every queue), then the
        // supervised workers (each holds the hub's sender). The queues
        // are plain shared state — not channels tied to a receiver
        // thread — so a restarted worker resumes the same backlog.
        let shared = Arc::new(ClusterShared::new(n));
        let queues: Vec<IngestQueue<WorkerMsg>> = (0..n).map(|_| IngestQueue::new(depth)).collect();
        let in_flight = Arc::new(AtomicI64::new(0));
        let (hub_tx, hub_rx) = mpsc::channel::<HubMsg>();
        let hub_handle = {
            let queues = queues.clone();
            let in_flight = Arc::clone(&in_flight);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sstore-hub".into())
                .spawn(move || hub_loop(hub_rx, queues, n, in_flight, shared))
                .map_err(|e| Error::Internal(format!("spawn forward hub: {e}")))?
        };

        let mut workers = Vec::with_capacity(n);
        for (i, p) in partitions.into_iter().enumerate() {
            let id = PartitionId::new(i as u32);
            let ctx = WorkerCtx {
                id,
                builder: site_builder(i),
                setup: Arc::clone(&setup),
                coord_dir: coord_dir.clone(),
                queue: queues[i].clone(),
                hub: hub_tx.clone(),
                in_flight: Arc::clone(&in_flight),
                shared: Arc::clone(&shared),
            };
            let handle = std::thread::Builder::new()
                .name(format!("sstore-p{i}"))
                .spawn(move || supervised_worker(ctx, p))
                .map_err(|e| Error::Internal(format!("spawn partition worker: {e}")))?;
            workers.push(Worker {
                id,
                queue: queues[i].clone(),
                handle: Some(handle),
            });
        }

        Ok(Cluster {
            workers,
            router,
            hub_tx: Some(hub_tx),
            hub_handle: Some(hub_handle),
            in_flight,
            shared,
            coordinator,
            multi_partition_procs,
            obs_baseline: crate::obs_report::ObsBaseline::capture(),
        })
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// True when the cluster has no partitions (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// The declared router.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Supervision state of every partition worker, in partition order.
    pub fn health(&self) -> Vec<PartitionHealth> {
        (0..self.workers.len())
            .map(|i| self.shared.health_of(i))
            .collect()
    }

    /// Replace the routing declaration (validated against the partition
    /// count). Affects subsequent submissions only.
    pub fn declare_route(&mut self, spec: RouteSpec) -> Result<()> {
        self.router = Router::new(spec, self.workers.len())?;
        Ok(())
    }

    /// Declare `stream` a cross-partition workflow edge on every
    /// partition (see [`Cluster::with_edges`], which also covers
    /// recovery). Affects subsequent emissions only.
    pub fn declare_cross_edge(&self, stream: &str, key_col: usize) -> Result<()> {
        for i in 0..self.workers.len() {
            let name = stream.to_string();
            self.with_partition(i, move |db| db.declare_cross_edge(&name, key_col))??;
        }
        Ok(())
    }

    /// Run `f` against one partition on its worker thread and return the
    /// result (dashboards, tests, snapshots). Blocks until the worker
    /// reaches this job in queue order. Returns [`Error::PartitionDown`]
    /// if the partition went (or was already) down — including when `f`
    /// itself panicked the worker: the panic is caught by the worker's
    /// supervisor, never propagated to the caller.
    pub fn with_partition<R, F>(&self, i: usize, f: F) -> Result<R>
    where
        R: Send + 'static,
        F: FnOnce(&mut SStore) -> R + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        self.workers[i].send(WorkerMsg::Exec(Box::new(move |db| {
            let _ = tx.send(f(db));
        })))?;
        rx.recv().map_err(|_| {
            Error::PartitionDown(format!(
                "partition {} went down before answering",
                self.workers[i].id
            ))
        })
    }

    /// Submit a border batch asynchronously: shard by the declared route,
    /// enqueue each shard on its partition's ingest queue (blocking only
    /// if a queue is full — backpressure), and return a [`Ticket`] that
    /// resolves to per-partition TE outcomes. Rows with `NULL` partition
    /// keys are rejected before anything is enqueued.
    ///
    /// A procedure declared `multi_partition` whose rows route to more
    /// than one partition runs as one global transaction under 2PC (see
    /// the module docs); all other submissions keep the independent
    /// per-partition semantics.
    pub fn submit_batch_async<R: Into<Row>>(&self, proc: &str, rows: Vec<R>) -> Result<Ticket> {
        let trace = obs::enabled().then(TraceCtx::mint);
        let rows: Vec<Row> = rows.into_iter().map(Into::into).collect();
        let shards = self.router.shard(rows)?;
        if let Some(t) = trace {
            obs::record(Stage::Routed, t);
        }
        if self.multi_partition_procs.contains(proc) {
            return self.coordinate(proc, shards, trace);
        }
        self.submit_shards(proc, shards, trace)
    }

    /// [`Cluster::submit_batch_async`] with **admission control** instead
    /// of backpressure: if any target ingest queue is full the submission
    /// is shed with retryable [`Error::Overloaded`] — nothing is enqueued
    /// anywhere (the reservation across queues is all-or-nothing), so the
    /// client may back off and resubmit ([`crate::RetryPolicy`]).
    ///
    /// Global transactions (a `multi_partition` procedure straddling
    /// partitions) must take the coordinator's blocking prepare path, so
    /// their admission check is advisory: full queues shed up front, but
    /// a queue that fills between the check and the prepare applies
    /// backpressure as usual.
    pub fn try_submit_batch_async<R: Into<Row>>(&self, proc: &str, rows: Vec<R>) -> Result<Ticket> {
        let trace = obs::enabled().then(TraceCtx::mint);
        let rows: Vec<Row> = rows.into_iter().map(Into::into).collect();
        let shards = self.router.shard(rows)?;
        if let Some(t) = trace {
            obs::record(Stage::Routed, t);
        }
        if self.multi_partition_procs.contains(proc)
            && shards.iter().filter(|s| !s.is_empty()).count() > 1
        {
            for (worker, shard) in self.workers.iter().zip(&shards) {
                if !shard.is_empty() && worker.queue.is_full() {
                    self.shared.sheds.fetch_add(1, Ordering::SeqCst);
                    return Err(Error::Overloaded(format!(
                        "partition {} ingest queue is full; global transaction shed",
                        worker.id
                    )));
                }
            }
            return self.coordinate(proc, shards, trace);
        }
        let mut sends = Vec::new();
        let mut pending = Vec::new();
        for (worker, shard) in self.workers.iter().zip(shards) {
            if shard.is_empty() {
                continue;
            }
            let (tx, rx) = mpsc::channel();
            sends.push((
                &worker.queue,
                WorkerMsg::Ingest {
                    proc: proc.to_string(),
                    rows: shard,
                    reply: tx,
                    trace,
                },
            ));
            pending.push((worker.id, rx));
        }
        // Workers are iterated in ascending partition order, which is the
        // globally consistent lock order `try_send_all` requires.
        match IngestQueue::try_send_all(sends) {
            Ok(()) => Ok(Ticket { pending }),
            Err(TrySendError::Full) => {
                self.shared.sheds.fetch_add(1, Ordering::SeqCst);
                Err(Error::Overloaded(
                    "an ingest queue is full; submission shed (nothing enqueued)".into(),
                ))
            }
            Err(TrySendError::Down) => Err(Error::PartitionDown(
                "a target partition is down; submission refused (nothing enqueued)".into(),
            )),
            Err(TrySendError::Closed) => Err(Error::Internal("cluster is shutting down".into())),
        }
    }

    /// Submit a border batch as **one atomic global transaction**,
    /// regardless of the procedure's declaration: two-phase commit when
    /// the rows straddle partitions, the ordinary single-partition path
    /// when they don't. The returned [`Ticket`] resolves to every
    /// participant's outcomes; if any participant votes no, the whole
    /// transaction aborts everywhere and `wait()` surfaces the error.
    pub fn submit_batch_atomic<R: Into<Row>>(&self, proc: &str, rows: Vec<R>) -> Result<Ticket> {
        let trace = obs::enabled().then(TraceCtx::mint);
        let rows: Vec<Row> = rows.into_iter().map(Into::into).collect();
        let shards = self.router.shard(rows)?;
        if let Some(t) = trace {
            obs::record(Stage::Routed, t);
        }
        self.coordinate(proc, shards, trace)
    }

    /// Submit a border batch split by the declared route, and block for
    /// the results — the original synchronous API, now a wrapper over the
    /// async path. Returns per-partition outcomes (empty for partitions
    /// that received no rows).
    ///
    /// `key_col` must name the cluster's declared partition-key column
    /// (anything else is rejected — routing the same table by two
    /// different columns would silently split a key's state across
    /// partitions). To route by another column, [`Cluster::declare_route`]
    /// first.
    pub fn submit_batch_partitioned<R: Into<Row>>(
        &self,
        proc: &str,
        rows: Vec<R>,
        key_col: usize,
    ) -> Result<Vec<Vec<TxnOutcome>>> {
        let declared = self.router.spec().key_col();
        if declared != key_col {
            return Err(Error::Schedule(format!(
                "cluster routes on partition-key column {declared}; cannot route by \
                 column {key_col} (declare_route first to change the partition key)"
            )));
        }
        let ticket = self.submit_batch_async(proc, rows)?;
        let mut results: Vec<Vec<TxnOutcome>> =
            (0..self.workers.len()).map(|_| Vec::new()).collect();
        for po in ticket.wait()? {
            results[po.partition.raw() as usize] = po.outcomes;
        }
        Ok(results)
    }

    fn submit_shards(
        &self,
        proc: &str,
        shards: Vec<Vec<Row>>,
        trace: Option<TraceCtx>,
    ) -> Result<Ticket> {
        let mut pending = Vec::new();
        for (worker, shard) in self.workers.iter().zip(shards) {
            if shard.is_empty() {
                continue;
            }
            let (tx, rx) = mpsc::channel();
            worker.send(WorkerMsg::Ingest {
                proc: proc.to_string(),
                rows: shard,
                reply: tx,
                trace,
            })?;
            pending.push((worker.id, rx));
        }
        Ok(Ticket { pending })
    }

    /// Run one submission through the transaction coordinator: the
    /// single-partition fast path when at most one shard is non-empty
    /// (byte-identical to plain ingest — no 2PC messages, no extra log
    /// records), a full prepare/decide round otherwise. The coordinator
    /// mutex serializes multi-sited transactions (H-Store's discipline),
    /// which also rules out distributed deadlock between prepare rounds.
    fn coordinate(
        &self,
        proc: &str,
        shards: Vec<Vec<Row>>,
        trace: Option<TraceCtx>,
    ) -> Result<Ticket> {
        let involved = shards.iter().filter(|s| !s.is_empty()).count();
        let mut coordinator = self
            .coordinator
            .lock()
            .map_err(|_| Error::Internal("coordinator mutex poisoned".into()))?;
        if involved <= 1 {
            coordinator.note_fast_path();
            drop(coordinator);
            return self.submit_shards(proc, shards, trace);
        }

        let gtid = coordinator.begin();
        coordinator.note_multi_partition(involved);

        // Phase 1: prepare every involved partition.
        let mut votes = Vec::with_capacity(involved);
        let mut pending = Vec::with_capacity(involved);
        let mut participants = Vec::with_capacity(involved);
        let mut send_err: Option<Error> = None;
        for (worker, shard) in self.workers.iter().zip(shards) {
            if shard.is_empty() {
                continue;
            }
            let (vote_tx, vote_rx) = mpsc::channel();
            let (reply_tx, reply_rx) = mpsc::channel();
            match worker.send(WorkerMsg::Prepare {
                gtid,
                proc: proc.to_string(),
                rows: shard,
                vote: vote_tx,
                reply: reply_tx,
                trace,
            }) {
                Ok(()) => {
                    votes.push(vote_rx);
                    pending.push((worker.id, reply_rx));
                    participants.push(worker.id);
                }
                Err(e) => {
                    send_err = Some(e);
                    break;
                }
            }
        }

        // Collect votes; any no (or dead worker, or failed send) aborts.
        let mut commit = send_err.is_none();
        for rx in votes {
            match rx.recv() {
                Ok(Ok(())) => {}
                Ok(Err(_)) | Err(_) => commit = false,
            }
        }

        // Commit point: the decision is durable before any participant
        // may act on it. A failed commit write whose bytes were rolled
        // back is *provably absent*, so flipping to abort is safe; a
        // failure of UNKNOWN durability (kind "recovery") must release
        // no outcome at all — live participants and a later recovery
        // could otherwise resolve the gtid differently. The participants
        // stay blocked until the cluster drops (which aborts them the
        // same way a crash would) and the error surfaces to the caller.
        if commit {
            match coordinator.decide(gtid, true, &participants) {
                Ok(()) => {}
                Err(e) if e.kind() == "recovery" => {
                    drop(coordinator);
                    return Err(e);
                }
                Err(e) => {
                    slog!(Error; "coordinator decision log failed, aborting gtid {gtid}: {e}");
                    commit = false;
                    coordinator.decide(gtid, false, &participants).ok();
                }
            }
        } else {
            // Presumed abort: an absent record already means abort, so a
            // failed abort write cannot cause divergence.
            coordinator.decide(gtid, false, &participants).ok();
        }

        // Phase 2: release the participants.
        for id in &participants {
            self.workers[id.raw() as usize]
                .send(WorkerMsg::Decide { gtid, commit })
                .ok();
        }
        // Checkpoint compaction, still under the coordinator mutex (no
        // concurrent decide can interleave). The barrier drains every
        // worker queue — including the Decides just sent — so each
        // participant has durably logged its local Decision for every
        // decided gtid; the coordinator's records are then redundant. A
        // failed barrier (a down partition that may never log its
        // decision) skips the compaction: correctness first.
        if coordinator.should_compact() && self.barrier().is_ok() {
            if let Err(e) = coordinator.compact() {
                slog!(Warn; "coordinator log compaction failed (retained): {e}");
            }
        }
        drop(coordinator);
        if let Some(e) = send_err {
            return Err(e);
        }
        Ok(Ticket { pending })
    }

    /// The coordinator's counters (fast-path vs 2PC submissions, commit
    /// and abort decisions).
    pub fn coordinator_stats(&self) -> CoordStats {
        self.coordinator
            .lock()
            .map(|c| c.stats())
            .unwrap_or_default()
    }

    /// Run a read-only query on every partition **in parallel** and
    /// concatenate the rows in partition order (a scatter-gather read;
    /// aggregation across partitions is the caller's job, as in any
    /// shared-nothing system).
    pub fn query_all(&self, sql: &str, params: &[Value]) -> Result<Vec<Row>> {
        let mut replies = Vec::with_capacity(self.workers.len());
        for worker in &self.workers {
            let (tx, rx) = mpsc::channel();
            worker.send(WorkerMsg::Query {
                sql: sql.to_string(),
                params: params.to_vec(),
                reply: tx,
            })?;
            replies.push((worker.id, rx));
        }
        let mut out = Vec::new();
        for (id, rx) in replies {
            let rows = rx.recv().map_err(|_| {
                Error::PartitionDown(format!("partition {id} went down before answering"))
            })??;
            out.extend(rows);
        }
        Ok(out)
    }

    /// Advance every partition's logical clock in lockstep. The advance
    /// is queued FIFO like any other job, so it lands at a deterministic
    /// point relative to this caller's submissions.
    pub fn advance_clock(&self, micros: i64) -> Result<()> {
        for worker in &self.workers {
            worker.send(WorkerMsg::AdvanceClock(micros))?;
        }
        Ok(())
    }

    /// Block until the cross-partition dataflow is quiescent: every
    /// queued job processed, no edge forwards in flight anywhere (hub or
    /// worker queues), and every edge ack delivered. Call before reading
    /// cross-edge results or shutting down cleanly.
    ///
    /// Fails fast — never hangs — when quiescence is unreachable: a
    /// partition is permanently down ([`Error::PartitionDown`]), an edge
    /// instance permanently failed delivery or ack ([`Error::Io`]; the
    /// unacked batches replay at the next recovery), or the hub died
    /// with edge work in flight.
    pub fn quiesce(&self) -> Result<()> {
        loop {
            self.check_quiescible()?;
            self.barrier()?;
            if self.in_flight.load(Ordering::SeqCst) == 0 {
                // Forwards enqueued before the barrier are processed; a
                // second barrier flushes the edge acks those sent.
                self.barrier()?;
                if self.in_flight.load(Ordering::SeqCst) == 0 {
                    self.check_quiescible()?;
                    return Ok(());
                }
            }
            std::thread::yield_now();
        }
    }

    /// The fail-fast half of [`Cluster::quiesce`]: typed errors for the
    /// states from which the dataflow can never settle.
    fn check_quiescible(&self) -> Result<()> {
        for (i, worker) in self.workers.iter().enumerate() {
            if self.shared.health_of(i) == PartitionHealth::Down {
                return Err(Error::PartitionDown(format!(
                    "partition {} is down; the cluster cannot quiesce",
                    worker.id
                )));
            }
        }
        let failures = self.shared.edge_failures.load(Ordering::SeqCst);
        if failures > 0 {
            return Err(Error::Io(format!(
                "{failures} cross-edge instance(s) permanently failed delivery or ack; \
                 the emitting batches stay unacked and replay at the next recovery"
            )));
        }
        if !self.shared.hub_alive.load(Ordering::SeqCst)
            && self.in_flight.load(Ordering::SeqCst) != 0
        {
            return Err(Error::Internal(
                "forward hub exited with cross-edge work in flight".into(),
            ));
        }
        Ok(())
    }

    /// Enqueue a no-op on every worker and wait for all of them — every
    /// job queued before the barrier has been processed when it returns.
    /// A worker that goes down mid-barrier surfaces as
    /// [`Error::PartitionDown`] (its tombstone drops the no-op).
    fn barrier(&self) -> Result<()> {
        let mut replies = Vec::with_capacity(self.workers.len());
        for worker in &self.workers {
            let (tx, rx) = mpsc::channel::<()>();
            worker.send(WorkerMsg::Exec(Box::new(move |_db| {
                let _ = tx.send(());
            })))?;
            replies.push((worker.id, rx));
        }
        for (id, rx) in replies {
            rx.recv().map_err(|_| {
                Error::PartitionDown(format!("partition {id} went down inside a barrier"))
            })?;
        }
        Ok(())
    }

    /// Capture per-partition counters. The capture jobs are enqueued on
    /// every worker first and then collected, so the wait is bounded by
    /// the slowest single worker (like [`Cluster::query_all`]), and each
    /// capture reflects everything queued on its partition before it.
    ///
    /// Never fails and never panics: a partition whose worker is down
    /// contributes an all-zero [`PartitionMetrics::unavailable`]
    /// placeholder (`available: false`) — dashboards keep rendering
    /// through an outage.
    pub fn metrics(&self) -> ClusterMetrics {
        let mut replies = Vec::with_capacity(self.workers.len());
        for worker in &self.workers {
            let (tx, rx) = mpsc::channel();
            let sent = worker
                .send(WorkerMsg::Exec(Box::new(move |db| {
                    let _ = tx.send(PartitionMetrics::capture(db));
                })))
                .is_ok();
            replies.push((worker.id, sent, rx));
        }
        ClusterMetrics {
            partitions: replies
                .into_iter()
                .map(|(id, sent, rx)| {
                    if !sent {
                        return PartitionMetrics::unavailable(id);
                    }
                    rx.recv()
                        .unwrap_or_else(|_| PartitionMetrics::unavailable(id))
                })
                .collect(),
            rows: sstore_common::RowMetrics::snapshot(),
            coordinator: self.coordinator_stats(),
            health: self.health(),
            sheds: self.shared.sheds.load(Ordering::SeqCst),
            worker_restarts: self.shared.restarts.load(Ordering::SeqCst),
        }
    }

    /// Sum of committed TEs across partitions.
    pub fn total_committed(&self) -> u64 {
        self.metrics().total_committed()
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        // Best-effort quiesce so in-flight cross-edge work lands before
        // the hub goes away (bounded; a down partition must not hang the
        // drop — recovery covers whatever is left).
        for _ in 0..64 {
            if self.barrier().is_err() {
                break;
            }
            if self.in_flight.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::yield_now();
        }
        // The hub holds clones of every worker queue, so it must exit
        // before closing the queues can stop the workers.
        if let Some(tx) = self.hub_tx.take() {
            let _ = tx.send(HubMsg::Shutdown);
        }
        if let Some(h) = self.hub_handle.take() {
            let _ = h.join();
        }
        // Closing the queues lets each worker finish everything already
        // enqueued, then exit (a tombstone drain ends the same way).
        for w in &self.workers {
            w.queue.close();
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// `SSTORE_SPECULATION=off` (or `0`) disables early-prepare speculation,
/// restoring the strict defer-everything 2PC wait for A/B comparison.
fn speculation_enabled() -> bool {
    !matches!(
        std::env::var("SSTORE_SPECULATION").as_deref(),
        Ok("off") | Ok("OFF") | Ok("0")
    )
}

/// `SSTORE_MAX_WORKER_RESTARTS` bounds how many times one partition's
/// supervisor will re-run recovery before declaring the partition down
/// (default 3 — a deterministic crash must not restart forever).
fn restart_budget() -> u32 {
    std::env::var("SSTORE_MAX_WORKER_RESTARTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// Push every outbox envelope to the hub. Counted into `in_flight`
/// *before* the send so quiesce can never observe a gap.
fn flush_outbox(
    db: &mut SStore,
    id: PartitionId,
    hub: &mpsc::Sender<HubMsg>,
    in_flight: &AtomicI64,
) {
    for fwd in db.take_outbox() {
        in_flight.fetch_add(1, Ordering::SeqCst);
        if hub.send(HubMsg::Forward { src: id, fwd }).is_err() {
            // Hub already gone (shutdown): the batch stays unacked and
            // replays at the next recovery.
            in_flight.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Why the drain loop returned (as opposed to panicking out of it).
enum LoopExit {
    /// The queue closed: the cluster is shutting down.
    Shutdown,
    /// The partition's command log is poisoned (a group write failed AND
    /// its rollback failed — the log tail has unknown durability). The
    /// in-memory state is ahead of an unknowable durable prefix, so the
    /// supervisor must rebuild from disk exactly as after a panic.
    Poisoned,
}

/// The supervision frame around one partition's drain loop.
///
/// The loop runs under `catch_unwind` with the [`SStore`] moved *into*
/// the guarded closure: a panic drops the partition during the unwind
/// (its command log's `Drop` skips the group-commit flush while
/// `std::thread::panicking()`, so a torn group is discarded, not
/// synced). The bookkeeping that must survive the panic — parked
/// messages and [`CrashCtx`] — lives out here and is only *borrowed* by
/// the loop.
///
/// After a crash the supervisor (1) reports a half-logged edge shard to
/// the hub as failed, (2) resolves in-flight submission replies by
/// provable fate (see [`CrashCtx`]), (3) re-parks deferred messages,
/// (4) if the worker died between a yes-vote and the decision, drains
/// the queue for that decision (the coordinator always sends phase 2),
/// and (5) either re-runs recovery and re-enters the loop on the same
/// queue, or — when the partition is non-durable, recovery fails, or
/// the restart budget is spent — marks the partition down and becomes a
/// tombstone that resolves all remaining work with
/// [`Error::PartitionDown`].
fn supervised_worker(ctx: WorkerCtx, first: SStore) {
    let mut db_slot = Some(first);
    let mut pending: VecDeque<WorkerMsg> = VecDeque::new();
    let mut crash = CrashCtx::default();
    let mut restarts_here = 0u32;
    let budget = restart_budget();
    loop {
        let db = match db_slot.take() {
            Some(db) => db,
            None => {
                // Unreachable by construction (every path below either
                // refills the slot or returns), but never panic here.
                down_tombstone(&ctx, &mut pending);
                return;
            }
        };
        let exit = catch_unwind(AssertUnwindSafe(|| {
            worker_loop(&ctx, db, &mut pending, &mut crash)
        }));
        match exit {
            Ok(LoopExit::Shutdown) => return,
            Ok(LoopExit::Poisoned) => {
                slog!(
                    Warn, partition = ctx.id.raw();
                    "command log poisoned; rebuilding from disk"
                );
            }
            Err(_) => {
                slog!(Warn, partition = ctx.id.raw(); "worker panicked; supervising");
            }
        }
        ctx.shared.set_health(ctx.id, PartitionHealth::Restarting);

        // (1) A shard that was being logged when the worker died: report
        // it failed so the hub's envelope bookkeeping completes (the ack
        // is withheld; the emitter replays the batch at recovery).
        if let Some((src, src_batch, stream)) = crash.in_flight_forward.take() {
            let _ = ctx.hub.send(HubMsg::Logged {
                src,
                src_batch,
                stream,
                ok: false,
            });
        }

        // (2) In-flight submission replies, resolved by provable fate.
        let err = if crash.uncertain {
            Error::Io(format!(
                "partition {} restarted mid-batch; the border record may be durable and \
                 would replay at recovery — do not resubmit blindly",
                ctx.id
            ))
        } else {
            Error::PartitionDown(format!(
                "partition {} is restarting; the submission was not executed (retryable)",
                ctx.id
            ))
        };
        for reply in crash.ingest_replies.drain(..) {
            let _ = reply.send(Err(err.clone()));
        }
        crash.uncertain = false;

        // (3) Messages deferred during a 2PC wait go back to the front,
        // oldest first.
        for m in crash.deferred.drain(..).rev() {
            pending.push_front(m);
        }

        // (4) Died between a yes-vote and the decision: the in-doubt
        // reply fails (outcome unknown to this client), and the decision
        // the coordinator will send — it has our vote, so phase 2 always
        // follows — must be learned before recovery, or the restarted
        // partition could resolve the fragment against a decision map
        // read *before* the coordinator logged its commit.
        let mut learned: Option<(u64, bool)> = None;
        let mut closed = false;
        if let Some((gtid, reply)) = crash.awaiting_decision.take() {
            let _ = reply.send(Err(Error::Io(format!(
                "partition {} restarted while gtid {gtid} was in doubt; the outcome \
                 resolves at recovery",
                ctx.id
            ))));
            loop {
                match ctx.queue.recv() {
                    Some(WorkerMsg::Decide { gtid: g, commit }) if g == gtid => {
                        learned = Some((gtid, commit));
                        break;
                    }
                    Some(other) => pending.push_back(other),
                    None => {
                        closed = true;
                        break;
                    }
                }
            }
        }

        // (5) Restart or go down.
        let durable = ctx.builder.config().log.is_some();
        if closed || !durable || restarts_here >= budget {
            if !durable {
                slog!(
                    Error, partition = ctx.id.raw();
                    "partition is non-durable and cannot be restarted; down"
                );
            } else if restarts_here >= budget {
                slog!(
                    Error, partition = ctx.id.raw();
                    "partition spent its restart budget ({budget}); down"
                );
            }
            down_tombstone(&ctx, &mut pending);
            return;
        }
        match restart_partition(&ctx, learned) {
            Ok(p) => {
                restarts_here += 1;
                ctx.shared.restarts.fetch_add(1, Ordering::SeqCst);
                ctx.shared.set_health(ctx.id, PartitionHealth::Healthy);
                db_slot = Some(p);
            }
            Err(e) => {
                slog!(Error, partition = ctx.id.raw(); "restart failed ({e}); down");
                down_tombstone(&ctx, &mut pending);
                return;
            }
        }
    }
}

/// Re-run log + snapshot recovery for one partition, folding in a 2PC
/// decision the supervisor learned over the queue (it may be newer than
/// what `coord.log` held when read).
fn restart_partition(ctx: &WorkerCtx, learned: Option<(u64, bool)>) -> Result<SStore> {
    let dir = ctx
        .coord_dir
        .as_ref()
        .ok_or_else(|| Error::Recovery("a non-durable partition cannot be restarted".into()))?;
    let mut decisions = CoordinatorLog::read(dir)?.decisions;
    if let Some((gtid, commit)) = learned {
        decisions.insert(gtid, commit);
    }
    recover_with_decisions(ctx.builder.config().clone(), |p| (ctx.setup)(p), &decisions)
}

/// The terminal state of a down partition: resolve everything queued —
/// and everything that keeps arriving until the cluster drops — with
/// typed errors instead of letting reply channels dangle. Clients see
/// [`Error::PartitionDown`], never a panic or a hang.
fn down_tombstone(ctx: &WorkerCtx, pending: &mut VecDeque<WorkerMsg>) {
    ctx.shared.set_health(ctx.id, PartitionHealth::Down);
    ctx.queue.mark_dead();
    let down = || Error::PartitionDown(format!("partition {} is down", ctx.id));
    loop {
        let msg = match pending.pop_front() {
            Some(m) => m,
            None => match ctx.queue.recv() {
                Some(m) => m,
                None => return, // queue closed and drained: shutdown
            },
        };
        match msg {
            WorkerMsg::Ingest { reply, .. } => {
                let _ = reply.send(Err(down()));
            }
            WorkerMsg::Query { reply, .. } => {
                let _ = reply.send(Err(down()));
            }
            // Dropping the closure drops its captured reply sender; the
            // caller's recv error is mapped to PartitionDown.
            WorkerMsg::Exec(f) => drop(f),
            WorkerMsg::AdvanceClock(_) => {}
            WorkerMsg::Prepare { vote, reply, .. } => {
                let _ = vote.send(Err(down()));
                let _ = reply.send(Err(down()));
            }
            WorkerMsg::Decide { .. } => {}
            WorkerMsg::Forward {
                stream,
                src,
                src_batch,
                ..
            } => {
                // Not logged here: withhold the ack so the emitter
                // replays the batch at the next recovery.
                let _ = ctx.hub.send(HubMsg::Logged {
                    src,
                    src_batch,
                    stream,
                    ok: false,
                });
            }
            WorkerMsg::EdgeAck { .. } => {}
        }
    }
}

/// The partition worker: drain the ingest queue in FIFO order until the
/// cluster handle drops. Consecutive queued submissions for the same
/// procedure are coalesced into one PE scheduler pass
/// ([`sstore_txn::Partition::submit_batch_group`]) — per-submission order
/// is preserved, so the final state is byte-for-byte what one-at-a-time
/// execution would produce, minus the per-submission boundary overhead.
///
/// 2PC discipline: after voting on a [`WorkerMsg::Prepare`], the worker
/// pulls messages looking only for the matching [`WorkerMsg::Decide`],
/// deferring everything else (order preserved) — the prepared fragment's
/// uncommitted writes must not be observed by other TEs.
///
/// Runs under the supervisor's `catch_unwind`; `pending` and `crash` are
/// borrowed from outside the unwind boundary (see [`supervised_worker`]).
fn worker_loop(
    ctx: &WorkerCtx,
    mut db: SStore,
    pending: &mut VecDeque<WorkerMsg>,
    crash: &mut CrashCtx,
) -> LoopExit {
    let id = ctx.id;
    let mut disconnected = false;
    // A recovered partition may come up with re-forwards already queued.
    flush_outbox(&mut db, id, &ctx.hub, &ctx.in_flight);
    loop {
        let msg = match pending.pop_front() {
            Some(m) => m,
            None if disconnected => return LoopExit::Shutdown,
            None => match ctx.queue.recv() {
                Some(m) => m,
                None => return LoopExit::Shutdown, // queue closed + drained
            },
        };
        match msg {
            WorkerMsg::Ingest {
                proc,
                rows,
                reply,
                trace,
            } => {
                let mut group = vec![(rows, reply, trace)];
                // Opportunistically coalesce same-procedure submissions
                // already waiting. A message for a different procedure
                // (or kind) stays parked so FIFO order holds.
                loop {
                    if pending.is_empty() {
                        match ctx.queue.try_recv() {
                            Some(m) => pending.push_back(m),
                            None => break,
                        }
                    }
                    match pending.front() {
                        Some(WorkerMsg::Ingest { proc: p, .. }) if *p == proc => {
                            let Some(WorkerMsg::Ingest {
                                rows, reply, trace, ..
                            }) = pending.pop_front()
                            else {
                                unreachable!("front was a matching Ingest");
                            };
                            group.push((rows, reply, trace));
                        }
                        _ => break,
                    }
                }
                crash.ingest_replies = group.iter().map(|(_, r, _)| r.clone()).collect();
                // Every group member leaves the queue at this instant;
                // pending traces are pushed in submission order, which is
                // the order the partition mints the group's batch ids.
                for (_, _, t) in &group {
                    if let Some(t) = *t {
                        obs::record(Stage::Queued, t);
                        db.push_pending_trace(t);
                    }
                }
                let traces: Vec<Option<TraceCtx>> = group.iter().map(|(_, _, t)| *t).collect();
                // Kill point: the group is captured but nothing has been
                // logged or executed — a crash here resolves every reply
                // as retryable PartitionDown.
                fault::kill_point("worker-killed-live");
                crash.uncertain = true;
                if group.len() == 1 {
                    let (rows, reply, _) = group.pop().expect("one submission");
                    let _ = reply.send(db.submit_batch(&proc, rows));
                } else {
                    let (batches, replies): (Vec<_>, Vec<_>) = group
                        .into_iter()
                        .map(|(rows, reply, _)| (rows, reply))
                        .unzip();
                    match db.submit_batch_group(&proc, batches) {
                        // Per-submission results: a batch that committed
                        // resolves Ok even when a later group member
                        // failed to enqueue — the same answer it would
                        // have gotten uncoalesced.
                        Ok(results) => {
                            for (reply, result) in replies.into_iter().zip(results) {
                                let _ = reply.send(result);
                            }
                        }
                        Err(e) => {
                            for reply in replies {
                                let _ = reply.send(Err(e.clone()));
                            }
                        }
                    }
                }
                for t in traces.into_iter().flatten() {
                    obs::record(Stage::Executed, t);
                }
                crash.uncertain = false;
                crash.ingest_replies.clear();
            }
            WorkerMsg::Query { sql, params, reply } => {
                let _ = reply.send(db.query(&sql, &params).map(|r| r.rows));
            }
            WorkerMsg::Exec(f) => f(&mut db),
            WorkerMsg::AdvanceClock(micros) => {
                db.advance_clock(micros);
            }
            WorkerMsg::Prepare {
                gtid,
                proc,
                rows,
                vote,
                reply,
                trace,
            } => {
                if let Some(t) = trace {
                    obs::record(Stage::Queued, t);
                    db.push_pending_trace(t);
                }
                // The fragment log write makes the fate uncertain; a
                // crash before the vote is sent aborts the gtid anyway
                // (the coordinator reads the dropped vote channel as a
                // no), so the reply may simply drop.
                crash.uncertain = true;
                let prepared = db.prepare_fragment(gtid, &proc, rows);
                crash.uncertain = false;
                if let (Some(t), true) = (trace, prepared.is_ok()) {
                    obs::record(Stage::Prepared, t);
                }
                let vote_err = prepared.as_ref().err().cloned();
                if vote_err.is_none() {
                    // From the yes-vote on, the coordinator may commit:
                    // a crash in this window must learn the decision
                    // (see supervised_worker step 4).
                    crash.awaiting_decision = Some((gtid, reply.clone()));
                }
                let _ = vote.send(prepared.map(|_| ()));
                // Block for the decision, deferring everything else —
                // except, while nothing is deferred yet, single-partition
                // submissions provably disjoint from the prepared
                // fragment's workflow closure: those execute immediately
                // (early-prepare speculation). Once anything defers, all
                // later messages defer too, preserving FIFO order.
                let speculate = vote_err.is_none() && speculation_enabled();
                let decision = loop {
                    let next = match pending.pop_front() {
                        Some(m) => Some(m),
                        None => ctx.queue.recv(),
                    };
                    match next {
                        Some(WorkerMsg::Decide { gtid: g, commit }) if g == gtid => {
                            break Some(commit)
                        }
                        Some(WorkerMsg::Ingest {
                            proc: sp,
                            rows,
                            reply,
                            trace: spec_trace,
                        }) if speculate
                            && crash.deferred.is_empty()
                            && db.speculation_safe(&sp) =>
                        {
                            if let Some(t) = spec_trace {
                                obs::record(Stage::Queued, t);
                                db.push_pending_trace(t);
                            }
                            crash.ingest_replies.push(reply.clone());
                            crash.uncertain = true;
                            let _ = reply.send(db.submit_batch_speculative(&sp, rows));
                            crash.uncertain = false;
                            if let Some(t) = spec_trace {
                                obs::record(Stage::Executed, t);
                            }
                            crash.ingest_replies.clear();
                            // Speculative emissions onto cross-partition
                            // edges must not wait out the 2PC round.
                            flush_outbox(&mut db, id, &ctx.hub, &ctx.in_flight);
                        }
                        Some(other) => crash.deferred.push(other),
                        None => break None, // cluster dropped mid-2PC
                    }
                };
                for m in crash.deferred.drain(..).rev() {
                    pending.push_front(m);
                }
                match decision {
                    Some(commit) => {
                        // The decision is in hand: a crash below no
                        // longer needs the supervisor's decide-drain
                        // (commit is durable in coord.log; abort is
                        // presumed by absence).
                        crash.awaiting_decision = None;
                        let out = match vote_err {
                            // Voted no: the fragment is already rolled
                            // back and locally decided; surface the
                            // original error to the ticket.
                            Some(e) => Err(e),
                            None => {
                                let out = db.decide_fragment(gtid, commit);
                                if let Some(t) = trace {
                                    obs::record(Stage::Decided, t);
                                }
                                out
                            }
                        };
                        let _ = reply.send(out);
                    }
                    None => {
                        // No decision will ever come (shutdown): abort —
                        // identical to the crash story, where recovery
                        // presumes abort for the in-doubt fragment.
                        crash.awaiting_decision = None;
                        if vote_err.is_none() {
                            let _ = db.decide_fragment(gtid, false);
                        }
                        disconnected = true;
                    }
                }
            }
            WorkerMsg::Decide { gtid, commit } => {
                // A decision with no held fragment: the participant voted
                // no and already resolved locally (or a stale retry).
                if db.prepared_gtid() == Some(gtid) {
                    let _ = db.decide_fragment(gtid, commit);
                }
            }
            WorkerMsg::Forward {
                stream,
                src,
                src_batch,
                rows,
                trace,
            } => {
                // The upstream batch's trace follows the rows so the
                // receiver's batch maps back to the same end-to-end id
                // (no stage is recorded here — receiver-side batches
                // would double-count against the emitting submission).
                if let Some(t) = trace {
                    db.push_pending_trace(t);
                }
                // A crash while the shard is half-logged must complete
                // the hub's envelope bookkeeping: the supervisor reports
                // it as a failed log (ack withheld, emitter replays).
                crash.in_flight_forward = Some((src, src_batch, stream.clone()));
                let ok = match db.accept_forward(&stream, src.raw(), src_batch.raw(), rows) {
                    Ok(Some(_)) => {
                        if let Err(e) = db.run_queued() {
                            slog!(
                                Error, partition = id.raw();
                                "forwarded batch on `{stream}` failed to execute: {e}"
                            );
                        }
                        true
                    }
                    Ok(None) => true, // duplicate: already durable here
                    Err(e) => {
                        slog!(
                            Warn, partition = id.raw();
                            "could not log forward on `{stream}`: {e}"
                        );
                        false
                    }
                };
                let _ = ctx.hub.send(HubMsg::Logged {
                    src,
                    src_batch,
                    stream,
                    ok,
                });
                crash.in_flight_forward = None;
            }
            WorkerMsg::EdgeAck { batch } => {
                if let Err(e) = db.edge_acked(batch) {
                    slog!(Warn, partition = id.raw(); "edge ack for {batch} failed: {e}");
                }
            }
        }
        // A group-commit write that failed AND failed to roll back left
        // the log tail with unknown durability: stop executing on top of
        // it and let the supervisor rebuild from disk.
        if db.durability_poisoned() {
            return LoopExit::Poisoned;
        }
        // Any of the above may have emitted onto a cross-partition edge
        // (Ingest and Decide through PE triggers, Exec through test
        // closures, Forward through cascading workflows).
        flush_outbox(&mut db, id, &ctx.hub, &ctx.in_flight);
    }
}

/// The forward hub: the router thread carrying cross-partition workflow
/// edges. Workers push envelopes on an unbounded channel (never
/// blocking); the hub shards each envelope by its edge's key column and
/// delivers the shards to the receiving workers' bounded queues — the
/// hub is the only thread that blocks on worker queues, so edge cycles
/// between partitions cannot deadlock. When every shard of an envelope
/// is durably logged at its receiver, the hub sends the emitting worker
/// an edge ack, releasing that batch's upstream backup; an envelope with
/// any failed shard (log error, receiver down) withholds the ack and
/// counts an edge failure, which [`Cluster::quiesce`] reports.
fn hub_loop(
    rx: mpsc::Receiver<HubMsg>,
    workers: Vec<IngestQueue<WorkerMsg>>,
    partitions: usize,
    in_flight: Arc<AtomicI64>,
    shared: Arc<ClusterShared>,
) {
    // Whatever path exits this thread, record that the hub is gone so
    // quiesce can distinguish "settling" from "will never settle".
    struct HubAliveGuard(Arc<ClusterShared>);
    impl Drop for HubAliveGuard {
        fn drop(&mut self) {
            self.0.hub_alive.store(false, Ordering::SeqCst);
        }
    }
    let _alive = HubAliveGuard(Arc::clone(&shared));
    // Outstanding shard counts (and health) per edge instance.
    let mut pending_acks: HashMap<(u32, u64, String), (usize, bool)> = HashMap::new();
    // One router per edge key column, built on first use — the hot
    // forward path must not re-validate a Router per envelope. Hash
    // placement is total over any key, so construction cannot fail for
    // a positive partition count (validated at build).
    let mut routers: HashMap<usize, Router> = HashMap::new();
    let mut shutting_down = false;
    loop {
        let msg = if shutting_down {
            match rx.try_recv() {
                Ok(m) => m,
                Err(_) => break, // queue drained; exit
            }
        } else {
            match rx.recv() {
                Ok(m) => m,
                Err(_) => break,
            }
        };
        match msg {
            HubMsg::Forward { src, fwd } => {
                // Edges route by hash over the edge's own key column.
                // (The ingest route's range bounds apply to the ingest
                // key's value domain, which a re-keyed edge need not
                // share — hash placement is total over any key.)
                let router = match routers.entry(fwd.key_col) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        match Router::new(RouteSpec::hash(fwd.key_col), partitions) {
                            Ok(r) => e.insert(r),
                            Err(err) => {
                                slog!(Error; "edge router build failed: {err}");
                                shared.edge_failures.fetch_add(1, Ordering::SeqCst);
                                in_flight.fetch_sub(1, Ordering::SeqCst);
                                continue;
                            }
                        }
                    }
                };
                match router.shard(fwd.rows) {
                    Ok(shards) => {
                        // The emitting batch's forward left its partition:
                        // one Forwarded record per envelope, stamped at
                        // hub emission.
                        if let Some(t) = fwd.trace {
                            obs::record(Stage::Forwarded, t);
                        }
                        let k = shards.iter().filter(|s| !s.is_empty()).count();
                        if k == 0 {
                            // An empty envelope (cannot normally happen):
                            // nothing to deliver, release the sender.
                            let _ = workers[src.raw() as usize]
                                .send(WorkerMsg::EdgeAck { batch: fwd.batch });
                        } else {
                            let key = (src.raw(), fwd.batch.raw(), fwd.stream.clone());
                            pending_acks.insert(key.clone(), (k, true));
                            in_flight.fetch_add(k as i64, Ordering::SeqCst);
                            for (i, shard) in shards.into_iter().enumerate() {
                                if shard.is_empty() {
                                    continue;
                                }
                                let delivered = workers[i]
                                    .send(WorkerMsg::Forward {
                                        stream: fwd.stream.clone(),
                                        src,
                                        src_batch: fwd.batch,
                                        rows: shard,
                                        trace: fwd.trace,
                                    })
                                    .is_ok();
                                if !delivered {
                                    // Receiver down or closing: the shard
                                    // was never logged there. Complete the
                                    // envelope bookkeeping as a failure.
                                    if let Some((remaining, all_ok)) = pending_acks.get_mut(&key) {
                                        *remaining -= 1;
                                        *all_ok = false;
                                        if *remaining == 0 {
                                            pending_acks.remove(&key);
                                            shared.edge_failures.fetch_add(1, Ordering::SeqCst);
                                        }
                                    }
                                    in_flight.fetch_sub(1, Ordering::SeqCst);
                                }
                            }
                        }
                    }
                    Err(e) => {
                        // Unroutable rows (e.g. NULL edge key): the edge
                        // ack is withheld, so the emitting batch stays
                        // replayable — loudly, not silently.
                        slog!(
                            Error, partition = src.raw();
                            "cross-edge `{}` unroutable: {e}", fwd.stream
                        );
                        shared.edge_failures.fetch_add(1, Ordering::SeqCst);
                    }
                }
                in_flight.fetch_sub(1, Ordering::SeqCst);
            }
            HubMsg::Logged {
                src,
                src_batch,
                stream,
                ok,
            } => {
                let key = (src.raw(), src_batch.raw(), stream);
                if let Some((remaining, all_ok)) = pending_acks.get_mut(&key) {
                    *remaining -= 1;
                    *all_ok &= ok;
                    if *remaining == 0 {
                        let healthy = *all_ok;
                        pending_acks.remove(&key);
                        if healthy {
                            let acked = workers[src.raw() as usize]
                                .send(WorkerMsg::EdgeAck { batch: src_batch })
                                .is_ok();
                            if !acked {
                                // The emitter is down: its batch stays
                                // unacked and replays at recovery.
                                shared.edge_failures.fetch_add(1, Ordering::SeqCst);
                            }
                        } else {
                            // A failed shard withholds the ack: the
                            // emitting batch stays unacked and replays
                            // at recovery.
                            shared.edge_failures.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
                in_flight.fetch_sub(1, Ordering::SeqCst);
            }
            HubMsg::Shutdown => {
                shutting_down = true;
            }
        }
    }
    // Dropping `workers` here releases the hub's queue clones; the
    // cluster's Drop closes the queues right after joining this thread.
}
