//! Multi-partition deployment.
//!
//! H-Store — and therefore S-Store — is "designed for shared-nothing
//! clusters": the database is partitioned so that most transactions run
//! **single-sited**, serially, on the partition owning their data (paper
//! §2, citing Pavlo et al. (ref. 8) for partition design). The paper
//! demonstrates the single-sited case; [`Cluster`] provides the
//! shared-nothing shape around it: N identically-deployed partitions, a
//! client-side router that splits border batches by partition key, and
//! parallel dispatch (one OS thread per partition per call, mirroring
//! H-Store's one-execution-site-per-core layout).
//!
//! Cross-partition transactions are deliberately **not** implemented —
//! the paper's demo never leaves one site, and a faithful distributed
//! coordinator is beyond its scope. Routing a tuple to the wrong partition
//! yields the same answer a mis-partitioned H-Store would: each partition
//! sees only its share.

use crate::builder::SStoreBuilder;
use crate::SStore;
use sstore_common::{Error, Result, Row, Value};
use sstore_txn::TxnOutcome;

/// A shared-nothing group of identically-deployed partitions.
pub struct Cluster {
    partitions: Vec<SStore>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("partitions", &self.partitions.len())
            .finish()
    }
}

impl Cluster {
    /// Build `n` partitions from one builder, running the same `deploy`
    /// (DDL + procedure registration + seeding) on each — deterministic
    /// redeployment, exactly like the recovery contract.
    pub fn new(
        n: usize,
        builder: &SStoreBuilder,
        deploy: impl Fn(&mut SStore) -> Result<()>,
    ) -> Result<Cluster> {
        if n == 0 {
            return Err(Error::Schedule(
                "a cluster needs at least 1 partition".into(),
            ));
        }
        let mut partitions = Vec::with_capacity(n);
        for _ in 0..n {
            let mut p = builder.clone().build()?;
            deploy(&mut p)?;
            partitions.push(p);
        }
        Ok(Cluster { partitions })
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// True when the cluster has no partitions (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// Direct access to one partition (dashboards, tests).
    pub fn partition_mut(&mut self, i: usize) -> &mut SStore {
        &mut self.partitions[i]
    }

    /// Hash-partition a routing value into a partition index.
    pub fn route(&self, key: &Value) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % self.partitions.len() as u64) as usize
    }

    /// Submit a border batch, splitting rows across partitions by
    /// `key_col` (a visible column index used as the partition key).
    /// Sub-batches execute **in parallel**, one thread per partition —
    /// legal because partitions share nothing. Returns per-partition
    /// outcomes (empty for partitions that received no rows).
    pub fn submit_batch_partitioned(
        &mut self,
        proc: &str,
        rows: Vec<Row>,
        key_col: usize,
    ) -> Result<Vec<Vec<TxnOutcome>>> {
        let n = self.partitions.len();
        let mut shards: Vec<Vec<Row>> = vec![Vec::new(); n];
        for row in rows {
            let key = row.get(key_col).ok_or_else(|| {
                Error::Schedule(format!("partition key column {key_col} out of range"))
            })?;
            let target = self.route(key);
            shards[target].push(row);
        }
        let mut results: Vec<Result<Vec<TxnOutcome>>> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .partitions
                .iter_mut()
                .zip(shards)
                .map(|(p, shard)| {
                    scope.spawn(move || {
                        if shard.is_empty() {
                            Ok(Vec::new())
                        } else {
                            p.submit_batch(proc, shard)
                        }
                    })
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("partition thread panicked"));
            }
        });
        results.into_iter().collect()
    }

    /// Run a read-only query on every partition and concatenate the rows
    /// (a scatter-gather read; aggregation across partitions is the
    /// caller's job, as in any shared-nothing system).
    pub fn query_all(&mut self, sql: &str, params: &[Value]) -> Result<Vec<Row>> {
        let mut out = Vec::new();
        for p in &mut self.partitions {
            out.extend(p.query(sql, params)?.rows);
        }
        Ok(out)
    }

    /// Advance every partition's logical clock in lockstep.
    pub fn advance_clock(&self, micros: i64) {
        for p in &self.partitions {
            p.advance_clock(micros);
        }
    }

    /// Sum of committed TEs across partitions.
    pub fn total_committed(&self) -> u64 {
        self.partitions.iter().map(|p| p.stats().committed).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstore_txn::ProcSpec;

    /// Per-key event counting: embarrassingly partitionable.
    fn deploy(db: &mut SStore) -> Result<()> {
        db.ddl("CREATE STREAM ev (key INT, amount INT)")?;
        db.ddl(
            "CREATE TABLE totals (key INT NOT NULL, n INT NOT NULL, \
                total INT NOT NULL, PRIMARY KEY (key))",
        )?;
        db.register(
            ProcSpec::new("count_events", |ctx| {
                for row in ctx.input().rows.clone() {
                    let key = row[0].clone();
                    let amount = row[1].clone();
                    let seen = ctx.exec("get", std::slice::from_ref(&key))?;
                    if seen.rows.is_empty() {
                        ctx.exec("init", &[key, amount])?;
                    } else {
                        ctx.exec("bump", &[amount, key])?;
                    }
                }
                Ok(())
            })
            .consumes("ev")
            .stmt("get", "SELECT key FROM totals WHERE key = ?")
            .stmt("init", "INSERT INTO totals VALUES (?, 1, ?)")
            .stmt(
                "bump",
                "UPDATE totals SET n = n + 1, total = total + ? WHERE key = ?",
            ),
        )?;
        Ok(())
    }

    fn workload(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| vec![Value::Int((i % 37) as i64), Value::Int((i % 11) as i64)])
            .collect()
    }

    #[test]
    fn partitioned_run_matches_single_partition() {
        // Single partition reference.
        let builder = SStoreBuilder::new();
        let mut single = builder.clone().build().unwrap();
        deploy(&mut single).unwrap();
        single.submit_batch("count_events", workload(500)).unwrap();
        let mut reference = single
            .query("SELECT key, n, total FROM totals", &[])
            .unwrap()
            .rows;
        reference.sort();

        // Four-way cluster.
        let mut cluster = Cluster::new(4, &builder, deploy).unwrap();
        cluster
            .submit_batch_partitioned("count_events", workload(500), 0)
            .unwrap();
        let mut merged = cluster
            .query_all("SELECT key, n, total FROM totals", &[])
            .unwrap();
        merged.sort();

        assert_eq!(merged, reference);
        assert!(cluster.total_committed() >= 4); // every non-empty shard ran
    }

    #[test]
    fn routing_is_stable_and_total() {
        let cluster = Cluster::new(3, &SStoreBuilder::new(), |_| Ok(())).unwrap();
        for i in 0..100i64 {
            let a = cluster.route(&Value::Int(i));
            let b = cluster.route(&Value::Int(i));
            assert_eq!(a, b);
            assert!(a < 3);
        }
    }

    #[test]
    fn empty_cluster_rejected() {
        assert!(Cluster::new(0, &SStoreBuilder::new(), |_| Ok(())).is_err());
    }

    #[test]
    fn per_partition_outcomes_reported() {
        let mut cluster = Cluster::new(2, &SStoreBuilder::new(), deploy).unwrap();
        let results = cluster
            .submit_batch_partitioned("count_events", workload(20), 0)
            .unwrap();
        assert_eq!(results.len(), 2);
        let total_tes: usize = results.iter().map(Vec::len).sum();
        assert!(total_tes >= 1);
    }
}
