//! Fluent configuration for an S-Store instance.

use crate::SStore;
use sstore_common::{DurabilityFormat, PartitionId, Result};
use sstore_engine::EeConfig;
use sstore_txn::log::{LogConfig, LogRetention};
use sstore_txn::{ExecMode, PeConfig};
use std::path::Path;

/// Builds an [`SStore`] partition.
///
/// Defaults: S-Store mode, PE and EE triggers on, serial-workflow decision
/// derived from shared writable tables, no durability, no simulated
/// round-trip latency.
#[derive(Debug, Clone, Default)]
pub struct SStoreBuilder {
    config: PeConfig,
    /// Format chosen by `log_format` before `durability` was called.
    pending_format: Option<DurabilityFormat>,
}

impl SStoreBuilder {
    /// Start from defaults.
    pub fn new() -> Self {
        SStoreBuilder::default()
    }

    /// Run as the paper's H-Store baseline (PE triggers off, client-driven
    /// invocation only, no workflow ordering guarantees).
    pub fn hstore_mode(mut self) -> Self {
        self.config.mode = ExecMode::HStore;
        self.config.pe_triggers_enabled = false;
        self
    }

    /// Toggle PE triggers (ablation E3a: push vs poll with S-Store
    /// ordering otherwise intact).
    pub fn pe_triggers(mut self, enabled: bool) -> Self {
        self.config.pe_triggers_enabled = enabled;
        self
    }

    /// Toggle EE triggers (ablation E3b).
    pub fn ee_triggers(mut self, enabled: bool) -> Self {
        self.config.ee.ee_triggers_enabled = enabled;
        self
    }

    /// Force (or forbid) whole-workflow serial execution per batch,
    /// overriding the shared-writable-table analysis.
    pub fn serial_workflow(mut self, serial: bool) -> Self {
        self.config.serial_workflow = Some(serial);
        self
    }

    /// Charge a busy-wait of `micros` per client↔PE round trip.
    pub fn client_trip_cost(mut self, micros: u64) -> Self {
        self.config.client_trip_cost_micros = micros;
        self
    }

    /// Charge a busy-wait of `micros` per PE→EE statement dispatch.
    pub fn ee_trip_cost(mut self, micros: u64) -> Self {
        self.config.ee_trip_cost_micros = micros;
        self
    }

    /// Sleep `micros` per PE→EE statement dispatch, modelling a *remote*
    /// EE round trip: the wait blocks this partition but releases the
    /// core, so cluster workers overlap it (unlike the busy-wait
    /// [`SStoreBuilder::ee_trip_cost`]).
    pub fn ee_trip_latency(mut self, micros: u64) -> Self {
        self.config.ee_trip_latency_micros = micros;
        self
    }

    /// Enable command logging + snapshots under `dir`, fsyncing every
    /// `group_commit_n` records. The on-disk format defaults to the
    /// length-prefixed binary codec; see [`SStoreBuilder::log_format`].
    pub fn durability(mut self, dir: impl AsRef<Path>, group_commit_n: usize) -> Self {
        let format = self.pending_format.unwrap_or_default();
        self.config.log = Some(
            LogConfig::with_group_commit(dir.as_ref().to_path_buf(), group_commit_n)
                .with_format(format),
        );
        self
    }

    /// Choose the durability serialization format: [`DurabilityFormat::Binary`]
    /// (CRC-framed, the default) or the legacy [`DurabilityFormat::Json`]
    /// (kept live for back-compat dirs and the E6 json-vs-binary
    /// benchmarks). Composes with [`SStoreBuilder::durability`] in either
    /// order; without `durability` the format has nothing to apply to.
    pub fn log_format(mut self, format: DurabilityFormat) -> Self {
        self.pending_format = Some(format);
        if let Some(log) = &mut self.config.log {
            log.format = format;
        }
        self
    }

    /// Snapshot + truncate the command log automatically after every
    /// `every_n_commits` committed TEs, at the next quiescent point.
    /// Requires [`SStoreBuilder::durability`]; replay-after-truncate
    /// recovers from the snapshot plus the log tail.
    pub fn log_retention(mut self, every_n_commits: u64) -> Self {
        self.config.retention = Some(LogRetention::every_n_commits(every_n_commits));
        self
    }

    /// Assign this partition's site id ([`crate::Cluster`] does this for
    /// each worker; standalone instances stay p0).
    pub fn partition_id(mut self, id: PartitionId) -> Self {
        self.config.partition = id;
        self
    }

    /// Replace the EE configuration wholesale.
    pub fn ee_config(mut self, ee: EeConfig) -> Self {
        self.config.ee = ee;
        self
    }

    /// The assembled [`PeConfig`] (for [`crate::recover`]).
    pub fn config(&self) -> &PeConfig {
        &self.config
    }

    /// Build the partition.
    pub fn build(self) -> Result<SStore> {
        SStore::new(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sstore_mode() {
        let b = SStoreBuilder::new();
        assert_eq!(b.config().mode, ExecMode::SStore);
        assert!(b.config().pe_triggers_enabled);
        assert!(b.config().ee.ee_triggers_enabled);
        b.build().unwrap();
    }

    #[test]
    fn hstore_mode_disables_pe_triggers() {
        let b = SStoreBuilder::new().hstore_mode();
        assert_eq!(b.config().mode, ExecMode::HStore);
        assert!(!b.config().pe_triggers_enabled);
    }

    #[test]
    fn knobs_apply() {
        let b = SStoreBuilder::new()
            .pe_triggers(false)
            .ee_triggers(false)
            .serial_workflow(true)
            .client_trip_cost(10)
            .ee_trip_cost(5)
            .durability("/tmp/sstore-builder-test", 8);
        let c = b.config();
        assert!(!c.pe_triggers_enabled);
        assert!(!c.ee.ee_triggers_enabled);
        assert_eq!(c.serial_workflow, Some(true));
        assert_eq!(c.client_trip_cost_micros, 10);
        assert_eq!(c.ee_trip_cost_micros, 5);
        assert_eq!(c.log.as_ref().unwrap().group_commit_n, 8);
        assert_eq!(
            c.log.as_ref().unwrap().format,
            DurabilityFormat::Binary,
            "binary is the default durability format"
        );
    }

    #[test]
    fn log_format_composes_with_durability_in_either_order() {
        let before = SStoreBuilder::new()
            .log_format(DurabilityFormat::Json)
            .durability("/tmp/sstore-builder-fmt-a", 4);
        assert_eq!(
            before.config().log.as_ref().unwrap().format,
            DurabilityFormat::Json
        );
        let after = SStoreBuilder::new()
            .durability("/tmp/sstore-builder-fmt-b", 4)
            .log_format(DurabilityFormat::Json);
        assert_eq!(
            after.config().log.as_ref().unwrap().format,
            DurabilityFormat::Json
        );
    }
}
