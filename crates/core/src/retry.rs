//! Client-side retry with exponential backoff and deterministic jitter.
//!
//! Admission control ([`crate::Cluster::try_submit_batch_async`]) sheds
//! with [`Error::Overloaded`] and supervision resolves work against a
//! restarting partition with [`Error::PartitionDown`]; both are
//! *retryable* — the submission provably did not execute, so the right
//! client response is to back off and resubmit. [`RetryPolicy`]
//! packages the standard loop: exponential delay doubling from `base`
//! up to `cap`, with uniform jitter drawn from the vendored
//! deterministic `rand` (seeded per policy, so a test's backoff
//! schedule replays exactly).
//!
//! Non-retryable errors (constraint violations, parse errors, IO
//! failures of unknown effect, timeouts) surface immediately — blind
//! resubmission could duplicate work.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sstore_common::{Error, Result};
use std::time::Duration;

/// Backoff-and-retry policy for retryable cluster errors.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 0 behaves as 1.
    pub max_attempts: u32,
    /// Delay before the first retry; doubles each retry.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Seed for the jitter stream (deterministic per policy value).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base: Duration::from_micros(200),
            cap: Duration::from_millis(50),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (1-based): exponential
    /// `base * 2^(attempt-1)` capped at `cap`, then jittered uniformly
    /// over `[delay/2, delay]` ("equal jitter" — keeps some spread
    /// without collapsing to zero sleep).
    pub fn backoff(&self, attempt: u32, rng: &mut StdRng) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(20));
        let capped = exp.min(self.cap).max(Duration::from_micros(1));
        let nanos = capped.as_nanos() as u64;
        let jittered = nanos / 2 + rng.random_range(0..nanos / 2 + 1);
        Duration::from_nanos(jittered)
    }

    /// Run `op` until it succeeds, fails non-retryably, or exhausts
    /// `max_attempts`. Sleeps the jittered backoff between attempts.
    pub fn run<T>(&self, mut op: impl FnMut() -> Result<T>) -> Result<T> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let attempts = self.max_attempts.max(1);
        let mut last: Option<Error> = None;
        for attempt in 1..=attempts {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() && attempt < attempts => {
                    std::thread::sleep(self.backoff(attempt, &mut rng));
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or_else(|| Error::Internal("retry loop ran zero attempts".into())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let p = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(16),
            ..RetryPolicy::default()
        };
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let seq_a: Vec<_> = (1..=8).map(|n| p.backoff(n, &mut a)).collect();
        let seq_b: Vec<_> = (1..=8).map(|n| p.backoff(n, &mut b)).collect();
        assert_eq!(seq_a, seq_b, "same seed, same jitter schedule");
        for (i, d) in seq_a.iter().enumerate() {
            let exp = p.base.saturating_mul(1 << i).min(p.cap);
            assert!(*d <= exp, "attempt {}: {d:?} > uncapped {exp:?}", i + 1);
            assert!(*d >= exp / 2, "attempt {}: {d:?} < half of {exp:?}", i + 1);
        }
        assert!(seq_a[5] >= seq_a[0], "later attempts back off further");
    }

    #[test]
    fn run_retries_retryable_until_success() {
        let p = RetryPolicy {
            base: Duration::from_micros(10),
            cap: Duration::from_micros(100),
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let out: Result<&str> = p.run(|| {
            calls += 1;
            if calls < 3 {
                Err(Error::Overloaded("queue full".into()))
            } else {
                Ok("done")
            }
        });
        assert_eq!(out.unwrap(), "done");
        assert_eq!(calls, 3);
    }

    #[test]
    fn run_surfaces_non_retryable_immediately() {
        let p = RetryPolicy::default();
        let mut calls = 0;
        let out: Result<()> = p.run(|| {
            calls += 1;
            Err(Error::Constraint("pk dup".into()))
        });
        assert_eq!(out.unwrap_err().kind(), "constraint");
        assert_eq!(calls, 1, "non-retryable errors must not be retried");
    }

    #[test]
    fn run_exhausts_attempts_with_last_error() {
        let p = RetryPolicy {
            max_attempts: 3,
            base: Duration::from_micros(10),
            cap: Duration::from_micros(50),
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let out: Result<()> = p.run(|| {
            calls += 1;
            Err(Error::PartitionDown("p1 restarting".into()))
        });
        assert_eq!(out.unwrap_err().kind(), "partition_down");
        assert_eq!(calls, 3);
    }
}
