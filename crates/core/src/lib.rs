//! # sstore-core — S-Store: a streaming NewSQL system
//!
//! The public API of this reproduction of *"S-Store: A Streaming NewSQL
//! System for Big Velocity Applications"* (VLDB 2014). S-Store combines
//! OLTP transactions with stream processing: streams, windows, triggers,
//! and workflows layered on an H-Store-style in-memory OLTP engine, with
//! ACID guarantees extended to dataflow graphs of stored procedures.
//!
//! ## Quick start
//!
//! ```
//! use sstore_core::{SStoreBuilder, ProcSpec};
//! use sstore_core::common::Value;
//!
//! let mut db = SStoreBuilder::new().build().unwrap();
//! db.ddl("CREATE STREAM readings (celsius INT)").unwrap();
//! db.ddl("CREATE STREAM alerts (celsius INT)").unwrap();
//!
//! // A one-procedure workflow: flag hot readings.
//! db.register(
//!     ProcSpec::new("monitor", |ctx| {
//!         for row in ctx.input().rows.clone() {
//!             if row[0].as_int()? > 40 {
//!                 ctx.emit(row)?;
//!             }
//!         }
//!         Ok(())
//!     })
//!     .consumes("readings")
//!     .emits("alerts"),
//! )
//! .unwrap();
//!
//! db.submit_batch("monitor", vec![vec![Value::Int(22)], vec![Value::Int(45)]])
//!     .unwrap();
//! let hot = db.drain_sink("alerts").unwrap();
//! assert_eq!(hot, vec![vec![Value::Int(45)]]);
//! ```
//!
//! ## Layering
//!
//! * [`sstore_txn`] — partition engine (PE): procedures, workflows, PE
//!   triggers, schedulers, command logging, recovery.
//! * [`sstore_engine`] — execution engine (EE): windows, EE triggers,
//!   stream lifecycle, garbage collection.
//! * [`sstore_sql`] / [`sstore_storage`] — SQL subset and the in-memory
//!   storage substrate.

pub mod builder;
pub mod client;
pub mod cluster;
pub mod coordinator;
pub mod ingest;
pub mod metrics;
pub mod obs_report;
pub mod retry;
pub mod router;
pub mod workloads;

pub use builder::SStoreBuilder;
pub use client::{ClientRequest, PipelinedClient, RequestKind};
pub use cluster::{Cluster, PartitionHealth};
pub use coordinator::{CoordState, CoordStats, Coordinator, CoordinatorLog, COORD_COMPACT_EVERY};
pub use metrics::{ClusterMetrics, PartitionMetrics};
pub use obs_report::ObsReport;
pub use retry::RetryPolicy;
pub use router::{PartitionOutcomes, RouteSpec, Router, Ticket};

// The operational surface, re-exported so applications depend on one crate.
pub use sstore_engine::{EeConfig, EeStats, TriggerEvent, TxnScratch};
pub use sstore_sql::exec::QueryResult;
pub use sstore_sql::ExecPath;
pub use sstore_txn::recovery::{recover, recover_with_decisions};
pub use sstore_txn::{
    CrossEdge, ExecMode, Invocation, PeConfig, PeStats, ProcContext, ProcSpec, RemoteForward,
    TxnOutcome, TxnStatus, Workflow,
};

/// The S-Store system handle: one single-sited partition, exactly the
/// configuration the paper demonstrates.
pub type SStore = sstore_txn::Partition;

/// Re-export of the shared data model (values, schemas, batches, ids).
pub mod common {
    pub use sstore_common::*;
}

/// Re-export of the durability configuration and command-log machinery
/// (the log types are public for benches and durability tooling).
pub use sstore_common::DurabilityFormat;
pub use sstore_txn::log::{read_log, CommandLog, LogConfig, LogRecord, LogRetention};
