//! Bounded multi-producer ingest queues that survive worker restarts.
//!
//! The partition workers used to drain `std::sync::mpsc` channels, which
//! tie queue lifetime to the receiver: a worker thread dying would
//! disconnect every sender, so supervision (kill the thread, recover the
//! partition, keep going) was impossible without re-wiring every sender
//! clone held by the cluster handle and the forward hub. [`IngestQueue`]
//! decouples the two — it is a plain `Arc`'d `Mutex<VecDeque>` +
//! condvars, so a restarted worker resumes `recv`ing from the exact
//! queue (and backlog) its predecessor left behind.
//!
//! The queue also gives admission control a primitive the channel never
//! had: [`IngestQueue::try_send_all`], an **all-or-nothing** reservation
//! across several partitions' queues. A sharded submission either lands
//! on every target queue or on none — shedding can never leave a batch
//! half-admitted.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Why a send was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The cluster began shutdown; no further work is accepted.
    Closed,
    /// The owning worker is permanently down (not restarting).
    Down,
}

/// Why a non-blocking send was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError {
    /// The queue is at capacity — admission control sheds.
    Full,
    /// The cluster began shutdown.
    Closed,
    /// The owning worker is permanently down.
    Down,
}

struct State<T> {
    q: VecDeque<T>,
    /// Cluster shutdown: senders fail, the worker drains what is left.
    closed: bool,
    /// The owning worker is permanently down: senders fail fast (the
    /// tombstone drain still consumes what was already queued).
    dead: bool,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

/// A bounded MPSC queue whose lifetime is independent of any consumer
/// thread. Cloning shares the queue.
pub struct IngestQueue<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for IngestQueue<T> {
    fn clone(&self) -> Self {
        IngestQueue {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> IngestQueue<T> {
    /// A queue admitting at most `cap` queued items (minimum 1).
    pub fn new(cap: usize) -> IngestQueue<T> {
        IngestQueue {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    q: VecDeque::new(),
                    closed: false,
                    dead: false,
                }),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
                cap: cap.max(1),
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.inner.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Blocking send: waits for a slot while the queue is full
    /// (backpressure), fails once the queue is closed or its worker is
    /// permanently down.
    pub fn send(&self, item: T) -> Result<(), SendError> {
        let mut st = self.lock();
        loop {
            if st.closed {
                return Err(SendError::Closed);
            }
            if st.dead {
                return Err(SendError::Down);
            }
            if st.q.len() < self.inner.cap {
                st.q.push_back(item);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            st = self
                .inner
                .not_full
                .wait(st)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Non-blocking send: refuses with [`TrySendError::Full`] instead of
    /// waiting — the admission-control primitive.
    pub fn try_send(&self, item: T) -> Result<(), TrySendError> {
        let mut st = self.lock();
        if st.closed {
            return Err(TrySendError::Closed);
        }
        if st.dead {
            return Err(TrySendError::Down);
        }
        if st.q.len() >= self.inner.cap {
            return Err(TrySendError::Full);
        }
        st.q.push_back(item);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// All-or-nothing non-blocking send across several queues: every
    /// `(queue, item)` pair is admitted, or none is. The caller must
    /// pass the queues in a globally consistent order (the cluster uses
    /// ascending partition id) — this function holds all the locks at
    /// once, and a consistent order is what rules out deadlock between
    /// concurrent submitters.
    pub fn try_send_all(sends: Vec<(&IngestQueue<T>, T)>) -> Result<(), TrySendError> {
        // Phase 1: lock everything and verify capacity + liveness.
        let mut guards: Vec<MutexGuard<'_, State<T>>> = Vec::with_capacity(sends.len());
        for (q, _) in &sends {
            let st = q.lock();
            if st.closed {
                return Err(TrySendError::Closed);
            }
            if st.dead {
                return Err(TrySendError::Down);
            }
            if st.q.len() >= q.inner.cap {
                return Err(TrySendError::Full);
            }
            guards.push(st);
        }
        // Phase 2: every queue has a free slot and is live — commit.
        for ((q, item), mut st) in sends.into_iter().zip(guards) {
            st.q.push_back(item);
            q.inner.not_empty.notify_one();
        }
        Ok(())
    }

    /// Blocking receive: `None` once the queue is closed *and* drained.
    /// A dead-marked queue still drains (the tombstone worker resolves
    /// queued work with typed errors).
    pub fn recv(&self) -> Option<T> {
        let mut st = self.lock();
        loop {
            if let Some(item) = st.q.pop_front() {
                self.inner.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self
                .inner
                .not_empty
                .wait(st)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Non-blocking receive (the coalescing lookahead).
    pub fn try_recv(&self) -> Option<T> {
        let mut st = self.lock();
        let item = st.q.pop_front();
        if item.is_some() {
            self.inner.not_full.notify_one();
        }
        item
    }

    /// Begin shutdown: all senders fail, `recv` drains then ends.
    pub fn close(&self) {
        let mut st = self.lock();
        st.closed = true;
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
    }

    /// Mark the owning worker permanently down: senders fail fast with
    /// [`SendError::Down`] / [`TrySendError::Down`] while the tombstone
    /// drain consumes what was already queued.
    pub fn mark_dead(&self) {
        let mut st = self.lock();
        st.dead = true;
        self.inner.not_full.notify_all();
    }

    /// Queued items right now.
    pub fn len(&self) -> usize {
        self.lock().q.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the queue is at capacity (an advisory check — the
    /// answer can be stale by the time the caller acts on it).
    pub fn is_full(&self) -> bool {
        self.lock().q.len() >= self.inner.cap
    }

    /// The capacity this queue was built with.
    pub fn cap(&self) -> usize {
        self.inner.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_capacity() {
        let q = IngestQueue::new(2);
        q.try_send(1).unwrap();
        q.try_send(2).unwrap();
        assert_eq!(q.try_send(3), Err(TrySendError::Full));
        assert_eq!(q.recv(), Some(1));
        q.try_send(3).unwrap();
        assert_eq!(q.recv(), Some(2));
        assert_eq!(q.recv(), Some(3));
        assert!(q.try_recv().is_none());
    }

    #[test]
    fn close_drains_then_ends() {
        let q = IngestQueue::new(4);
        q.send(1).unwrap();
        q.close();
        assert_eq!(q.send(2), Err(SendError::Closed));
        assert_eq!(q.recv(), Some(1));
        assert_eq!(q.recv(), None);
    }

    #[test]
    fn dead_fails_senders_but_still_drains() {
        let q = IngestQueue::new(4);
        q.send(1).unwrap();
        q.mark_dead();
        assert_eq!(q.send(2), Err(SendError::Down));
        assert_eq!(q.try_send(2), Err(TrySendError::Down));
        assert_eq!(q.recv(), Some(1));
    }

    #[test]
    fn try_send_all_is_all_or_nothing() {
        let a = IngestQueue::new(1);
        let b = IngestQueue::new(1);
        b.try_send(99).unwrap(); // b is now full
        let err = IngestQueue::try_send_all(vec![(&a, 1), (&b, 2)]).unwrap_err();
        assert_eq!(err, TrySendError::Full);
        assert!(a.is_empty(), "nothing may land when any target is full");
        assert_eq!(b.recv(), Some(99));
        IngestQueue::try_send_all(vec![(&a, 1), (&b, 2)]).unwrap();
        assert_eq!((a.recv(), b.recv()), (Some(1), Some(2)));
    }

    #[test]
    fn blocking_send_waits_for_slot() {
        let q = IngestQueue::new(1);
        q.send(1).unwrap();
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.send(2));
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(q.recv(), Some(1));
        h.join().unwrap().unwrap();
        assert_eq!(q.recv(), Some(2));
    }
}
