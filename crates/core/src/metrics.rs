//! Throughput measurement helpers for the demo dashboards and benches.

use std::time::Instant;

/// Counts events against wall-clock time.
#[derive(Debug, Clone)]
pub struct Throughput {
    start: Instant,
    events: u64,
}

impl Default for Throughput {
    fn default() -> Self {
        Throughput::new()
    }
}

impl Throughput {
    /// Start measuring now.
    pub fn new() -> Self {
        Throughput {
            start: Instant::now(),
            events: 0,
        }
    }

    /// Record `n` events.
    pub fn add(&mut self, n: u64) {
        self.events += n;
    }

    /// Events recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Elapsed seconds since construction/reset.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Events per second.
    pub fn per_sec(&self) -> f64 {
        let secs = self.elapsed_secs();
        if secs <= 0.0 {
            0.0
        } else {
            self.events as f64 / secs
        }
    }

    /// Reset the window (for rolling displays).
    pub fn reset(&mut self) {
        self.start = Instant::now();
        self.events = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_rates() {
        let mut t = Throughput::new();
        t.add(10);
        t.add(5);
        assert_eq!(t.events(), 15);
        assert!(t.per_sec() > 0.0);
        t.reset();
        assert_eq!(t.events(), 0);
    }
}
