//! Per-partition and cluster-wide counters for dashboards, benches, and
//! the observability report ([`crate::Cluster::observability_report`]
//! embeds a [`ClusterMetrics`] capture verbatim, so both surfaces share
//! one set of definitions). Throughput is derived in the report
//! (`committed_per_s` over the report window) rather than kept as a
//! separate stopwatch type.

use crate::cluster::PartitionHealth;
use crate::coordinator::CoordStats;
use serde::{Deserialize, Serialize};
use sstore_common::{PartitionId, RowMetrics};

/// Point-in-time counters for one partition, captured on its worker
/// thread by [`crate::Cluster::metrics`] (so the numbers are consistent
/// with everything queued before the capture).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionMetrics {
    /// The site these counters belong to.
    pub partition: PartitionId,
    /// Committed TEs.
    pub committed: u64,
    /// Border batches submitted to this partition.
    pub batches_submitted: u64,
    /// Batches whose whole workflow committed.
    pub batches_completed: u64,
    /// Coalesced scheduler passes (several queued batches, one PE entry).
    pub group_submissions: u64,
    /// Border batches that arrived inside a coalesced group.
    pub batches_coalesced: u64,
    /// Client↔PE round trips charged.
    pub client_pe_trips: u64,
    /// 2PC fragments prepared on this partition.
    pub twopc_prepares: u64,
    /// Prepared fragments committed on the coordinator's decision.
    pub twopc_commits: u64,
    /// Prepared fragments rolled back.
    pub twopc_aborts: u64,
    /// Batches pushed onto cross-partition workflow edges.
    pub forwards_out: u64,
    /// Forwarded batches accepted from other partitions.
    pub forwards_in: u64,
    /// Forwarded batches dropped as duplicates (exactly-once dedup).
    pub forwards_deduped: u64,
    /// Single-partition TEs executed speculatively while a prepared 2PC
    /// fragment awaited its decision.
    pub speculative_tes: u64,
    /// Retention snapshots written as full base images.
    pub snapshots_full: u64,
    /// Retention snapshots written as incremental deltas.
    pub snapshots_delta: u64,
    /// Mean committed-TE latency in microseconds.
    pub mean_latency_us: f64,
    /// False when the capture job could not run (the partition's worker
    /// is down or restarting): every counter above is zero, not a
    /// measurement.
    pub available: bool,
}

impl PartitionMetrics {
    /// Placeholder for a partition whose worker could not answer the
    /// capture (down or restarting): all-zero counters, `available:
    /// false`.
    pub fn unavailable(partition: PartitionId) -> PartitionMetrics {
        PartitionMetrics {
            partition,
            committed: 0,
            batches_submitted: 0,
            batches_completed: 0,
            group_submissions: 0,
            batches_coalesced: 0,
            client_pe_trips: 0,
            twopc_prepares: 0,
            twopc_commits: 0,
            twopc_aborts: 0,
            forwards_out: 0,
            forwards_in: 0,
            forwards_deduped: 0,
            speculative_tes: 0,
            snapshots_full: 0,
            snapshots_delta: 0,
            mean_latency_us: 0.0,
            available: false,
        }
    }

    /// Snapshot a partition's counters.
    pub fn capture(p: &sstore_txn::Partition) -> PartitionMetrics {
        let s = p.stats();
        PartitionMetrics {
            partition: s.partition,
            committed: s.committed,
            batches_submitted: s.batches_submitted,
            batches_completed: s.batches_completed,
            group_submissions: s.group_submissions,
            batches_coalesced: s.batches_coalesced,
            client_pe_trips: s.client_pe_trips,
            twopc_prepares: s.twopc_prepares,
            twopc_commits: s.twopc_commits,
            twopc_aborts: s.twopc_aborts,
            forwards_out: s.forwards_out,
            forwards_in: s.forwards_in,
            forwards_deduped: s.forwards_deduped,
            speculative_tes: s.speculative_tes,
            snapshots_full: s.snapshots_full,
            snapshots_delta: s.snapshots_delta,
            mean_latency_us: s.mean_latency_us(),
            available: true,
        }
    }
}

/// Cluster-wide view: one [`PartitionMetrics`] per site, in partition
/// order, plus the process-wide row-sharing counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterMetrics {
    /// Per-partition captures.
    pub partitions: Vec<PartitionMetrics>,
    /// Row pipeline behaviour (shares vs deep copies vs COW breaks) at
    /// capture time. Process-wide: the counters are global atomics, so
    /// they cover every partition worker in this process.
    pub rows: RowMetrics,
    /// The transaction coordinator's counters (fast-path vs 2PC).
    pub coordinator: CoordStats,
    /// Supervision state of each partition worker, in partition order.
    pub health: Vec<PartitionHealth>,
    /// Submissions refused by admission control (`try_submit_batch_async`
    /// on a full queue) over the cluster's lifetime.
    pub sheds: u64,
    /// Supervised worker restarts over the cluster's lifetime.
    pub worker_restarts: u64,
}

impl ClusterMetrics {
    /// Sum of committed TEs across partitions.
    pub fn total_committed(&self) -> u64 {
        self.partitions.iter().map(|p| p.committed).sum()
    }

    /// Sum of cross-partition edge forwards accepted, cluster-wide.
    pub fn total_forwards(&self) -> u64 {
        self.partitions.iter().map(|p| p.forwards_in).sum()
    }

    /// Border batches that entered the PE inside a coalesced group,
    /// cluster-wide — the PE-boundary round trips the runtime saved.
    pub fn total_coalesced(&self) -> u64 {
        self.partitions.iter().map(|p| p.batches_coalesced).sum()
    }

    /// Load imbalance: max per-partition committed TEs over the mean
    /// (1.0 = perfectly even; meaningful only after some commits).
    ///
    /// Only **available** captures participate: a partition whose worker
    /// was down at capture time contributes an all-zero placeholder, and
    /// counting those zeros into the mean would report skew where the
    /// live partitions are actually balanced.
    pub fn skew(&self) -> f64 {
        let live: Vec<u64> = self
            .partitions
            .iter()
            .filter(|p| p.available)
            .map(|p| p.committed)
            .collect();
        let total: u64 = live.iter().sum();
        if total == 0 || live.is_empty() {
            return 1.0;
        }
        let max = *live.iter().max().expect("non-empty");
        let mean = total as f64 / live.len() as f64;
        max as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_metrics_aggregate() {
        let pm = |partition, committed, coalesced| PartitionMetrics {
            partition: PartitionId::new(partition),
            committed,
            batches_submitted: 0,
            batches_completed: 0,
            group_submissions: 0,
            batches_coalesced: coalesced,
            client_pe_trips: 0,
            twopc_prepares: 0,
            twopc_commits: 0,
            twopc_aborts: 0,
            forwards_out: 0,
            forwards_in: 2,
            forwards_deduped: 0,
            speculative_tes: 0,
            snapshots_full: 0,
            snapshots_delta: 0,
            mean_latency_us: 0.0,
            available: true,
        };
        let m = ClusterMetrics {
            partitions: vec![pm(0, 30, 4), pm(1, 10, 0)],
            rows: RowMetrics::snapshot(),
            coordinator: CoordStats::default(),
            health: vec![PartitionHealth::Healthy; 2],
            sheds: 0,
            worker_restarts: 0,
        };
        assert_eq!(m.total_committed(), 40);
        assert_eq!(m.total_coalesced(), 4);
        assert_eq!(m.total_forwards(), 4);
        assert!((m.skew() - 1.5).abs() < 1e-9);
        let empty = ClusterMetrics {
            partitions: vec![],
            rows: RowMetrics::snapshot(),
            coordinator: CoordStats::default(),
            health: vec![],
            sheds: 0,
            worker_restarts: 0,
        };
        assert_eq!(empty.skew(), 1.0);
        let ghost = PartitionMetrics::unavailable(PartitionId::new(3));
        assert!(!ghost.available);
        assert_eq!(ghost.committed, 0);
    }

    #[test]
    fn skew_ignores_unavailable_placeholders() {
        let pm = |partition, committed| PartitionMetrics {
            committed,
            ..PartitionMetrics::unavailable(PartitionId::new(partition))
        };
        let mut balanced_with_ghost = ClusterMetrics {
            partitions: vec![pm(0, 20), pm(1, 20), pm(2, 0)],
            rows: RowMetrics::snapshot(),
            coordinator: CoordStats::default(),
            health: vec![
                PartitionHealth::Healthy,
                PartitionHealth::Healthy,
                PartitionHealth::Down,
            ],
            sheds: 0,
            worker_restarts: 0,
        };
        balanced_with_ghost.partitions[0].available = true;
        balanced_with_ghost.partitions[1].available = true;
        // Two live partitions at 20 each: perfectly even, regardless of
        // the down partition's zero placeholder.
        assert!((balanced_with_ghost.skew() - 1.0).abs() < 1e-9);
    }
}
