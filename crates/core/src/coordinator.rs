//! The cross-partition transaction coordinator.
//!
//! H-Store runs multi-sited transactions under a blocking two-phase
//! commit: the coordinator fragments the transaction across the owning
//! partitions, collects votes, and makes the global outcome durable
//! before any participant may commit. S-Store inherits that protocol for
//! TEs whose input batch routes to more than one partition (paper §2 —
//! the demo stays single-sited; this module is the piece that turns N
//! independent stores into one database).
//!
//! Division of labour:
//!
//! * [`Coordinator`] — gtid assignment, the decision step, and counters.
//!   Owned by `Cluster` behind a mutex: multi-sited transactions are
//!   serialized (as in H-Store, where a multi-partition transaction
//!   blocks the cluster), which also rules out distributed deadlock
//!   between concurrent prepare rounds.
//! * [`CoordinatorLog`] — the durable decision log (`coord.log` in the
//!   cluster's durability dir). `append_decision` fsyncs **before** any
//!   commit decision is sent: that write is the commit point of the
//!   protocol. Recovery reads it to resolve participants' in-doubt
//!   fragments; a gtid absent from it can never have committed anywhere,
//!   so presumed abort is safe.
//!
//! The participant half (prepare/decide, undo held open, in-doubt replay)
//! lives in `sstore_txn::partition`; the message plumbing over the worker
//! ingest queues lives in [`crate::cluster`].

use sstore_common::codec::{self, FrameRead};
use sstore_common::fault;
use sstore_common::{Error, PartitionId, Result};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Counters for the coordinator's view of the cluster's transactions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoordStats {
    /// Submissions of multi-partition-declared procedures whose rows all
    /// routed to one partition: 2PC skipped entirely, the PR 2 ingest
    /// path ran byte-identically (no extra messages or log records).
    pub single_partition_fast_path: u64,
    /// Multi-sited transactions run under 2PC.
    pub multi_partition_txns: u64,
    /// Prepare messages sent across all 2PC rounds.
    pub prepares_sent: u64,
    /// Global commits decided.
    pub commits: u64,
    /// Global aborts decided (any participant voted no).
    pub aborts: u64,
}

/// Append-only durable decision log: `[SSCO magic + version]` then one
/// CRC32 frame per decision, each encoded straight into the frame buffer
/// (no serde tree). A torn trailing frame is an interrupted decision
/// write — the decision was never acknowledged, so dropping it (and
/// presuming abort) is exactly correct.
#[derive(Debug)]
pub struct CoordinatorLog {
    file: File,
    path: PathBuf,
}

impl CoordinatorLog {
    /// Open (creating if absent) `coord.log` under `dir`.
    pub fn open(dir: &Path) -> Result<CoordinatorLog> {
        fs::create_dir_all(dir)?;
        let path = dir.join("coord.log");
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        if file.metadata()?.len() == 0 {
            let mut header = Vec::new();
            codec::put_file_header(&mut header, codec::COORD_MAGIC);
            let mut f = &file;
            f.write_all(&header)?;
            file.sync_data()?;
        }
        Ok(CoordinatorLog { file, path })
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Durably record the global outcome of `gtid` — for a commit, this
    /// fsync IS the commit point: participants only learn a commit that
    /// is already on disk here.
    ///
    /// Failure atomicity: a 2PC decision must be *provably durable* or
    /// *provably absent* — a record of unknown durability would let live
    /// participants and a later recovery resolve the same gtid
    /// differently. On a write/sync failure the file is rolled back to
    /// its pre-append length (removing the maybe-persisted bytes) before
    /// `Err` is returned; if even that rollback fails, the error is
    /// [`Error::Recovery`]-grade fatal and the caller must not hand *any*
    /// outcome to participants.
    pub fn append_decision(
        &mut self,
        gtid: u64,
        commit: bool,
        participants: &[PartitionId],
    ) -> Result<()> {
        codec::count_direct_meta_encode();
        let mut buf = Vec::new();
        let frame = codec::begin_frame(&mut buf);
        codec::put_uvarint(&mut buf, gtid);
        buf.push(commit as u8);
        codec::put_uvarint(&mut buf, participants.len() as u64);
        for p in participants {
            codec::put_uvarint(&mut buf, p.raw() as u64);
        }
        codec::end_frame(&mut buf, frame);
        // Kill point: every participant voted, the decision exists only
        // in memory. A crash here leaves the gtid in doubt — recovery
        // presumes abort.
        fault::kill_point("pre-commit-point-fsync");
        let old_len = self.file.metadata()?.len();
        let result = self
            .file
            .write_all(&buf)
            .and_then(|_| self.file.sync_data());
        match result {
            Ok(()) => {
                // Kill point: the fsync above IS the commit point — the
                // outcome is decided but no participant has heard it.
                // Recovery must finish the second phase from this log.
                fault::kill_point("post-commit-point-fsync");
                Ok(())
            }
            Err(write_err) => {
                let rolled_back = self
                    .file
                    .set_len(old_len)
                    .and_then(|_| self.file.sync_data());
                match rolled_back {
                    Ok(()) => Err(Error::Io(format!(
                        "decision for gtid {gtid} not recorded (rolled back): {write_err}"
                    ))),
                    Err(trunc_err) => Err(Error::Recovery(format!(
                        "decision for gtid {gtid} has UNKNOWN durability: write failed \
                         ({write_err}) and rollback failed ({trunc_err}); no outcome may \
                         be released until the log is inspected"
                    ))),
                }
            }
        }
    }

    /// Read every decision in `dir/coord.log` (`gtid → commit?`). Missing
    /// or empty file reads empty; a torn trailing frame is dropped (an
    /// unacknowledged decision — presumed abort covers it); mid-file
    /// corruption is a recovery error.
    pub fn read(dir: &Path) -> Result<HashMap<u64, bool>> {
        let path = dir.join("coord.log");
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(HashMap::new()),
            Err(e) => return Err(e.into()),
        };
        if bytes.is_empty() {
            return Ok(HashMap::new());
        }
        let mut r = codec::Reader::new(&bytes);
        codec::check_file_header(&mut r, codec::COORD_MAGIC)
            .map_err(|e| Error::Recovery(format!("coordinator log header: {e}")))?;
        let mut out = HashMap::new();
        loop {
            match codec::read_frame(&mut r) {
                FrameRead::Frame(payload) => {
                    let mut pr = codec::Reader::new(payload);
                    let gtid = pr.uvarint()?;
                    let commit = pr.u8()? != 0;
                    // Participant list: present for operators, not needed
                    // for resolution.
                    out.insert(gtid, commit);
                }
                FrameRead::Eof => break,
                FrameRead::Torn { offset } => {
                    eprintln!(
                        "sstore: {}: dropping torn trailing decision at byte {offset} \
                         (never acknowledged; presumed abort applies)",
                        path.display()
                    );
                    break;
                }
                FrameRead::Corrupt { offset, detail } => {
                    return Err(Error::Recovery(format!(
                        "coordinator log corrupted at byte {offset}: {detail}"
                    )));
                }
            }
        }
        Ok(out)
    }
}

/// Coordinator state: the gtid sequence, the optional decision log, and
/// counters. One per [`crate::Cluster`], behind a mutex.
#[derive(Debug)]
pub struct Coordinator {
    next_gtid: u64,
    log: Option<CoordinatorLog>,
    stats: CoordStats,
}

impl Coordinator {
    /// Build a coordinator resuming after the highest previously-decided
    /// gtid.
    pub fn new(log: Option<CoordinatorLog>, next_gtid: u64) -> Coordinator {
        Coordinator {
            next_gtid: next_gtid.max(1),
            log,
            stats: CoordStats::default(),
        }
    }

    /// Allocate the next global transaction id.
    pub fn begin(&mut self) -> u64 {
        let gtid = self.next_gtid;
        self.next_gtid += 1;
        gtid
    }

    /// Record the global outcome, durably when a decision log is
    /// configured (the fsync is the commit point).
    pub fn decide(&mut self, gtid: u64, commit: bool, participants: &[PartitionId]) -> Result<()> {
        if let Some(log) = &mut self.log {
            log.append_decision(gtid, commit, participants)?;
        }
        if commit {
            self.stats.commits += 1;
        } else {
            self.stats.aborts += 1;
        }
        Ok(())
    }

    /// Count a single-partition fast-path submission.
    pub fn note_fast_path(&mut self) {
        self.stats.single_partition_fast_path += 1;
    }

    /// Count a multi-sited transaction and its prepare fan-out.
    pub fn note_multi_partition(&mut self, participants: usize) {
        self.stats.multi_partition_txns += 1;
        self.stats.prepares_sent += participants as u64;
    }

    /// Current counters.
    pub fn stats(&self) -> CoordStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sstore-coord-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        fs::create_dir_all(&p).unwrap();
        p
    }

    #[test]
    fn decisions_round_trip() {
        let dir = tempdir("rt");
        let mut log = CoordinatorLog::open(&dir).unwrap();
        log.append_decision(1, true, &[PartitionId::new(0), PartitionId::new(2)])
            .unwrap();
        log.append_decision(2, false, &[PartitionId::new(1)])
            .unwrap();
        drop(log);
        // Reopen appends after the existing header.
        let mut log = CoordinatorLog::open(&dir).unwrap();
        log.append_decision(3, true, &[]).unwrap();
        drop(log);
        let decisions = CoordinatorLog::read(&dir).unwrap();
        assert_eq!(decisions.len(), 3);
        assert_eq!(decisions.get(&1), Some(&true));
        assert_eq!(decisions.get(&2), Some(&false));
        assert_eq!(decisions.get(&3), Some(&true));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_log_reads_empty_and_torn_tail_drops() {
        let dir = tempdir("torn");
        assert!(CoordinatorLog::read(&dir).unwrap().is_empty());
        let mut log = CoordinatorLog::open(&dir).unwrap();
        log.append_decision(9, true, &[PartitionId::new(0)])
            .unwrap();
        drop(log);
        // Simulate a crash mid-way through the next decision's write.
        let path = dir.join("coord.log");
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&[5, 0, 0, 0, 0xAB]); // half a frame header + garbage
        fs::write(&path, &bytes).unwrap();
        let decisions = CoordinatorLog::read(&dir).unwrap();
        assert_eq!(decisions.len(), 1);
        assert_eq!(decisions.get(&9), Some(&true));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn coordinator_sequences_and_counts() {
        let mut c = Coordinator::new(None, 5);
        assert_eq!(c.begin(), 5);
        assert_eq!(c.begin(), 6);
        c.note_fast_path();
        c.note_multi_partition(3);
        c.decide(5, true, &[]).unwrap();
        c.decide(6, false, &[]).unwrap();
        let s = c.stats();
        assert_eq!(s.single_partition_fast_path, 1);
        assert_eq!(s.multi_partition_txns, 1);
        assert_eq!(s.prepares_sent, 3);
        assert_eq!(s.commits, 1);
        assert_eq!(s.aborts, 1);
    }
}
