//! The cross-partition transaction coordinator.
//!
//! H-Store runs multi-sited transactions under a blocking two-phase
//! commit: the coordinator fragments the transaction across the owning
//! partitions, collects votes, and makes the global outcome durable
//! before any participant may commit. S-Store inherits that protocol for
//! TEs whose input batch routes to more than one partition (paper §2 —
//! the demo stays single-sited; this module is the piece that turns N
//! independent stores into one database).
//!
//! Division of labour:
//!
//! * [`Coordinator`] — gtid assignment, the decision step, and counters.
//!   Owned by `Cluster` behind a mutex: multi-sited transactions are
//!   serialized (as in H-Store, where a multi-partition transaction
//!   blocks the cluster), which also rules out distributed deadlock
//!   between concurrent prepare rounds.
//! * [`CoordinatorLog`] — the durable decision log (`coord.log` in the
//!   cluster's durability dir). `append_decision` fsyncs **before** any
//!   commit decision is sent: that write is the commit point of the
//!   protocol. Recovery reads it to resolve participants' in-doubt
//!   fragments; a gtid absent from it can never have committed anywhere,
//!   so presumed abort is safe — and therefore only *commit* decisions
//!   are ever written (an abort record would buy nothing but an fsync).
//!
//! The log is kept short by **checkpoint compaction**: once every
//! participant of every decided gtid has durably logged its own local
//! `Decision` record (the cluster proves this with a worker barrier),
//! the coordinator's records are redundant and the file is rewritten as
//! a single checkpoint frame carrying the gtid sequence floor. Startup
//! then reads O(recent decisions) instead of O(all time).
//!
//! The participant half (prepare/decide, undo held open, in-doubt replay)
//! lives in `sstore_txn::partition`; the message plumbing over the worker
//! ingest queues lives in [`crate::cluster`].

use sstore_common::codec::{self, FrameRead};
use sstore_common::fault;
use sstore_common::{Error, PartitionId, Result};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Counters for the coordinator's view of the cluster's transactions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CoordStats {
    /// Submissions of multi-partition-declared procedures whose rows all
    /// routed to one partition: 2PC skipped entirely, the PR 2 ingest
    /// path ran byte-identically (no extra messages or log records).
    pub single_partition_fast_path: u64,
    /// Multi-sited transactions run under 2PC.
    pub multi_partition_txns: u64,
    /// Prepare messages sent across all 2PC rounds.
    pub prepares_sent: u64,
    /// Global commits decided.
    pub commits: u64,
    /// Global aborts decided (any participant voted no). Presumed abort
    /// makes these memory-only: no record is written, no fsync paid.
    pub aborts: u64,
    /// Checkpoint compactions of the decision log.
    pub log_compactions: u64,
}

/// Everything startup needs from `coord.log`: the decided outcomes still
/// on file and the gtid sequence resume point (already folded across
/// checkpoint frames and decision records).
#[derive(Debug, Clone, Default)]
pub struct CoordState {
    /// `gtid → commit?` for every decision record in the log.
    pub decisions: HashMap<u64, bool>,
    /// First gtid safe to allocate: past every checkpoint floor and every
    /// decided gtid (at least 1). Partitions may have prepared higher
    /// gtids that never reached a decision — the cluster folds those in
    /// via `max_gtid_seen`.
    pub next_gtid: u64,
}

// v3 record tags (one byte opening each frame payload). v2 files carry
// untagged decision payloads; `CoordinatorLog::open` sniffs the header so
// appends to an old file keep the format its readers expect.
const TAG_DECISION: u8 = 0;
const TAG_CHECKPOINT: u8 = 1;

/// Append-only durable decision log: `[SSCO magic + version]` then one
/// CRC32 frame per decision, each encoded straight into the frame buffer
/// (no serde tree). A torn trailing frame is an interrupted decision
/// write — the decision was never acknowledged, so dropping it (and
/// presuming abort) is exactly correct.
#[derive(Debug)]
pub struct CoordinatorLog {
    file: File,
    path: PathBuf,
    /// Header version of the file being appended to. v2 files take
    /// untagged decision records (their readers know nothing else); v3
    /// files take tagged records and checkpoint frames.
    version: u32,
}

impl CoordinatorLog {
    /// Open (creating if absent) `coord.log` under `dir`.
    pub fn open(dir: &Path) -> Result<CoordinatorLog> {
        fs::create_dir_all(dir)?;
        let path = dir.join("coord.log");
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let version = if file.metadata()?.len() == 0 {
            let mut header = Vec::new();
            codec::put_file_header(&mut header, codec::COORD_MAGIC);
            let mut f = &file;
            f.write_all(&header)?;
            file.sync_data()?;
            codec::CODEC_VERSION
        } else {
            // Appends must match the format the existing header declares.
            let head = fs::read(&path)?;
            let mut r = codec::Reader::new(&head[..head.len().min(codec::FILE_HEADER_LEN)]);
            codec::check_file_header(&mut r, codec::COORD_MAGIC)
                .map_err(|e| Error::Recovery(format!("coordinator log header: {e}")))?
        };
        Ok(CoordinatorLog {
            file,
            path,
            version,
        })
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Durably record the global outcome of `gtid` — for a commit, this
    /// fsync IS the commit point: participants only learn a commit that
    /// is already on disk here.
    ///
    /// Failure atomicity: a 2PC decision must be *provably durable* or
    /// *provably absent* — a record of unknown durability would let live
    /// participants and a later recovery resolve the same gtid
    /// differently. On a write/sync failure the file is rolled back to
    /// its pre-append length (removing the maybe-persisted bytes) before
    /// `Err` is returned; if even that rollback fails, the error is
    /// [`Error::Recovery`]-grade fatal and the caller must not hand *any*
    /// outcome to participants.
    pub fn append_decision(
        &mut self,
        gtid: u64,
        commit: bool,
        participants: &[PartitionId],
    ) -> Result<()> {
        codec::count_direct_meta_encode();
        let mut buf = Vec::new();
        let frame = codec::begin_frame(&mut buf);
        if self.version >= 3 {
            buf.push(TAG_DECISION);
        }
        codec::put_uvarint(&mut buf, gtid);
        buf.push(commit as u8);
        codec::put_uvarint(&mut buf, participants.len() as u64);
        for p in participants {
            codec::put_uvarint(&mut buf, p.raw() as u64);
        }
        codec::end_frame(&mut buf, frame);
        // Kill point: every participant voted, the decision exists only
        // in memory. A crash here leaves the gtid in doubt — recovery
        // presumes abort.
        fault::kill_point("pre-commit-point-fsync");
        let old_len = self.file.metadata()?.len();
        // Fault point `coord-log-io-error`: an injected write failure
        // takes the same rollback path as a real one — the decision must
        // end up provably absent, and the round aborts cleanly.
        let result: std::result::Result<(), String> = match fault::io_error("coord-log-io-error") {
            Some(e) => Err(e.to_string()),
            None => self
                .file
                .write_all(&buf)
                .and_then(|_| self.file.sync_data())
                .map_err(|e| e.to_string()),
        };
        match result {
            Ok(()) => {
                // Kill point: the fsync above IS the commit point — the
                // outcome is decided but no participant has heard it.
                // Recovery must finish the second phase from this log.
                fault::kill_point("post-commit-point-fsync");
                Ok(())
            }
            Err(write_err) => {
                let rolled_back = self
                    .file
                    .set_len(old_len)
                    .and_then(|_| self.file.sync_data());
                match rolled_back {
                    Ok(()) => Err(Error::Io(format!(
                        "decision for gtid {gtid} not recorded (rolled back): {write_err}"
                    ))),
                    Err(trunc_err) => Err(Error::Recovery(format!(
                        "decision for gtid {gtid} has UNKNOWN durability: write failed \
                         ({write_err}) and rollback failed ({trunc_err}); no outcome may \
                         be released until the log is inspected"
                    ))),
                }
            }
        }
    }

    /// Read `dir/coord.log`: every decision still on file plus the gtid
    /// resume floor (checkpoint frames fold in here — after a compaction
    /// the file is one checkpoint, so this is O(recent), not O(all
    /// time)). Missing or empty file reads empty; a torn trailing frame
    /// is dropped (an unacknowledged decision — presumed abort covers
    /// it); mid-file corruption is a recovery error.
    pub fn read(dir: &Path) -> Result<CoordState> {
        let path = dir.join("coord.log");
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(CoordState {
                    next_gtid: 1,
                    ..CoordState::default()
                })
            }
            Err(e) => return Err(e.into()),
        };
        if bytes.is_empty() {
            return Ok(CoordState {
                next_gtid: 1,
                ..CoordState::default()
            });
        }
        let mut r = codec::Reader::new(&bytes);
        let version = codec::check_file_header(&mut r, codec::COORD_MAGIC)
            .map_err(|e| Error::Recovery(format!("coordinator log header: {e}")))?;
        let mut decisions = HashMap::new();
        let mut floor = 0u64;
        loop {
            match codec::read_frame(&mut r) {
                FrameRead::Frame(payload) => {
                    let mut pr = codec::Reader::new(payload);
                    let tag = if version >= 3 { pr.u8()? } else { TAG_DECISION };
                    match tag {
                        TAG_DECISION => {
                            let gtid = pr.uvarint()?;
                            let commit = pr.u8()? != 0;
                            // Participant list: present for operators, not
                            // needed for resolution.
                            decisions.insert(gtid, commit);
                        }
                        TAG_CHECKPOINT => {
                            floor = floor.max(pr.uvarint()?);
                        }
                        t => {
                            return Err(Error::Recovery(format!(
                                "coordinator log: unknown record tag {t}"
                            )))
                        }
                    }
                }
                FrameRead::Eof => break,
                FrameRead::Torn { offset } => {
                    sstore_common::slog!(
                        Warn;
                        "{}: dropping torn trailing decision at byte {offset} \
                         (never acknowledged; presumed abort applies)",
                        path.display()
                    );
                    break;
                }
                FrameRead::Corrupt { offset, detail } => {
                    return Err(Error::Recovery(format!(
                        "coordinator log corrupted at byte {offset}: {detail}"
                    )));
                }
            }
        }
        let past_decided = decisions.keys().max().map_or(0, |g| g + 1);
        Ok(CoordState {
            decisions,
            next_gtid: floor.max(past_decided).max(1),
        })
    }

    /// Rewrite the log as a single checkpoint frame carrying `next_gtid`.
    ///
    /// Safety contract: the caller must have proven that every
    /// participant of every gtid below `next_gtid` holds a durable local
    /// `Decision` record (the cluster runs a worker barrier after the
    /// decide fan-out) — only then are this log's records redundant.
    /// Write-temp-then-rename: a crash leaves either the old file or the
    /// new one, both complete.
    pub fn compact(&mut self, next_gtid: u64) -> Result<()> {
        let mut buf = Vec::new();
        codec::put_file_header(&mut buf, codec::COORD_MAGIC);
        let frame = codec::begin_frame(&mut buf);
        buf.push(TAG_CHECKPOINT);
        codec::put_uvarint(&mut buf, next_gtid);
        codec::end_frame(&mut buf, frame);
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &self.path)?;
        // The old handle points at the unlinked inode; reopen for append.
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.version = codec::CODEC_VERSION;
        Ok(())
    }
}

/// Coordinator state: the gtid sequence, the optional decision log, and
/// counters. One per [`crate::Cluster`], behind a mutex.
#[derive(Debug)]
pub struct Coordinator {
    next_gtid: u64,
    log: Option<CoordinatorLog>,
    stats: CoordStats,
    /// Decision records appended since the last compaction (commits only
    /// — aborts never hit the file).
    records_since_compaction: u64,
}

/// Appended decision records that trigger a checkpoint compaction of the
/// coordinator log (see [`Coordinator::should_compact`]).
pub const COORD_COMPACT_EVERY: u64 = 256;

impl Coordinator {
    /// Build a coordinator resuming after the highest previously-decided
    /// gtid.
    pub fn new(log: Option<CoordinatorLog>, next_gtid: u64) -> Coordinator {
        Coordinator {
            next_gtid: next_gtid.max(1),
            log,
            stats: CoordStats::default(),
            records_since_compaction: 0,
        }
    }

    /// Allocate the next global transaction id.
    pub fn begin(&mut self) -> u64 {
        let gtid = self.next_gtid;
        self.next_gtid += 1;
        gtid
    }

    /// Record the global outcome. A commit is written durably when a
    /// decision log is configured — that fsync is the commit point. An
    /// abort writes **nothing** (presumed abort): recovery treats a gtid
    /// absent from the log as aborted, so the record would buy nothing,
    /// and skipping it removes an fsync from every abort round.
    pub fn decide(&mut self, gtid: u64, commit: bool, participants: &[PartitionId]) -> Result<()> {
        if commit {
            if let Some(log) = &mut self.log {
                log.append_decision(gtid, true, participants)?;
                self.records_since_compaction += 1;
            }
            self.stats.commits += 1;
        } else {
            self.stats.aborts += 1;
        }
        Ok(())
    }

    /// True when enough decision records accumulated that the log is
    /// worth compacting. The cluster checks this after the decide
    /// fan-out and, when set, proves the records redundant (worker
    /// barrier) before calling [`Coordinator::compact`].
    pub fn should_compact(&self) -> bool {
        self.log.is_some() && self.records_since_compaction >= COORD_COMPACT_EVERY
    }

    /// Checkpoint-compact the decision log (see
    /// [`CoordinatorLog::compact`] for the caller's proof obligation).
    pub fn compact(&mut self) -> Result<()> {
        if let Some(log) = &mut self.log {
            log.compact(self.next_gtid)?;
            self.stats.log_compactions += 1;
        }
        self.records_since_compaction = 0;
        Ok(())
    }

    /// Count a single-partition fast-path submission.
    pub fn note_fast_path(&mut self) {
        self.stats.single_partition_fast_path += 1;
    }

    /// Count a multi-sited transaction and its prepare fan-out.
    pub fn note_multi_partition(&mut self, participants: usize) {
        self.stats.multi_partition_txns += 1;
        self.stats.prepares_sent += participants as u64;
    }

    /// Current counters.
    pub fn stats(&self) -> CoordStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sstore-coord-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        fs::create_dir_all(&p).unwrap();
        p
    }

    #[test]
    fn decisions_round_trip() {
        let dir = tempdir("rt");
        let mut log = CoordinatorLog::open(&dir).unwrap();
        log.append_decision(1, true, &[PartitionId::new(0), PartitionId::new(2)])
            .unwrap();
        log.append_decision(2, false, &[PartitionId::new(1)])
            .unwrap();
        drop(log);
        // Reopen appends after the existing header.
        let mut log = CoordinatorLog::open(&dir).unwrap();
        log.append_decision(3, true, &[]).unwrap();
        drop(log);
        let state = CoordinatorLog::read(&dir).unwrap();
        assert_eq!(state.decisions.len(), 3);
        assert_eq!(state.decisions.get(&1), Some(&true));
        assert_eq!(state.decisions.get(&2), Some(&false));
        assert_eq!(state.decisions.get(&3), Some(&true));
        assert_eq!(state.next_gtid, 4);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_log_reads_empty_and_torn_tail_drops() {
        let dir = tempdir("torn");
        let empty = CoordinatorLog::read(&dir).unwrap();
        assert!(empty.decisions.is_empty());
        assert_eq!(empty.next_gtid, 1);
        let mut log = CoordinatorLog::open(&dir).unwrap();
        log.append_decision(9, true, &[PartitionId::new(0)])
            .unwrap();
        drop(log);
        // Simulate a crash mid-way through the next decision's write.
        let path = dir.join("coord.log");
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&[5, 0, 0, 0, 0xAB]); // half a frame header + garbage
        fs::write(&path, &bytes).unwrap();
        let state = CoordinatorLog::read(&dir).unwrap();
        assert_eq!(state.decisions.len(), 1);
        assert_eq!(state.decisions.get(&9), Some(&true));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn checkpoint_compaction_keeps_floor_and_later_decisions() {
        let dir = tempdir("compact");
        let mut log = CoordinatorLog::open(&dir).unwrap();
        for g in 1..=40 {
            log.append_decision(g, true, &[PartitionId::new(0)])
                .unwrap();
        }
        let before = fs::metadata(dir.join("coord.log")).unwrap().len();
        log.compact(41).unwrap();
        let after = fs::metadata(dir.join("coord.log")).unwrap().len();
        assert!(after < before, "compaction must shrink the log");
        let state = CoordinatorLog::read(&dir).unwrap();
        assert!(state.decisions.is_empty(), "settled decisions are dropped");
        assert_eq!(state.next_gtid, 41, "sequence floor survives");
        // Appends keep working on the compacted file.
        log.append_decision(50, true, &[PartitionId::new(1)])
            .unwrap();
        drop(log);
        let state = CoordinatorLog::read(&dir).unwrap();
        assert_eq!(state.decisions.get(&50), Some(&true));
        assert_eq!(state.next_gtid, 51);
        fs::remove_dir_all(dir).ok();
    }

    /// A pre-compaction (v2) log — untagged decision payloads — reads
    /// through the version branch, and appends to it stay untagged so
    /// the file remains self-consistent.
    #[test]
    fn v2_log_reads_and_appends_back_compat() {
        let dir = tempdir("v2");
        fs::create_dir_all(&dir).unwrap();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&codec::COORD_MAGIC);
        bytes.extend_from_slice(&2u32.to_le_bytes());
        let frame = codec::begin_frame(&mut bytes);
        codec::put_uvarint(&mut bytes, 7);
        bytes.push(1);
        codec::put_uvarint(&mut bytes, 0); // no participants
        codec::end_frame(&mut bytes, frame);
        fs::write(dir.join("coord.log"), &bytes).unwrap();

        let state = CoordinatorLog::read(&dir).unwrap();
        assert_eq!(state.decisions.get(&7), Some(&true));
        assert_eq!(state.next_gtid, 8);

        let mut log = CoordinatorLog::open(&dir).unwrap();
        log.append_decision(8, true, &[PartitionId::new(0)])
            .unwrap();
        drop(log);
        let state = CoordinatorLog::read(&dir).unwrap();
        assert_eq!(state.decisions.len(), 2);
        assert_eq!(state.decisions.get(&8), Some(&true));
        assert_eq!(state.next_gtid, 9);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn coordinator_sequences_and_counts() {
        let mut c = Coordinator::new(None, 5);
        assert_eq!(c.begin(), 5);
        assert_eq!(c.begin(), 6);
        c.note_fast_path();
        c.note_multi_partition(3);
        c.decide(5, true, &[]).unwrap();
        c.decide(6, false, &[]).unwrap();
        let s = c.stats();
        assert_eq!(s.single_partition_fast_path, 1);
        assert_eq!(s.multi_partition_txns, 1);
        assert_eq!(s.prepares_sent, 3);
        assert_eq!(s.commits, 1);
        assert_eq!(s.aborts, 1);
    }

    /// Presumed abort: abort decisions never touch the file — only
    /// commits pay the fsync.
    #[test]
    fn aborts_write_nothing() {
        let dir = tempdir("pa");
        let log = CoordinatorLog::open(&dir).unwrap();
        let len_empty = fs::metadata(dir.join("coord.log")).unwrap().len();
        let mut c = Coordinator::new(Some(log), 1);
        let g1 = c.begin();
        c.decide(g1, false, &[PartitionId::new(0), PartitionId::new(1)])
            .unwrap();
        assert_eq!(
            fs::metadata(dir.join("coord.log")).unwrap().len(),
            len_empty,
            "abort must not grow the log"
        );
        let g2 = c.begin();
        c.decide(g2, true, &[PartitionId::new(0), PartitionId::new(1)])
            .unwrap();
        let state = CoordinatorLog::read(&dir).unwrap();
        assert_eq!(state.decisions.get(&g1), None, "absent means abort");
        assert_eq!(state.decisions.get(&g2), Some(&true));
        fs::remove_dir_all(dir).ok();
    }
}
