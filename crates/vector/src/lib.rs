//! Columnar batch execution layer for the S-Store reproduction.
//!
//! The row interpreter in `sstore-sql` walks one [`sstore_common::Row`] at a
//! time and dispatches on [`Value`](sstore_common::Value) per cell; profiling
//! (ROADMAP E7) showed that per-cell dispatch, not copying, dominates the
//! scan/filter/aggregate hot path. This crate provides the batch-at-a-time
//! alternative, shaped after GlareDB rayexec's `rayexec_bullet`:
//!
//! - [`mod@column`]: typed column vectors ([`Column`], [`ColumnBatch`]) with a
//!   validity [`Bitmap`] per column and a *selection vector* threaded
//!   between operators instead of materializing intermediate rows;
//! - [`compute`]: type-specialized kernels — comparison, checked arithmetic,
//!   predicate → selection filtering, and COUNT/SUM/AVG/MIN/MAX reductions —
//!   each bit-identical to the scalar `expr` evaluator (same NULL
//!   propagation, same overflow/division error strings, same first-error
//!   ordering);
//! - [`join`]: a hash build/probe kernel over `i64` key lanes for equi-joins.
//!
//! Everything here is engine-agnostic: the crate depends only on
//! `sstore-common` and knows nothing about plans or tables. The lowering
//! from physical plans lives in `sstore_sql::vexec`; the batch builder over
//! table slots lives in `sstore-storage`.
//!
//! Kernel outputs are **row-aligned**: an output vector has one slot per
//! input row, and only positions named by the selection are written (and
//! ever read). This keeps selections composable — a downstream kernel can
//! index outputs with the same positions — at the cost of allocating
//! `rows` slots even for sparse selections, which is the right trade for
//! the dense scans this crate exists to accelerate.

pub mod column;
pub mod compute;
pub mod join;

pub use column::{build_batch, Bitmap, Column, ColumnBatch, ColumnData};
pub use compute::{ArithOp, CmpOp, NumSrc};
