//! Type-specialized compute kernels: comparison, checked arithmetic,
//! predicate filtering, and aggregation reductions.
//!
//! Every kernel takes an optional *selection* (`Option<&[u32]>`, `None` =
//! all rows dense) and optional validity bitmaps, and is specified as
//! bit-identical to evaluating the scalar `expr` path per selected row:
//! same NULL propagation (NULL operand → NULL result, checked *before*
//! division-by-zero), same error strings, and same first-error ordering
//! (selection order = row order). Outputs are row-aligned — see the crate
//! docs — so unselected slots hold unspecified defaults and must never be
//! read.

use crate::column::{valid_at, Bitmap, ColumnData};
use sstore_common::{Error, Result};
use std::cmp::Ordering;

/// Iterate the selected row positions in order.
macro_rules! for_sel {
    ($sel:expr, $rows:expr, $i:ident => $body:block) => {
        match $sel {
            None => {
                for $i in 0..$rows {
                    $body
                }
            }
            Some(s) => {
                for &ix in s.iter() {
                    let $i = ix as usize;
                    $body
                }
            }
        }
    };
}

/// A numeric operand lane: a column of ints or floats, or a constant.
/// `Timestamp` lanes are passed as [`NumSrc::I`] — the row path's
/// arithmetic and comparison treat timestamps exactly like ints.
#[derive(Clone, Copy)]
pub enum NumSrc<'a> {
    /// Integer column lane.
    I(&'a [i64]),
    /// Float column lane.
    F(&'a [f64]),
    /// Integer constant.
    CI(i64),
    /// Float constant.
    CF(f64),
}

impl NumSrc<'_> {
    /// True for integer-typed sources (column or constant).
    pub fn is_int(&self) -> bool {
        matches!(self, NumSrc::I(_) | NumSrc::CI(_))
    }

    #[inline]
    fn int_at(&self, i: usize) -> i64 {
        match self {
            NumSrc::I(d) => d[i],
            NumSrc::CI(c) => *c,
            _ => unreachable!("float source read as int"),
        }
    }

    #[inline]
    fn float_at(&self, i: usize) -> f64 {
        match self {
            NumSrc::I(d) => d[i] as f64,
            NumSrc::F(d) => d[i],
            NumSrc::CI(c) => *c as f64,
            NumSrc::CF(c) => *c,
        }
    }
}

/// Comparison operator, mirroring `BinOp::{Eq,Neq,Lt,Le,Gt,Ge}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Map an [`Ordering`] to the operator's truth value, matching how
    /// the row path derives booleans from `sql_cmp`.
    #[inline]
    pub fn ord_ok(self, o: Ordering) -> bool {
        match self {
            CmpOp::Eq => o == Ordering::Equal,
            CmpOp::Ne => o != Ordering::Equal,
            CmpOp::Lt => o == Ordering::Less,
            CmpOp::Le => o != Ordering::Greater,
            CmpOp::Gt => o == Ordering::Greater,
            CmpOp::Ge => o != Ordering::Less,
        }
    }
}

/// Arithmetic operator, mirroring `BinOp::{Add,Sub,Mul,Div,Mod}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

/// AND the two operand validities over the selection. `None` = all valid.
/// Only selected bits of the result are meaningful.
pub fn combine_validity(
    av: Option<&Bitmap>,
    bv: Option<&Bitmap>,
    sel: Option<&[u32]>,
    rows: usize,
) -> Option<Bitmap> {
    if av.is_none() && bv.is_none() {
        return None;
    }
    let mut out = Bitmap::new_set(rows);
    for_sel!(sel, rows, i => {
        if !valid_at(av, i) || !valid_at(bv, i) {
            out.set(i, false);
        }
    });
    Some(out)
}

/// Numeric comparison. Both-int pairs compare as `i64`; any float operand
/// promotes both sides to `f64` and uses `total_cmp` — exactly
/// `Value::cmp_total` for numeric pairs. A NULL operand yields a NULL
/// result bit (cleared validity), matching `sql_cmp → None → tri → Null`.
pub fn cmp_num(
    op: CmpOp,
    a: NumSrc,
    av: Option<&Bitmap>,
    b: NumSrc,
    bv: Option<&Bitmap>,
    sel: Option<&[u32]>,
    rows: usize,
) -> (Vec<bool>, Option<Bitmap>) {
    let mut out = vec![false; rows];
    if a.is_int() && b.is_int() {
        for_sel!(sel, rows, i => {
            out[i] = op.ord_ok(a.int_at(i).cmp(&b.int_at(i)));
        });
    } else {
        for_sel!(sel, rows, i => {
            out[i] = op.ord_ok(a.float_at(i).total_cmp(&b.float_at(i)));
        });
    }
    (out, combine_validity(av, bv, sel, rows))
}

/// A string operand lane: column or constant.
#[derive(Clone, Copy)]
pub enum StrSrc<'a> {
    /// Text column lane.
    Col(&'a [String]),
    /// Text constant.
    Const(&'a str),
}

impl StrSrc<'_> {
    #[inline]
    fn at(&self, i: usize) -> &str {
        match self {
            StrSrc::Col(d) => &d[i],
            StrSrc::Const(s) => s,
        }
    }
}

/// String comparison (lexicographic byte order, as `Value::cmp_total`).
pub fn cmp_str(
    op: CmpOp,
    a: StrSrc,
    av: Option<&Bitmap>,
    b: StrSrc,
    bv: Option<&Bitmap>,
    sel: Option<&[u32]>,
    rows: usize,
) -> (Vec<bool>, Option<Bitmap>) {
    let mut out = vec![false; rows];
    for_sel!(sel, rows, i => {
        out[i] = op.ord_ok(a.at(i).cmp(b.at(i)));
    });
    (out, combine_validity(av, bv, sel, rows))
}

/// A boolean operand lane: column or constant.
#[derive(Clone, Copy)]
pub enum BoolSrc<'a> {
    /// Bool column lane.
    Col(&'a [bool]),
    /// Bool constant.
    Const(bool),
}

impl BoolSrc<'_> {
    #[inline]
    fn at(&self, i: usize) -> bool {
        match self {
            BoolSrc::Col(d) => d[i],
            BoolSrc::Const(b) => *b,
        }
    }
}

/// Boolean comparison (`false < true`, as `Value::cmp_total`).
pub fn cmp_bool(
    op: CmpOp,
    a: BoolSrc,
    av: Option<&Bitmap>,
    b: BoolSrc,
    bv: Option<&Bitmap>,
    sel: Option<&[u32]>,
    rows: usize,
) -> (Vec<bool>, Option<Bitmap>) {
    let mut out = vec![false; rows];
    for_sel!(sel, rows, i => {
        out[i] = op.ord_ok(a.at(i).cmp(&b.at(i)));
    });
    (out, combine_validity(av, bv, sel, rows))
}

/// Numeric arithmetic with the row path's exact semantics: NULL operand →
/// NULL result (checked before the zero-divisor check, so `1 / NULL` is
/// NULL, not an error); both-int → checked `i64` ops erroring with
/// `integer overflow` / `division by zero` / `modulo by zero`; any float
/// operand → `f64` ops where only `Div` by `0.0` errors. Errors surface
/// in selection (= row) order, matching the interpreter's first failure.
pub fn arith_num(
    op: ArithOp,
    a: NumSrc,
    av: Option<&Bitmap>,
    b: NumSrc,
    bv: Option<&Bitmap>,
    sel: Option<&[u32]>,
    rows: usize,
) -> Result<(ColumnData, Option<Bitmap>)> {
    let validity = combine_validity(av, bv, sel, rows);
    if a.is_int() && b.is_int() {
        let mut out = vec![0i64; rows];
        for_sel!(sel, rows, i => {
            if valid_at(validity.as_ref(), i) {
                let (x, y) = (a.int_at(i), b.int_at(i));
                let r = match op {
                    ArithOp::Add => x.checked_add(y),
                    ArithOp::Sub => x.checked_sub(y),
                    ArithOp::Mul => x.checked_mul(y),
                    ArithOp::Div => {
                        if y == 0 {
                            return Err(Error::Constraint("division by zero".into()));
                        }
                        x.checked_div(y)
                    }
                    ArithOp::Mod => {
                        if y == 0 {
                            return Err(Error::Constraint("modulo by zero".into()));
                        }
                        x.checked_rem(y)
                    }
                };
                out[i] = r.ok_or_else(|| Error::Constraint("integer overflow".into()))?;
            }
        });
        Ok((ColumnData::Int(out), validity))
    } else {
        let mut out = vec![0f64; rows];
        for_sel!(sel, rows, i => {
            if valid_at(validity.as_ref(), i) {
                let (x, y) = (a.float_at(i), b.float_at(i));
                out[i] = match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => {
                        if y == 0.0 {
                            return Err(Error::Constraint("division by zero".into()));
                        }
                        x / y
                    }
                    ArithOp::Mod => x % y,
                };
            }
        });
        Ok((ColumnData::Float(out), validity))
    }
}

/// Reduce a boolean result column to a selection vector: keep positions
/// that are valid **and** true (the row path's `eval_pred` maps NULL to
/// false).
pub fn bool_to_sel(
    vals: &[bool],
    validity: Option<&Bitmap>,
    sel: Option<&[u32]>,
    rows: usize,
) -> Vec<u32> {
    let mut out = Vec::new();
    for_sel!(sel, rows, i => {
        if valid_at(validity, i) && vals[i] {
            out.push(i as u32);
        }
    });
    out
}

/// COUNT of non-NULL cells over the selection.
pub fn count_nonnull(validity: Option<&Bitmap>, sel: Option<&[u32]>, rows: usize) -> i64 {
    match validity {
        None => match sel {
            None => rows as i64,
            Some(s) => s.len() as i64,
        },
        Some(v) => {
            let mut n = 0i64;
            for_sel!(sel, rows, i => {
                if v.get(i) {
                    n += 1;
                }
            });
            n
        }
    }
}

/// SUM over an int lane: `checked_add` in selection order, erroring with
/// the row path's `integer overflow in SUM`. `None` = no non-NULL input.
pub fn sum_int(
    d: &[i64],
    validity: Option<&Bitmap>,
    sel: Option<&[u32]>,
    rows: usize,
) -> Result<Option<i64>> {
    let mut acc: Option<i64> = None;
    for_sel!(sel, rows, i => {
        if valid_at(validity, i) {
            acc = Some(match acc {
                None => d[i],
                Some(a) => a
                    .checked_add(d[i])
                    .ok_or_else(|| Error::Constraint("integer overflow in SUM".into()))?,
            });
        }
    });
    Ok(acc)
}

/// SUM over a float lane: plain `f64` adds in selection order (matches the
/// row accumulator's sequential rounding). `None` = no non-NULL input.
pub fn sum_float(
    d: &[f64],
    validity: Option<&Bitmap>,
    sel: Option<&[u32]>,
    rows: usize,
) -> Option<f64> {
    let mut acc: Option<f64> = None;
    for_sel!(sel, rows, i => {
        if valid_at(validity, i) {
            acc = Some(acc.unwrap_or(0.0) + d[i]);
        }
    });
    acc
}

/// AVG accumulator over a numeric lane: sequential `f64` sum (row order)
/// plus non-NULL count; caller divides. Matches `AggState::Avg`.
pub fn avg_num(
    src: NumSrc,
    validity: Option<&Bitmap>,
    sel: Option<&[u32]>,
    rows: usize,
) -> (f64, i64) {
    let mut sum = 0f64;
    let mut n = 0i64;
    for_sel!(sel, rows, i => {
        if valid_at(validity, i) {
            sum += src.float_at(i);
            n += 1;
        }
    });
    (sum, n)
}

/// MIN/MAX over an int lane, skipping NULLs. `None` = no non-NULL input.
pub fn min_max_int(
    d: &[i64],
    validity: Option<&Bitmap>,
    sel: Option<&[u32]>,
    rows: usize,
    want_max: bool,
) -> Option<i64> {
    let mut best: Option<i64> = None;
    for_sel!(sel, rows, i => {
        if valid_at(validity, i) {
            best = Some(match best {
                None => d[i],
                Some(b) if want_max && d[i] > b => d[i],
                Some(b) if !want_max && d[i] < b => d[i],
                Some(b) => b,
            });
        }
    });
    best
}

/// MIN/MAX over a float lane using `total_cmp` (as `Value::cmp_total`),
/// keeping the first value on ties — identical to the row accumulator's
/// strict-improvement update.
pub fn min_max_float(
    d: &[f64],
    validity: Option<&Bitmap>,
    sel: Option<&[u32]>,
    rows: usize,
    want_max: bool,
) -> Option<f64> {
    let mut best: Option<f64> = None;
    for_sel!(sel, rows, i => {
        if valid_at(validity, i) {
            best = Some(match best {
                None => d[i],
                Some(b) => {
                    let o = d[i].total_cmp(&b);
                    if (want_max && o == Ordering::Greater) || (!want_max && o == Ordering::Less) {
                        d[i]
                    } else {
                        b
                    }
                }
            });
        }
    });
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bm(bits: &[bool]) -> Bitmap {
        let mut b = Bitmap::new_set(bits.len());
        for (i, &v) in bits.iter().enumerate() {
            b.set(i, v);
        }
        b
    }

    #[test]
    fn cmp_int_lanes() {
        let a = [1i64, 5, 3];
        let (out, v) = cmp_num(CmpOp::Lt, NumSrc::I(&a), None, NumSrc::CI(3), None, None, 3);
        assert_eq!(out, vec![true, false, false]);
        assert!(v.is_none());
    }

    #[test]
    fn cmp_mixed_promotes_to_float_total_cmp() {
        let a = [1i64, 2];
        let (out, _) = cmp_num(
            CmpOp::Eq,
            NumSrc::I(&a),
            None,
            NumSrc::CF(2.0),
            None,
            None,
            2,
        );
        assert_eq!(out, vec![false, true]);
    }

    #[test]
    fn cmp_null_propagates_to_validity() {
        let a = [1i64, 2];
        let av = bm(&[true, false]);
        let (out, v) = cmp_num(
            CmpOp::Eq,
            NumSrc::I(&a),
            Some(&av),
            NumSrc::CI(2),
            None,
            None,
            2,
        );
        let v = v.unwrap();
        assert!(v.get(0) && !v.get(1));
        assert!(!out[0]);
    }

    #[test]
    fn arith_checked_overflow_errors() {
        let a = [i64::MAX];
        let err = arith_num(
            ArithOp::Add,
            NumSrc::I(&a),
            None,
            NumSrc::CI(1),
            None,
            None,
            1,
        )
        .unwrap_err();
        assert_eq!(err, Error::Constraint("integer overflow".into()));
    }

    #[test]
    fn arith_null_before_div_zero() {
        // 1 / NULL is NULL in the row path (null check precedes divisor
        // check); the kernel must not error on the invalid row.
        let a = [1i64, 8];
        let b = [0i64, 2];
        let bv = bm(&[false, true]);
        let (data, v) = arith_num(
            ArithOp::Div,
            NumSrc::I(&a),
            None,
            NumSrc::I(&b),
            Some(&bv),
            None,
            2,
        )
        .unwrap();
        let ColumnData::Int(d) = data else { panic!() };
        assert_eq!(d[1], 4);
        assert!(!v.unwrap().get(0));
    }

    #[test]
    fn arith_div_zero_only_for_selected_rows() {
        let a = [1i64, 1];
        let b = [0i64, 2];
        let sel = [1u32];
        let (data, _) = arith_num(
            ArithOp::Div,
            NumSrc::I(&a),
            None,
            NumSrc::I(&b),
            None,
            Some(&sel),
            2,
        )
        .unwrap();
        let ColumnData::Int(d) = data else { panic!() };
        assert_eq!(d[1], 0); // 1/2 truncates
    }

    #[test]
    fn float_mod_does_not_error_on_zero() {
        let a = [5.0f64];
        let (data, _) = arith_num(
            ArithOp::Mod,
            NumSrc::F(&a),
            None,
            NumSrc::CF(0.0),
            None,
            None,
            1,
        )
        .unwrap();
        let ColumnData::Float(d) = data else { panic!() };
        assert!(d[0].is_nan());
    }

    #[test]
    fn bool_to_sel_drops_null_and_false() {
        let vals = [true, true, false, true];
        let v = bm(&[true, false, true, true]);
        assert_eq!(bool_to_sel(&vals, Some(&v), None, 4), vec![0, 3]);
    }

    #[test]
    fn sum_int_overflow_message_matches_row_path() {
        let d = [i64::MAX, 1];
        let err = sum_int(&d, None, None, 2).unwrap_err();
        assert_eq!(err, Error::Constraint("integer overflow in SUM".into()));
    }

    #[test]
    fn aggregates_skip_nulls() {
        let d = [10i64, 20, 30];
        let v = bm(&[true, false, true]);
        assert_eq!(sum_int(&d, Some(&v), None, 3).unwrap(), Some(40));
        assert_eq!(count_nonnull(Some(&v), None, 3), 2);
        assert_eq!(min_max_int(&d, Some(&v), None, 3, false), Some(10));
        assert_eq!(min_max_int(&d, Some(&v), None, 3, true), Some(30));
        let (s, n) = avg_num(NumSrc::I(&d), Some(&v), None, 3);
        assert_eq!((s, n), (40.0, 2));
    }

    #[test]
    fn empty_selection_aggregates_to_none() {
        let d = [1i64];
        let sel: [u32; 0] = [];
        assert_eq!(sum_int(&d, None, Some(&sel), 1).unwrap(), None);
        assert_eq!(min_max_int(&d, None, Some(&sel), 1, true), None);
    }

    #[test]
    fn min_max_float_uses_total_cmp() {
        let d = [0.0f64, -0.0];
        // total_cmp: -0.0 < 0.0, so MIN picks index 1's -0.0.
        let m = min_max_float(&d, None, None, 2, false).unwrap();
        assert!(m.is_sign_negative());
    }
}
