//! Hash build/probe kernel for equi-joins over `i64` key lanes.
//!
//! The generic (mixed-type / multi-key) hash join lives in
//! `sstore_sql::vexec` where dynamic [`Value`](sstore_common::Value) keys
//! are available; this kernel is the fast path for the common single
//! `INT = INT` join key, avoiding per-probe `Value` hashing.

use crate::column::{valid_at, Bitmap};
use std::collections::HashMap;

/// Join two selections on `i64` equality. Returns `(probe_idx, build_idx)`
/// pairs in probe-major order, with build matches in build-selection order
/// — exactly the iteration order of the row interpreter's nested loop when
/// the probe side is the outer relation. NULL keys never match (SQL `=`
/// is NULL-rejecting).
pub fn hash_join_i64(
    build: &[i64],
    build_validity: Option<&Bitmap>,
    build_sel: Option<&[u32]>,
    probe: &[i64],
    probe_validity: Option<&Bitmap>,
    probe_sel: Option<&[u32]>,
) -> Vec<(u32, u32)> {
    let mut table: HashMap<i64, Vec<u32>> = HashMap::new();
    let mut add = |i: usize| {
        if valid_at(build_validity, i) {
            table.entry(build[i]).or_default().push(i as u32);
        }
    };
    match build_sel {
        None => (0..build.len()).for_each(&mut add),
        Some(s) => s.iter().for_each(|&i| add(i as usize)),
    }
    let mut out = Vec::new();
    let mut probe_one = |i: usize| {
        if valid_at(probe_validity, i) {
            if let Some(matches) = table.get(&probe[i]) {
                out.extend(matches.iter().map(|&b| (i as u32, b)));
            }
        }
    };
    match probe_sel {
        None => (0..probe.len()).for_each(&mut probe_one),
        Some(s) => s.iter().for_each(|&i| probe_one(i as usize)),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_in_probe_major_build_order() {
        let build = [10i64, 20, 10];
        let probe = [10i64, 30, 20];
        let pairs = hash_join_i64(&build, None, None, &probe, None, None);
        assert_eq!(pairs, vec![(0, 0), (0, 2), (2, 1)]);
    }

    #[test]
    fn null_keys_never_match() {
        let build = [1i64, 1];
        let mut bv = Bitmap::new_set(2);
        bv.set(0, false);
        let probe = [1i64];
        let pairs = hash_join_i64(&build, Some(&bv), None, &probe, None, None);
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    fn selections_restrict_both_sides() {
        let build = [7i64, 7, 7];
        let probe = [7i64, 7];
        let bsel = [1u32];
        let psel = [0u32];
        let pairs = hash_join_i64(&build, None, Some(&bsel), &probe, None, Some(&psel));
        assert_eq!(pairs, vec![(0, 1)]);
    }
}
