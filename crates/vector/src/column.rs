//! Typed column vectors, validity bitmaps, and the row → column pivot.
//!
//! A [`ColumnBatch`] is the unit of work between vectorized operators: a
//! set of equal-length columns plus an implicit row count. Columns the
//! planner proved unused are `None` (pruned) so the scan never pays for
//! them. Each [`Column`] stores one native lane (`Vec<i64>`, `Vec<f64>`,
//! …) plus an optional validity [`Bitmap`]; NULL cells hold a default in
//! the lane and a cleared validity bit. Cells whose runtime type does not
//! match the rest of the column (possible because table cells are dynamic
//! [`Value`]s) demote the whole column to a [`ColumnData::Generic`] lane of
//! boxed values — correctness is never lost, only the fast kernels.

use sstore_common::Value;

/// Fixed-length bitmap, one bit per row. Used for column validity
/// (bit set = value present, clear = NULL).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// A bitmap of `len` bits, all set.
    pub fn new_set(len: usize) -> Self {
        Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        }
    }

    /// A bitmap of `len` bits, all clear.
    pub fn new_clear(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Write bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        if v {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }
}

/// Reads bit `i` of an optional validity bitmap; absent bitmap = all valid.
#[inline]
pub fn valid_at(v: Option<&Bitmap>, i: usize) -> bool {
    v.is_none_or(|b| b.get(i))
}

/// The native lane behind a [`Column`].
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 64-bit integers (`Value::Int`).
    Int(Vec<i64>),
    /// 64-bit floats (`Value::Float`).
    Float(Vec<f64>),
    /// Booleans (`Value::Bool`).
    Bool(Vec<bool>),
    /// UTF-8 strings (`Value::Text`).
    Text(Vec<String>),
    /// Microsecond timestamps (`Value::Timestamp`), lane-compatible with Int.
    Timestamp(Vec<i64>),
    /// Mixed-type escape hatch: boxed values, no fast kernels.
    Generic(Vec<Value>),
}

impl ColumnData {
    /// Number of cells in the lane.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(d) | ColumnData::Timestamp(d) => d.len(),
            ColumnData::Float(d) => d.len(),
            ColumnData::Bool(d) => d.len(),
            ColumnData::Text(d) => d.len(),
            ColumnData::Generic(d) => d.len(),
        }
    }

    /// True when the lane has zero cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One column of a batch: a typed lane plus optional validity. A missing
/// validity bitmap means every cell is non-NULL.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// The typed cell storage.
    pub data: ColumnData,
    /// Per-cell validity; `None` = all valid.
    pub validity: Option<Bitmap>,
}

impl Column {
    /// Number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the column has zero cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// True when cell `i` is NULL. Generic lanes may hold `Value::Null`
    /// directly, so both the bitmap and the cell are consulted.
    #[inline]
    pub fn is_null_at(&self, i: usize) -> bool {
        if !valid_at(self.validity.as_ref(), i) {
            return true;
        }
        matches!(&self.data, ColumnData::Generic(d) if d[i] == Value::Null)
    }

    /// Materialize cell `i` back into a dynamic [`Value`].
    pub fn value_at(&self, i: usize) -> Value {
        if !valid_at(self.validity.as_ref(), i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(d) => Value::Int(d[i]),
            ColumnData::Float(d) => Value::Float(d[i]),
            ColumnData::Bool(d) => Value::Bool(d[i]),
            ColumnData::Text(d) => Value::Text(d[i].clone()),
            ColumnData::Timestamp(d) => Value::Timestamp(d[i]),
            ColumnData::Generic(d) => d[i].clone(),
        }
    }
}

/// A set of equal-length columns. `columns[i] = None` means column `i`
/// was pruned by the planner (never referenced downstream); the slot is
/// kept so column indices still line up with the table schema.
#[derive(Debug, Clone)]
pub struct ColumnBatch {
    /// Row count (authoritative even when every column is pruned).
    pub rows: usize,
    /// One entry per schema column; `None` = pruned.
    pub columns: Vec<Option<Column>>,
}

impl ColumnBatch {
    /// The column at position `i`; panics if it was pruned (a planner bug,
    /// not a data condition).
    pub fn column(&self, i: usize) -> &Column {
        self.columns[i]
            .as_ref()
            .expect("column was pruned but is referenced")
    }
}

/// Per-column builder state. Starts untyped and adopts the type of the
/// first non-NULL cell; a later cell of a different type demotes the
/// column to `Generic`.
enum LaneBuilder {
    /// No non-NULL cell seen yet.
    Unset,
    Int(Vec<i64>),
    Float(Vec<f64>),
    Bool(Vec<bool>),
    Text(Vec<String>),
    Timestamp(Vec<i64>),
    Generic(Vec<Value>),
}

struct ColBuilder {
    lane: LaneBuilder,
    validity: Option<Bitmap>,
    /// Cells pushed so far (lane may lag while `Unset`).
    n: usize,
    rows: usize,
}

impl ColBuilder {
    fn new(rows: usize) -> Self {
        ColBuilder {
            lane: LaneBuilder::Unset,
            validity: None,
            n: 0,
            rows,
        }
    }

    fn mark_null(&mut self) {
        let v = self
            .validity
            .get_or_insert_with(|| Bitmap::new_set(self.rows));
        v.set(self.n, false);
    }

    /// Rebuild the typed prefix as boxed values for the `Generic` escape.
    fn demote(&mut self) {
        let mut vals: Vec<Value> = (0..self.n)
            .map(|i| {
                if !valid_at(self.validity.as_ref(), i) {
                    return Value::Null;
                }
                match &self.lane {
                    LaneBuilder::Unset => Value::Null,
                    LaneBuilder::Int(d) => Value::Int(d[i]),
                    LaneBuilder::Float(d) => Value::Float(d[i]),
                    LaneBuilder::Bool(d) => Value::Bool(d[i]),
                    LaneBuilder::Text(d) => Value::Text(d[i].clone()),
                    LaneBuilder::Timestamp(d) => Value::Timestamp(d[i]),
                    LaneBuilder::Generic(_) => unreachable!("demote of generic lane"),
                }
            })
            .collect();
        vals.reserve(self.rows - self.n);
        self.lane = LaneBuilder::Generic(vals);
    }

    fn push(&mut self, v: &Value) {
        match (&mut self.lane, v) {
            (_, Value::Null) => {
                self.mark_null();
                match &mut self.lane {
                    LaneBuilder::Unset => {}
                    LaneBuilder::Int(d) | LaneBuilder::Timestamp(d) => d.push(0),
                    LaneBuilder::Float(d) => d.push(0.0),
                    LaneBuilder::Bool(d) => d.push(false),
                    LaneBuilder::Text(d) => d.push(String::new()),
                    LaneBuilder::Generic(d) => d.push(Value::Null),
                }
            }
            (LaneBuilder::Int(d), Value::Int(x)) => d.push(*x),
            (LaneBuilder::Float(d), Value::Float(x)) => d.push(*x),
            (LaneBuilder::Bool(d), Value::Bool(x)) => d.push(*x),
            (LaneBuilder::Text(d), Value::Text(x)) => d.push(x.clone()),
            (LaneBuilder::Timestamp(d), Value::Timestamp(x)) => d.push(*x),
            (LaneBuilder::Generic(d), v) => d.push(v.clone()),
            (LaneBuilder::Unset, v) => {
                // First non-NULL cell: adopt its type, backfilling defaults
                // for the NULL prefix.
                let n = self.n;
                self.lane = match v {
                    Value::Int(x) => {
                        let mut d = vec![0i64; n];
                        d.push(*x);
                        LaneBuilder::Int(d)
                    }
                    Value::Float(x) => {
                        let mut d = vec![0f64; n];
                        d.push(*x);
                        LaneBuilder::Float(d)
                    }
                    Value::Bool(x) => {
                        let mut d = vec![false; n];
                        d.push(*x);
                        LaneBuilder::Bool(d)
                    }
                    Value::Text(x) => {
                        let mut d = vec![String::new(); n];
                        d.push(x.clone());
                        LaneBuilder::Text(d)
                    }
                    Value::Timestamp(x) => {
                        let mut d = vec![0i64; n];
                        d.push(*x);
                        LaneBuilder::Timestamp(d)
                    }
                    Value::Null => unreachable!("null handled above"),
                };
                self.n += 1;
                return;
            }
            // Type drift within the column: demote and retry (the retry
            // always lands in the Generic arm).
            (_, v) => {
                self.demote();
                if let LaneBuilder::Generic(d) = &mut self.lane {
                    d.push(v.clone());
                }
            }
        }
        self.n += 1;
    }

    fn finish(self) -> Column {
        let data = match self.lane {
            // All cells NULL: an Int lane of defaults with an all-clear
            // validity region is equivalent and keeps numeric kernels usable.
            LaneBuilder::Unset => ColumnData::Int(vec![0; self.n]),
            LaneBuilder::Int(d) => ColumnData::Int(d),
            LaneBuilder::Float(d) => ColumnData::Float(d),
            LaneBuilder::Bool(d) => ColumnData::Bool(d),
            LaneBuilder::Text(d) => ColumnData::Text(d),
            LaneBuilder::Timestamp(d) => ColumnData::Timestamp(d),
            LaneBuilder::Generic(d) => ColumnData::Generic(d),
        };
        Column {
            data,
            validity: self.validity,
        }
    }
}

/// Pivot rows into a [`ColumnBatch`]. `arity` is the full schema width;
/// `needed` restricts which columns are materialized (`None` = all). The
/// row count must be known up front so validity bitmaps allocate once.
///
/// Rows shorter than `arity` contribute NULL for their missing trailing
/// columns (matches how the row interpreter treats short rows: absent
/// cells never compare equal to anything).
pub fn build_batch<'a, I>(
    arity: usize,
    rows: usize,
    needed: Option<&[usize]>,
    iter: I,
) -> ColumnBatch
where
    I: Iterator<Item = &'a [Value]>,
{
    let want: Vec<bool> = match needed {
        None => vec![true; arity],
        Some(idx) => {
            let mut w = vec![false; arity];
            for &i in idx {
                if i < arity {
                    w[i] = true;
                }
            }
            w
        }
    };
    let mut builders: Vec<Option<ColBuilder>> = want
        .iter()
        .map(|&w| w.then(|| ColBuilder::new(rows)))
        .collect();
    let mut n = 0usize;
    for row in iter {
        for (c, b) in builders.iter_mut().enumerate() {
            if let Some(b) = b {
                b.push(row.get(c).unwrap_or(&Value::Null));
            }
        }
        n += 1;
    }
    debug_assert_eq!(n, rows, "build_batch row count mismatch");
    ColumnBatch {
        rows,
        columns: builders
            .into_iter()
            .map(|b| b.map(|b| b.finish()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_set_get_across_word_boundary() {
        let mut b = Bitmap::new_set(130);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        b.set(64, false);
        b.set(129, false);
        assert!(!b.get(64) && !b.get(129) && b.get(63) && b.get(128));
    }

    #[test]
    fn build_batch_types_lanes_and_nulls() {
        let rows = [
            vec![Value::Int(1), Value::Null, Value::Text("a".into())],
            vec![Value::Int(2), Value::Float(1.5), Value::Null],
        ];
        let b = build_batch(3, 2, None, rows.iter().map(|r| r.as_slice()));
        assert_eq!(b.rows, 2);
        assert!(matches!(b.column(0).data, ColumnData::Int(_)));
        assert!(matches!(b.column(1).data, ColumnData::Float(_)));
        assert!(b.column(1).is_null_at(0) && !b.column(1).is_null_at(1));
        assert_eq!(b.column(2).value_at(0), Value::Text("a".into()));
        assert_eq!(b.column(2).value_at(1), Value::Null);
    }

    #[test]
    fn build_batch_prunes_columns() {
        let rows = [vec![Value::Int(1), Value::Int(2)]];
        let b = build_batch(2, 1, Some(&[1]), rows.iter().map(|r| r.as_slice()));
        assert!(b.columns[0].is_none());
        assert_eq!(b.column(1).value_at(0), Value::Int(2));
    }

    #[test]
    fn mixed_types_demote_to_generic() {
        let rows = [
            vec![Value::Int(1)],
            vec![Value::Text("x".into())],
            vec![Value::Null],
        ];
        let b = build_batch(1, 3, None, rows.iter().map(|r| r.as_slice()));
        assert!(matches!(b.column(0).data, ColumnData::Generic(_)));
        assert_eq!(b.column(0).value_at(0), Value::Int(1));
        assert_eq!(b.column(0).value_at(1), Value::Text("x".into()));
        assert!(b.column(0).is_null_at(2));
    }

    #[test]
    fn all_null_column_reads_as_null() {
        let rows = [vec![Value::Null], vec![Value::Null]];
        let b = build_batch(1, 2, None, rows.iter().map(|r| r.as_slice()));
        assert!(b.column(0).is_null_at(0) && b.column(0).is_null_at(1));
        assert_eq!(b.column(0).value_at(1), Value::Null);
    }

    #[test]
    fn short_rows_pad_with_null() {
        let rows: [Vec<Value>; 2] = [vec![Value::Int(1)], vec![Value::Int(2), Value::Int(9)]];
        let b = build_batch(2, 2, None, rows.iter().map(|r| r.as_slice()));
        assert!(b.column(1).is_null_at(0));
        assert_eq!(b.column(1).value_at(1), Value::Int(9));
    }
}
