//! Property tests for the binary durability codec: every `Value`/`Row`
//! must round-trip exactly (including NULL, negative ints, empty strings,
//! and non-finite floats), framed streams must survive concatenation, and
//! decoding arbitrary garbage must fail cleanly — never panic, never
//! allocate absurdly.

use proptest::prelude::*;
use sstore_common::codec::{self, FrameRead, Reader};
use sstore_common::{Row, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Timestamp),
        ".{0,16}".prop_map(Value::Text),
        Just(Value::Text(String::new())),
        Just(Value::Int(i64::MIN)),
        Just(Value::Int(-1)),
    ]
}

fn arb_row() -> impl Strategy<Value = Row> {
    prop::collection::vec(arb_value(), 0..8).prop_map(Row::new)
}

/// Bit-identical value equality: `Value::eq` uses SQL total ordering,
/// which conflates `Int(2)`/`Float(2.0)`/`Timestamp(2)` and all NaNs —
/// too weak to prove the codec preserves the exact representation.
fn bits_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Timestamp(x), Value::Timestamp(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Text(x), Value::Text(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        _ => false,
    }
}

proptest! {
    #[test]
    fn value_round_trips_bit_exactly(v in arb_value()) {
        let mut buf = Vec::new();
        codec::encode_value(&v, &mut buf);
        let mut r = Reader::new(&buf);
        let back = codec::decode_value(&mut r).unwrap();
        prop_assert!(r.is_empty(), "trailing bytes after value");
        prop_assert!(bits_equal(&v, &back), "{v:?} -> {back:?}");
    }

    #[test]
    fn row_round_trips(row in arb_row()) {
        let mut buf = Vec::new();
        codec::encode_row(&row, &mut buf);
        let mut r = Reader::new(&buf);
        let back = codec::decode_row(&mut r).unwrap();
        prop_assert!(r.is_empty());
        prop_assert_eq!(back.len(), row.len());
        for (a, b) in row.iter().zip(back.iter()) {
            prop_assert!(bits_equal(a, b), "{a:?} -> {b:?}");
        }
    }

    #[test]
    fn framed_row_stream_round_trips(rows in prop::collection::vec(arb_row(), 0..10)) {
        let mut buf = Vec::new();
        codec::put_file_header(&mut buf, codec::LOG_MAGIC);
        for row in &rows {
            let f = codec::begin_frame(&mut buf);
            codec::encode_row(row, &mut buf);
            codec::end_frame(&mut buf, f);
        }
        let mut r = Reader::new(&buf);
        codec::check_file_header(&mut r, codec::LOG_MAGIC).unwrap();
        let mut back = Vec::new();
        loop {
            match codec::read_frame(&mut r) {
                FrameRead::Frame(payload) => {
                    back.push(codec::decode_row(&mut Reader::new(payload)).unwrap());
                }
                FrameRead::Eof => break,
                other => prop_assert!(false, "unexpected {other:?}"),
            }
        }
        prop_assert_eq!(back.len(), rows.len());
    }

    /// A truncated frame stream always classifies as Torn/Eof at the cut,
    /// and every frame before the cut still reads back — the exact
    /// guarantee torn-tail recovery depends on.
    #[test]
    fn truncated_stream_yields_intact_prefix(
        rows in prop::collection::vec(arb_row(), 1..8),
        cut_back in 1usize..40,
    ) {
        let mut buf = Vec::new();
        let mut ends = Vec::new();
        for row in &rows {
            let f = codec::begin_frame(&mut buf);
            codec::encode_row(row, &mut buf);
            codec::end_frame(&mut buf, f);
            ends.push(buf.len());
        }
        let cut = buf.len().saturating_sub(cut_back % buf.len().max(1));
        let truncated = &buf[..cut];
        let whole_frames = ends.iter().filter(|&&e| e <= cut).count();
        let mut r = Reader::new(truncated);
        let mut seen = 0usize;
        loop {
            match codec::read_frame(&mut r) {
                FrameRead::Frame(_) => seen += 1,
                FrameRead::Eof | FrameRead::Torn { .. } => break,
                FrameRead::Corrupt { offset, detail } => {
                    prop_assert!(false, "truncation misread as corruption at {offset}: {detail}");
                }
            }
        }
        prop_assert_eq!(seen, whole_frames);
    }

    /// Decoding arbitrary bytes never panics (errors are fine).
    #[test]
    fn garbage_decodes_fail_cleanly(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = codec::decode_value(&mut Reader::new(&bytes));
        let _ = codec::decode_row(&mut Reader::new(&bytes));
        let _ = codec::decode_tree(&mut Reader::new(&bytes));
        let mut r = Reader::new(&bytes);
        while let FrameRead::Frame(_) = codec::read_frame(&mut r) {}
    }

    /// The serde-tree bridge round-trips every shape the JSON tree can
    /// take (this is what catalogs/schemas ride through).
    #[test]
    fn tree_bridge_round_trips(rows in prop::collection::vec(arb_row(), 0..6)) {
        use serde::{Deserialize, Serialize};
        let tree = rows.to_json();
        let mut buf = Vec::new();
        codec::encode_tree(&tree, &mut buf);
        let back = codec::decode_tree(&mut Reader::new(&buf)).unwrap();
        let rows_back = Vec::<Row>::from_json(&back).unwrap();
        prop_assert_eq!(rows_back.len(), rows.len());
    }
}
