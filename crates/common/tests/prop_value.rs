//! Property tests: the Value total order and hashing contracts that the
//! index/sort layers depend on.

use proptest::prelude::*;
use sstore_common::{DataType, Value};
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Timestamp),
        ".{0,16}".prop_map(Value::Text),
    ]
}

fn hash_of(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    #[test]
    fn total_order_is_antisymmetric_and_reflexive(a in arb_value(), b in arb_value()) {
        let ab = a.cmp_total(&b);
        let ba = b.cmp_total(&a);
        prop_assert_eq!(ab, ba.reverse());
        prop_assert_eq!(a.cmp_total(&a), Ordering::Equal);
    }

    #[test]
    fn total_order_is_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        let mut v = [a, b, c];
        // Sorting must not panic and must produce a totally ordered slice.
        v.sort();
        prop_assert!(v[0].cmp_total(&v[1]) != Ordering::Greater);
        prop_assert!(v[1].cmp_total(&v[2]) != Ordering::Greater);
        prop_assert!(v[0].cmp_total(&v[2]) != Ordering::Greater);
    }

    #[test]
    fn eq_implies_hash_eq(a in arb_value(), b in arb_value()) {
        if a == b {
            prop_assert_eq!(hash_of(&a), hash_of(&b), "{:?} == {:?} but hashes differ", a, b);
        }
    }

    #[test]
    fn null_is_minimum(v in arb_value()) {
        prop_assert!(Value::Null.cmp_total(&v) != Ordering::Greater);
    }

    #[test]
    fn coercion_preserves_equality(i in any::<i64>()) {
        // Int -> Float coercion must compare equal to the original when
        // the float is exact (|i| < 2^53).
        let small = i % (1i64 << 52);
        let coerced = DataType::Float.coerce(Value::Int(small)).unwrap();
        prop_assert_eq!(coerced, Value::Int(small));
    }

    #[test]
    fn sql_cmp_is_none_iff_null(a in arb_value(), b in arb_value()) {
        let got = a.sql_cmp(&b);
        prop_assert_eq!(got.is_none(), a.is_null() || b.is_null());
    }

    #[test]
    fn display_and_literal_never_panic(v in arb_value()) {
        let _ = v.to_string();
        let _ = v.to_literal();
    }
}
