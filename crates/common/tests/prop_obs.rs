//! Property tests for the observability histograms: merging two
//! snapshots must be indistinguishable from recording the union of
//! their samples — same counts, same exact mean and max, identical
//! quantiles at every probe point — and quantiles must stay within the
//! bucketing scheme's advertised relative error of the true order
//! statistic.

use proptest::prelude::*;
use sstore_common::obs::Histogram;

/// Latency-like values spanning the interesting ranges: the exact
/// linear buckets (< 32), mid-range, and large values where bucket
/// width matters. Bounded so the histogram's exact running sum cannot
/// overflow within a test case.
fn arb_latency() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..64,
        64u64..100_000,
        100_000u64..10_000_000_000,
        Just(10_000_000_000_000),
    ]
}

proptest! {
    #[test]
    fn merge_matches_recording_the_union(
        xs in prop::collection::vec(arb_latency(), 0..200),
        ys in prop::collection::vec(arb_latency(), 0..200),
    ) {
        let a = Histogram::new();
        let b = Histogram::new();
        let union = Histogram::new();
        for &v in &xs {
            a.record(v);
            union.record(v);
        }
        for &v in &ys {
            b.record(v);
            union.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let direct = union.snapshot();

        prop_assert_eq!(merged.count(), direct.count());
        prop_assert_eq!(merged.max(), direct.max());
        prop_assert_eq!(merged.mean().to_bits(), direct.mean().to_bits());
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            prop_assert_eq!(
                merged.quantile(q),
                direct.quantile(q),
                "quantile {} diverged after merge", q
            );
        }
        // merge() is exact, so the snapshots must be equal, not merely
        // percentile-equal.
        prop_assert_eq!(merged, direct);
    }

    #[test]
    fn quantiles_stay_within_bucket_error(
        samples in prop::collection::vec(0u64..10_000_000_000, 1..300),
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let s = h.snapshot();
        let mut xs = samples;
        xs.sort_unstable();
        for q in [0.5, 0.95, 0.99] {
            let rank = ((q * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
            let truth = xs[rank - 1];
            let got = s.quantile(q);
            // Bucket midpoints are within 1/32 of any member value; the
            // clamp to the exact max can only help.
            let tol = (truth as f64 / 32.0).max(1.0) + 0.5;
            prop_assert!(
                (got as f64 - truth as f64).abs() <= tol,
                "q={} got={} truth={} tol={}", q, got, truth, tol
            );
        }
        prop_assert_eq!(s.quantile(1.0), *xs.last().unwrap());
        prop_assert_eq!(s.count(), xs.len() as u64);
    }

    #[test]
    fn since_inverts_merge(
        xs in prop::collection::vec(arb_latency(), 0..100),
        ys in prop::collection::vec(arb_latency(), 1..100),
    ) {
        let h = Histogram::new();
        for &v in &xs {
            h.record(v);
        }
        let earlier = h.snapshot();
        for &v in &ys {
            h.record(v);
        }
        let delta = h.snapshot().since(&earlier);
        prop_assert_eq!(delta.count(), ys.len() as u64);
        let expect_mean = ys.iter().map(|&v| v as f64).sum::<f64>() / ys.len() as f64;
        // Sum is tracked exactly (wrapping aside), so the window mean is
        // exact too.
        prop_assert!((delta.mean() - expect_mean).abs() <= expect_mean * 1e-12 + 1e-6);
    }
}
