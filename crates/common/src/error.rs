//! Crate-wide error type.
//!
//! Hand-rolled (no `thiserror`) per the dependency policy in DESIGN.md.

use std::fmt;

/// Convenient result alias used across all S-Store crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Every failure mode the S-Store engine can surface to a caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// SQL text could not be tokenized or parsed.
    Parse(String),
    /// Query referenced an unknown table, column, procedure, or stream.
    NotFound(String),
    /// An object with the same name already exists in the catalog.
    AlreadyExists(String),
    /// Value/type mismatch (e.g. inserting a string into an INT column).
    TypeMismatch(String),
    /// Schema-level violation: arity mismatch, NOT NULL, primary key dup.
    Constraint(String),
    /// The stored procedure aborted the transaction deliberately.
    UserAbort(String),
    /// Transaction machinery failure (double-commit, missing undo, ...).
    Txn(String),
    /// Scheduler rejected an invocation (e.g. TE order violation).
    Schedule(String),
    /// A window/stream scope rule was violated (paper §2, transaction scope).
    Scope(String),
    /// Durability subsystem failure (command log or snapshot I/O).
    Io(String),
    /// Binary encode/decode failure (bad tag, truncated input, version
    /// from the future). A CRC failure surfaces as `Recovery` instead —
    /// the codec layer reports *what* broke, recovery decides severity.
    Codec(String),
    /// Recovery could not reconstruct a consistent state.
    Recovery(String),
    /// Admission control shed the submission: the target ingest queue is
    /// full. Retryable — the batch was NOT enqueued anywhere.
    Overloaded(String),
    /// The target partition's worker is down or restarting. Retryable
    /// while the supervisor recovers the partition; fatal once it stays
    /// down (non-durable partitions cannot be restarted).
    PartitionDown(String),
    /// A bounded wait expired before the operation resolved. The
    /// operation itself may still complete on the worker.
    Timeout(String),
    /// Internal invariant broken; indicates a bug in the engine itself.
    Internal(String),
}

impl Error {
    /// Short machine-readable category tag, used by tests and stats.
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Parse(_) => "parse",
            Error::NotFound(_) => "not_found",
            Error::AlreadyExists(_) => "already_exists",
            Error::TypeMismatch(_) => "type_mismatch",
            Error::Constraint(_) => "constraint",
            Error::UserAbort(_) => "user_abort",
            Error::Txn(_) => "txn",
            Error::Schedule(_) => "schedule",
            Error::Scope(_) => "scope",
            Error::Io(_) => "io",
            Error::Codec(_) => "codec",
            Error::Recovery(_) => "recovery",
            Error::Overloaded(_) => "overloaded",
            Error::PartitionDown(_) => "partition_down",
            Error::Timeout(_) => "timeout",
            Error::Internal(_) => "internal",
        }
    }

    /// True when the error is a deliberate, application-level abort rather
    /// than an engine failure. Aborted TEs roll back cleanly and do not
    /// poison the workflow.
    pub fn is_user_abort(&self) -> bool {
        matches!(self, Error::UserAbort(_))
    }

    /// True when retrying the same call later can reasonably succeed:
    /// the submission was shed by admission control ([`Error::Overloaded`])
    /// or the partition is down but may be restarted by the supervisor
    /// ([`Error::PartitionDown`]). Everything else is either permanent
    /// (schema, parse, constraint) or of unknown effect (timeout, io) and
    /// must not be blindly resubmitted.
    pub fn is_retryable(&self) -> bool {
        matches!(self, Error::Overloaded(_) | Error::PartitionDown(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (tag, msg) = match self {
            Error::Parse(m) => ("parse error", m),
            Error::NotFound(m) => ("not found", m),
            Error::AlreadyExists(m) => ("already exists", m),
            Error::TypeMismatch(m) => ("type mismatch", m),
            Error::Constraint(m) => ("constraint violation", m),
            Error::UserAbort(m) => ("user abort", m),
            Error::Txn(m) => ("transaction error", m),
            Error::Schedule(m) => ("scheduling error", m),
            Error::Scope(m) => ("scope violation", m),
            Error::Io(m) => ("io error", m),
            Error::Codec(m) => ("codec error", m),
            Error::Recovery(m) => ("recovery error", m),
            Error::Overloaded(m) => ("overloaded", m),
            Error::PartitionDown(m) => ("partition down", m),
            Error::Timeout(m) => ("timed out", m),
            Error::Internal(m) => ("internal error", m),
        };
        write!(f, "{tag}: {msg}")
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_tag_and_message() {
        let e = Error::Parse("unexpected token".into());
        assert_eq!(e.to_string(), "parse error: unexpected token");
    }

    #[test]
    fn kind_is_stable() {
        assert_eq!(Error::Constraint("x".into()).kind(), "constraint");
        assert_eq!(Error::UserAbort("x".into()).kind(), "user_abort");
    }

    #[test]
    fn user_abort_detection() {
        assert!(Error::UserAbort("done".into()).is_user_abort());
        assert!(!Error::Txn("oops".into()).is_user_abort());
    }

    #[test]
    fn retryable_classification() {
        assert!(Error::Overloaded("queue full".into()).is_retryable());
        assert!(Error::PartitionDown("p2 restarting".into()).is_retryable());
        assert!(!Error::Timeout("5ms".into()).is_retryable());
        assert!(!Error::Io("disk".into()).is_retryable());
        assert!(!Error::Constraint("pk".into()).is_retryable());
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("disk gone");
        let e: Error = io.into();
        assert_eq!(e.kind(), "io");
    }
}
