//! # sstore-common
//!
//! Shared data model for the S-Store reproduction: typed [`Value`]s,
//! [`DataType`]s, [`Schema`]s, [`Row`]s, stream [`Batch`]es, identifier
//! newtypes, the logical [`Clock`], and the crate-wide [`Error`] type.
//!
//! Everything in the engine — regular tables, streams, and windows alike —
//! speaks this one relational vocabulary ("uniform state management" in the
//! paper's terms, §2).

pub mod clock;
pub mod codec;
pub mod error;
pub mod fault;
pub mod ids;
pub mod obs;
pub mod row;
pub mod schema;
pub mod types;
pub mod value;

pub use clock::Clock;
pub use codec::{CodecMetrics, DurabilityFormat};
pub use error::{Error, Result};
pub use ids::{BatchId, PartitionId, ProcId, TableId, TxnId};
pub use row::{Batch, Row, RowMetrics};
pub use schema::{Column, Schema};
pub use types::DataType;
pub use value::Value;
