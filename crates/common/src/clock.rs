//! Logical clock.
//!
//! All time in the engine — tuple timestamps, time-based windows, discount
//! expirations in the BikeShare app — flows from this logical clock rather
//! than the wall clock, so every run is deterministic and command-log replay
//! reconstructs identical state (a prerequisite of the paper's upstream-
//! backup recovery scheme).

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// Monotone logical clock in microseconds.
///
/// Cloning shares the underlying counter (`Arc`), so the partition engine,
/// execution engine, and workload generators all observe one timeline.
#[derive(Debug, Clone, Default)]
pub struct Clock {
    micros: Arc<AtomicI64>,
}

impl Clock {
    /// A clock starting at 0 µs.
    pub fn new() -> Self {
        Clock::default()
    }

    /// A clock starting at an arbitrary point (used by recovery to resume
    /// the pre-crash timeline).
    pub fn starting_at(micros: i64) -> Self {
        Clock {
            micros: Arc::new(AtomicI64::new(micros)),
        }
    }

    /// Current logical time in microseconds.
    pub fn now(&self) -> i64 {
        self.micros.load(Ordering::Acquire)
    }

    /// Advance the clock by `delta_micros` and return the new time.
    pub fn advance(&self, delta_micros: i64) -> i64 {
        debug_assert!(delta_micros >= 0, "clock must be monotone");
        self.micros.fetch_add(delta_micros, Ordering::AcqRel) + delta_micros
    }

    /// Jump the clock forward to `target` if it is ahead of now (no-op
    /// otherwise). Returns the resulting time.
    pub fn advance_to(&self, target: i64) -> i64 {
        let mut cur = self.now();
        while target > cur {
            match self.micros.compare_exchange_weak(
                cur,
                target,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return target,
                Err(actual) => cur = actual,
            }
        }
        cur
    }
}

/// Microseconds in one second, as used throughout the workloads.
pub const MICROS_PER_SEC: i64 = 1_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = Clock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(5), 5);
        assert_eq!(c.now(), 5);
    }

    #[test]
    fn clones_share_time() {
        let a = Clock::new();
        let b = a.clone();
        a.advance(10);
        assert_eq!(b.now(), 10);
    }

    #[test]
    fn advance_to_is_monotone() {
        let c = Clock::starting_at(100);
        assert_eq!(c.advance_to(50), 100); // no going back
        assert_eq!(c.advance_to(200), 200);
        assert_eq!(c.now(), 200);
    }
}
