//! Table schemas: column definitions, primary keys, and row validation.

use crate::row::Row;
use crate::types::DataType;
use crate::value::Value;
use crate::{Error, Result};
use serde::{Deserialize, Serialize};

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name (case-insensitive in SQL; stored lower-case).
    pub name: String,
    /// Declared type.
    pub ty: DataType,
    /// Whether NULL is allowed.
    pub nullable: bool,
}

impl Column {
    /// A non-nullable column.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Column {
            name: name.into().to_ascii_lowercase(),
            ty,
            nullable: false,
        }
    }

    /// A nullable column.
    pub fn nullable(name: impl Into<String>, ty: DataType) -> Self {
        Column {
            nullable: true,
            ..Column::new(name, ty)
        }
    }
}

/// An ordered list of columns plus an optional primary key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<Column>,
    /// Indices (into `columns`) of the primary-key columns, in key order.
    pk: Vec<usize>,
}

impl Schema {
    /// Build a schema; fails on duplicate column names or bad PK references.
    pub fn new(columns: Vec<Column>, pk_names: &[&str]) -> Result<Self> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|o| o.name == c.name) {
                return Err(Error::Constraint(format!("duplicate column `{}`", c.name)));
            }
        }
        let mut pk = Vec::with_capacity(pk_names.len());
        for name in pk_names {
            let lname = name.to_ascii_lowercase();
            let idx = columns
                .iter()
                .position(|c| c.name == lname)
                .ok_or_else(|| Error::NotFound(format!("primary key column `{name}`")))?;
            if pk.contains(&idx) {
                return Err(Error::Constraint(format!(
                    "duplicate primary key column `{name}`"
                )));
            }
            pk.push(idx);
        }
        Ok(Schema { columns, pk })
    }

    /// Schema with no primary key.
    pub fn keyless(columns: Vec<Column>) -> Result<Self> {
        Schema::new(columns, &[])
    }

    /// All columns, in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of `name` (case-insensitive).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        let lname = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lname)
    }

    /// Column definition by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    /// The primary-key column indices (empty when keyless).
    pub fn pk_indices(&self) -> &[usize] {
        &self.pk
    }

    /// True if the schema declares a primary key.
    pub fn has_pk(&self) -> bool {
        !self.pk.is_empty()
    }

    /// Extract the primary-key values from a (validated) row.
    pub fn pk_of(&self, row: &[Value]) -> Vec<Value> {
        self.pk.iter().map(|&i| row[i].clone()).collect()
    }

    /// Validate arity, coerce each value to its column type, and enforce
    /// NOT NULL. Returns the (possibly coerced) row. Rows whose cells
    /// already match their column types pass through without touching the
    /// shared allocation; only an actual coercion triggers copy-on-write.
    pub fn validate(&self, row: impl Into<Row>) -> Result<Row> {
        let mut row = row.into();
        if row.len() != self.columns.len() {
            return Err(Error::Constraint(format!(
                "row arity {} does not match schema arity {}",
                row.len(),
                self.columns.len()
            )));
        }
        for (i, col) in self.columns.iter().enumerate() {
            let v = &row[i];
            if v.is_null() {
                if !col.nullable {
                    return Err(Error::Constraint(format!(
                        "NULL in non-nullable column `{}`",
                        col.name
                    )));
                }
                continue; // leave Null in place
            }
            if v.data_type() == Some(col.ty) {
                continue; // already the declared type: no write needed
            }
            let cells = row.make_mut();
            let v = std::mem::replace(&mut cells[i], Value::Null);
            let coerced = col.ty.coerce(v).ok_or_else(|| {
                Error::TypeMismatch(format!("column `{}` expects {}", col.name, col.ty))
            })?;
            cells[i] = coerced;
        }
        Ok(row)
    }

    /// Append extra (hidden) columns, producing a new schema with the same
    /// primary key. Used by the storage layer to add `__batch`/`__seq`/`__ts`
    /// lifecycle columns to streams and windows.
    pub fn with_hidden(&self, extra: Vec<Column>) -> Result<Schema> {
        let mut columns = self.columns.clone();
        columns.extend(extra);
        let mut s = Schema::keyless(columns)?;
        s.pk = self.pk.clone();
        Ok(s)
    }

    /// Names of all columns (useful for plan display and tests).
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Binary-encode the schema straight into `out` — no serde tree.
    /// Layout: column count, then `(name, type code, nullable)` per
    /// column, then the primary-key column indices.
    pub fn encode_binary(&self, out: &mut Vec<u8>) {
        crate::codec::put_uvarint(out, self.columns.len() as u64);
        for c in &self.columns {
            crate::codec::put_str(out, &c.name);
            out.push(c.ty.code());
            out.push(c.nullable as u8);
        }
        crate::codec::put_uvarint(out, self.pk.len() as u64);
        for &i in &self.pk {
            crate::codec::put_uvarint(out, i as u64);
        }
    }

    /// Decode a schema encoded by [`Schema::encode_binary`].
    pub fn decode_binary(r: &mut crate::codec::Reader<'_>) -> Result<Schema> {
        let n = r.uvarint()? as usize;
        if n > r.remaining() {
            return Err(Error::Codec(format!(
                "schema column count {n} exceeds remaining input"
            )));
        }
        let mut columns = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.str()?.to_string();
            let code = r.u8()?;
            let ty = DataType::from_code(code)
                .ok_or_else(|| Error::Codec(format!("unknown data-type code {code}")))?;
            let nullable = match r.u8()? {
                0 => false,
                1 => true,
                b => return Err(Error::Codec(format!("bad nullable flag {b}"))),
            };
            columns.push(Column { name, ty, nullable });
        }
        let n_pk = r.uvarint()? as usize;
        if n_pk > columns.len() {
            return Err(Error::Codec(format!(
                "schema pk count {n_pk} exceeds {} columns",
                columns.len()
            )));
        }
        let mut pk = Vec::with_capacity(n_pk);
        for _ in 0..n_pk {
            let i = r.uvarint()? as usize;
            if i >= columns.len() {
                return Err(Error::Codec(format!("pk column index {i} out of range")));
            }
            pk.push(i);
        }
        Ok(Schema { columns, pk })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
                Column::nullable("score", DataType::Float),
            ],
            &["id"],
        )
        .unwrap()
    }

    #[test]
    fn duplicate_columns_rejected() {
        let e = Schema::keyless(vec![
            Column::new("a", DataType::Int),
            Column::new("A", DataType::Int),
        ])
        .unwrap_err();
        assert_eq!(e.kind(), "constraint");
    }

    #[test]
    fn pk_must_exist() {
        let e = Schema::new(vec![Column::new("a", DataType::Int)], &["b"]).unwrap_err();
        assert_eq!(e.kind(), "not_found");
    }

    #[test]
    fn validate_coerces_and_checks_nulls() {
        let s = schema();
        let row = s
            .validate(vec![Value::Int(1), Value::Text("x".into()), Value::Int(2)])
            .unwrap();
        assert_eq!(row[2], Value::Float(2.0));

        let err = s
            .validate(vec![Value::Null, Value::Text("x".into()), Value::Null])
            .unwrap_err();
        assert_eq!(err.kind(), "constraint");

        // nullable column accepts NULL
        let ok = s
            .validate(vec![Value::Int(1), Value::Text("x".into()), Value::Null])
            .unwrap();
        assert!(ok[2].is_null());
    }

    #[test]
    fn arity_mismatch() {
        let s = schema();
        assert!(s.validate(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn pk_extraction_and_lookup() {
        let s = schema();
        assert_eq!(s.pk_indices(), &[0]);
        assert!(s.has_pk());
        let row = vec![Value::Int(9), Value::Text("n".into()), Value::Null];
        assert_eq!(s.pk_of(&row), vec![Value::Int(9)]);
        assert_eq!(s.column_index("NAME"), Some(1));
        assert!(s.column("missing").is_none());
    }

    #[test]
    fn hidden_columns_preserve_pk() {
        let s = schema()
            .with_hidden(vec![Column::new("__seq", DataType::Int)])
            .unwrap();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.pk_indices(), &[0]);
        assert_eq!(s.column_index("__seq"), Some(3));
    }
}
