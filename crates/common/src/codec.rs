//! Binary codec for the durability path.
//!
//! The command log and snapshots originally serialized through JSON text —
//! debuggable, but every committed batch paid a format/parse tax on rows
//! that the in-memory pipeline already hands around as shared [`Row`]
//! handles. This module is the length-prefixed binary replacement:
//!
//! * **varint/LE primitives** — LEB128 unsigned varints, zigzag signed
//!   varints, little-endian `f64`/`u32`;
//! * **value codec** — a tag byte plus a compact payload per [`Value`];
//!   [`encode_row`] borrows the COW row's cells (no copy on encode);
//! * **frames** — `[len u32 LE][crc32 u32 LE][payload]`, with
//!   [`read_frame`] distinguishing a *torn tail* (an incomplete trailing
//!   frame: the write crashed mid-way, drop it) from *corruption* (a
//!   complete frame whose CRC fails: stop with an error);
//! * **file headers** — a 4-byte magic plus a `u32` format version, so
//!   readers can sniff binary vs legacy-JSON files and refuse formats
//!   from the future;
//! * **serde-tree bridge** — [`to_bytes`]/[`from_bytes`] binary-encode the
//!   vendored serde [`json::Value`] tree, giving every
//!   `#[derive(Serialize)]` type (catalog, schemas, index definitions) a
//!   binary form without hand-written codecs. Hot structures (rows, log
//!   records, index entries) use dedicated codecs instead and never build
//!   the tree.
//!
//! The CRC is CRC-32 (IEEE 802.3, reflected, init/final `0xFFFF_FFFF`) —
//! the same polynomial gzip and ethernet use.
//!
//! # Known limits of the torn/corrupt classifier
//!
//! The log carries no fsync-boundary markers, so classification is by
//! content. Two ambiguous cases are resolved *loudly* (recovery errors
//! that an operator can inspect) rather than by silently dropping data:
//! if the filesystem persists the blocks of one multi-frame group write
//! out of order before a crash, an earlier frame can fail its CRC with
//! intact frames after it and reads as corruption; and a torn payload
//! whose user bytes happen to contain a checksum-consistent frame image
//! makes the resync scan classify the tail as corruption. Both
//! need an unlucky (or adversarial) byte pattern in the *unacknowledged*
//! tail; neither can lose acknowledged records silently.

use crate::error::{Error, Result};
use crate::row::Row;
use crate::value::Value;
use serde::{json, Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Format version stamped into every binary log / snapshot header.
/// Bumped on breaking layout changes; readers reject newer versions.
///
/// * **v1** — the PR 4 layout: snapshot catalog metadata travels through
///   the serde-tree bridge ([`to_bytes`]), command logs know only the
///   single-sited record tags.
/// * **v2** — catalog metadata is encoded straight into the frame buffer
///   (no intermediate tree), and the command log gains the coordinator
///   record tags ([`REC_PREPARE`], [`REC_DECISION`], [`REC_FORWARD`],
///   [`REC_EDGE_HW`]). v1 files remain readable: the snapshot decoder
///   branches on the header version, and v1 logs simply never contain the
///   new tags.
/// * **v3** — snapshot meta frames open with a kind byte (full image vs
///   incremental delta chained to its base by the base's envelope key),
///   and the coordinator log gains tagged records (decision vs compaction
///   checkpoint). v1/v2 files remain readable: decoders branch on the
///   header version, and pre-v3 layouts simply have no kind/tag byte.
pub const CODEC_VERSION: u32 = 3;

/// Magic bytes opening a binary command log.
pub const LOG_MAGIC: [u8; 4] = *b"SSLG";

/// Magic bytes opening a binary snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"SSNP";

/// Magic bytes opening a coordinator decision log (`coord.log`).
pub const COORD_MAGIC: [u8; 4] = *b"SSCO";

// ---------------------------------------------------------------------------
// Command-log record tags
// ---------------------------------------------------------------------------
// One byte opening every binary log-record payload. Defined here (not in
// the txn crate) so the on-disk vocabulary is owned by the codec layer and
// every crate that frames records agrees on the numbering.

/// A border input batch entering a workflow.
pub const REC_BORDER: u8 = 0;
/// A direct client invocation (H-Store mode / OLTP requests).
pub const REC_INVOKE: u8 = 1;
/// A batch's workflow fully committed (upstream backup may discard it).
pub const REC_ACK: u8 = 2;
/// A 2PC participant prepared a fragment of a multi-sited transaction
/// (input logged; undo held open until the decision).
pub const REC_PREPARE: u8 = 3;
/// A 2PC participant learned the global outcome of a prepared fragment.
pub const REC_DECISION: u8 = 4;
/// A batch forwarded across a cross-partition workflow edge (logged on
/// the *receiving* partition before execution — the edge's upstream
/// backup).
pub const REC_FORWARD: u8 = 5;
/// Per-(source partition, stream) forwarding high-water marks, appended
/// at snapshot points so edge dedup survives log GC.
pub const REC_EDGE_HW: u8 = 6;
/// A cross-partition edge envelope logged on the *emitting* partition at
/// emission time — recovery re-forwards it when a snapshot covers the
/// emitting batch (so replay won't re-run it) but the receiver never
/// acknowledged the edge.
pub const REC_FORWARD_OUT: u8 = 7;

/// File header size: magic + version.
pub const FILE_HEADER_LEN: usize = 8;

/// Frame header size: payload length + CRC32.
pub const FRAME_HEADER_LEN: usize = 8;

/// Upper bound on a single frame's payload. Nothing the engine writes
/// approaches this; a larger length in a header is corruption, not a
/// torn write.
pub const MAX_FRAME_LEN: u32 = 256 * 1024 * 1024;

/// On-disk serialization format for the command log and snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DurabilityFormat {
    /// Length-prefixed binary frames with CRC32 checksums (the default).
    #[default]
    Binary,
    /// The legacy text format (JSON lines / JSON envelope). Kept live for
    /// back-compat replay of pre-binary durability dirs and for the E6
    /// json-vs-binary benchmarks.
    Json,
}

// ---------------------------------------------------------------------------
// Codec metrics
// ---------------------------------------------------------------------------

static TREE_NODES_ENCODED: AtomicU64 = AtomicU64::new(0);
static TREE_ENCODES: AtomicU64 = AtomicU64::new(0);
static DIRECT_META_ENCODES: AtomicU64 = AtomicU64::new(0);

/// Process-wide counters for the metadata encoding paths.
///
/// The serde-tree bridge allocates one [`json::Value`] node per field it
/// serializes; `tree_nodes_encoded` counts those allocations as they
/// happen, and `direct_meta_encodes` counts metadata blobs (catalogs,
/// coordinator records) that went straight to the frame buffer instead.
/// A hot path that used to pay the bridge shows up as `direct` increments
/// with a flat `tree_nodes` curve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodecMetrics {
    /// Tree nodes allocated by the serde-tree bridge ([`to_bytes`] /
    /// [`encode_tree`]) — one per encoded scalar, array, or object.
    pub tree_nodes_encoded: u64,
    /// Whole-value encodes that went through the tree bridge.
    pub tree_encodes: u64,
    /// Metadata encodes that bypassed the tree and wrote straight into
    /// the frame buffer (zero intermediate allocations counted above).
    pub direct_meta_encodes: u64,
}

impl CodecMetrics {
    /// Current counter values.
    pub fn snapshot() -> CodecMetrics {
        CodecMetrics {
            tree_nodes_encoded: TREE_NODES_ENCODED.load(Ordering::Relaxed),
            tree_encodes: TREE_ENCODES.load(Ordering::Relaxed),
            direct_meta_encodes: DIRECT_META_ENCODES.load(Ordering::Relaxed),
        }
    }

    /// Counter deltas since `earlier` (saturating).
    pub fn since(&self, earlier: &CodecMetrics) -> CodecMetrics {
        CodecMetrics {
            tree_nodes_encoded: self
                .tree_nodes_encoded
                .saturating_sub(earlier.tree_nodes_encoded),
            tree_encodes: self.tree_encodes.saturating_sub(earlier.tree_encodes),
            direct_meta_encodes: self
                .direct_meta_encodes
                .saturating_sub(earlier.direct_meta_encodes),
        }
    }
}

/// Record one metadata encode that bypassed the serde-tree bridge.
/// Called by direct metadata codecs (catalog, coordinator log).
pub fn count_direct_meta_encode() {
    DIRECT_META_ENCODES.fetch_add(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE)
// ---------------------------------------------------------------------------

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC-32 (IEEE 802.3) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Write primitives
// ---------------------------------------------------------------------------

/// Append an LEB128 unsigned varint.
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a zigzag-encoded signed varint.
pub fn put_ivarint(out: &mut Vec<u8>, v: i64) {
    put_uvarint(out, ((v << 1) ^ (v >> 63)) as u64);
}

fn put_uvarint128(out: &mut Vec<u8>, mut v: u128) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_ivarint128(out: &mut Vec<u8>, v: i128) {
    put_uvarint128(out, ((v << 1) ^ (v >> 127)) as u128);
}

/// Append a length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_uvarint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A cursor over an encoded byte slice. Every accessor returns
/// [`Error::Codec`] on underrun or malformed data — decoding never panics.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset from the start of the slice.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when everything has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consume exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::Codec(format!(
                "unexpected end of input at byte {} (wanted {n} more, have {})",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Consume one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Consume a little-endian `u32`.
    pub fn u32_le(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Consume a little-endian `f64`.
    pub fn f64_le(&mut self) -> Result<f64> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Consume an LEB128 unsigned varint.
    pub fn uvarint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(Error::Codec(format!(
                    "varint overflows u64 at byte {}",
                    self.pos
                )));
            }
            v |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Consume a zigzag-encoded signed varint.
    pub fn ivarint(&mut self) -> Result<i64> {
        let u = self.uvarint()?;
        Ok(((u >> 1) as i64) ^ -((u & 1) as i64))
    }

    fn uvarint128(&mut self) -> Result<u128> {
        let mut v = 0u128;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 128 {
                return Err(Error::Codec(format!(
                    "varint overflows u128 at byte {}",
                    self.pos
                )));
            }
            v |= ((byte & 0x7F) as u128) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn ivarint128(&mut self) -> Result<i128> {
        let u = self.uvarint128()?;
        Ok(((u >> 1) as i128) ^ -((u & 1) as i128))
    }

    /// Consume a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.uvarint()?;
        if len > self.remaining() as u64 {
            return Err(Error::Codec(format!(
                "byte-string length {len} exceeds remaining input at byte {}",
                self.pos
            )));
        }
        self.take(len as usize)
    }

    /// Consume a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str> {
        let at = self.pos;
        std::str::from_utf8(self.bytes()?)
            .map_err(|e| Error::Codec(format!("invalid UTF-8 at byte {at}: {e}")))
    }
}

// ---------------------------------------------------------------------------
// Value / Row codec
// ---------------------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_TEXT: u8 = 3;
const TAG_FALSE: u8 = 4;
const TAG_TRUE: u8 = 5;
const TAG_TIMESTAMP: u8 = 6;

/// Append one [`Value`]: a tag byte plus a compact payload.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Int(i) => {
            out.push(TAG_INT);
            put_ivarint(out, *i);
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_le_bytes());
        }
        Value::Text(s) => {
            out.push(TAG_TEXT);
            put_str(out, s);
        }
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Timestamp(t) => {
            out.push(TAG_TIMESTAMP);
            put_ivarint(out, *t);
        }
    }
}

/// Decode one [`Value`].
pub fn decode_value(r: &mut Reader<'_>) -> Result<Value> {
    let at = r.pos();
    match r.u8()? {
        TAG_NULL => Ok(Value::Null),
        TAG_INT => Ok(Value::Int(r.ivarint()?)),
        TAG_FLOAT => Ok(Value::Float(r.f64_le()?)),
        TAG_TEXT => Ok(Value::Text(r.str()?.to_string())),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_TIMESTAMP => Ok(Value::Timestamp(r.ivarint()?)),
        tag => Err(Error::Codec(format!(
            "unknown value tag {tag} at byte {at}"
        ))),
    }
}

/// Append one [`Row`]: arity varint plus cells. Encoding iterates the
/// shared cell slice directly — a borrow of the COW handle, never a copy.
pub fn encode_row(row: &Row, out: &mut Vec<u8>) {
    put_uvarint(out, row.len() as u64);
    for v in row {
        encode_value(v, out);
    }
}

/// Decode one [`Row`].
pub fn decode_row(r: &mut Reader<'_>) -> Result<Row> {
    let arity = r.uvarint()? as usize;
    // Guard against corrupt arities before reserving memory: every cell
    // costs at least one byte.
    if arity > r.remaining() {
        return Err(Error::Codec(format!(
            "row arity {arity} exceeds remaining input at byte {}",
            r.pos()
        )));
    }
    let mut cells = Vec::with_capacity(arity);
    for _ in 0..arity {
        cells.push(decode_value(r)?);
    }
    Ok(Row::new(cells))
}

// ---------------------------------------------------------------------------
// serde-tree bridge
// ---------------------------------------------------------------------------

const TREE_NULL: u8 = 0;
const TREE_FALSE: u8 = 1;
const TREE_TRUE: u8 = 2;
const TREE_INT: u8 = 3;
const TREE_FLOAT: u8 = 4;
const TREE_STR: u8 = 5;
const TREE_ARRAY: u8 = 6;
const TREE_OBJECT: u8 = 7;

/// Binary-encode a serde [`json::Value`] tree.
pub fn encode_tree(v: &json::Value, out: &mut Vec<u8>) {
    TREE_NODES_ENCODED.fetch_add(1, Ordering::Relaxed);
    match v {
        json::Value::Null => out.push(TREE_NULL),
        json::Value::Bool(false) => out.push(TREE_FALSE),
        json::Value::Bool(true) => out.push(TREE_TRUE),
        json::Value::Int(i) => {
            out.push(TREE_INT);
            put_ivarint128(out, *i);
        }
        json::Value::Float(f) => {
            out.push(TREE_FLOAT);
            out.extend_from_slice(&f.to_le_bytes());
        }
        json::Value::Str(s) => {
            out.push(TREE_STR);
            put_str(out, s);
        }
        json::Value::Array(items) => {
            out.push(TREE_ARRAY);
            put_uvarint(out, items.len() as u64);
            for item in items {
                encode_tree(item, out);
            }
        }
        json::Value::Object(entries) => {
            out.push(TREE_OBJECT);
            put_uvarint(out, entries.len() as u64);
            for (k, v) in entries {
                put_str(out, k);
                encode_tree(v, out);
            }
        }
    }
}

/// Decode a serde [`json::Value`] tree.
pub fn decode_tree(r: &mut Reader<'_>) -> Result<json::Value> {
    let at = r.pos();
    match r.u8()? {
        TREE_NULL => Ok(json::Value::Null),
        TREE_FALSE => Ok(json::Value::Bool(false)),
        TREE_TRUE => Ok(json::Value::Bool(true)),
        TREE_INT => Ok(json::Value::Int(r.ivarint128()?)),
        TREE_FLOAT => Ok(json::Value::Float(r.f64_le()?)),
        TREE_STR => Ok(json::Value::Str(r.str()?.to_string())),
        TREE_ARRAY => {
            let n = r.uvarint()? as usize;
            if n > r.remaining() {
                return Err(Error::Codec(format!(
                    "array length {n} exceeds remaining input at byte {at}"
                )));
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_tree(r)?);
            }
            Ok(json::Value::Array(items))
        }
        TREE_OBJECT => {
            let n = r.uvarint()? as usize;
            if n > r.remaining() {
                return Err(Error::Codec(format!(
                    "object length {n} exceeds remaining input at byte {at}"
                )));
            }
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let k = r.str()?.to_string();
                entries.push((k, decode_tree(r)?));
            }
            Ok(json::Value::Object(entries))
        }
        tag => Err(Error::Codec(format!("unknown tree tag {tag} at byte {at}"))),
    }
}

/// Binary-encode any `#[derive(Serialize)]` type through its serde tree.
/// Use for cold metadata (catalogs, schemas, index definitions); hot data
/// has dedicated codecs that skip the tree.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    TREE_ENCODES.fetch_add(1, Ordering::Relaxed);
    let mut out = Vec::new();
    encode_tree(&value.to_json(), &mut out);
    out
}

/// Decode a type previously encoded with [`to_bytes`].
pub fn from_bytes<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let mut r = Reader::new(bytes);
    let tree = decode_tree(&mut r)?;
    if !r.is_empty() {
        return Err(Error::Codec(format!(
            "{} trailing bytes after encoded tree",
            r.remaining()
        )));
    }
    T::from_json(&tree).map_err(|e| Error::Codec(format!("decode: {e}")))
}

// ---------------------------------------------------------------------------
// File headers and frames
// ---------------------------------------------------------------------------

/// Append a file header: magic + format version.
pub fn put_file_header(out: &mut Vec<u8>, magic: [u8; 4]) {
    out.extend_from_slice(&magic);
    out.extend_from_slice(&CODEC_VERSION.to_le_bytes());
}

/// True when `bytes` begins with the given magic (a binary file of that
/// kind, any version).
pub fn has_magic(bytes: &[u8], magic: [u8; 4]) -> bool {
    bytes.len() >= 4 && bytes[..4] == magic
}

/// Consume and validate a file header, returning the format version.
/// Rejects wrong magic and versions from the future.
pub fn check_file_header(r: &mut Reader<'_>, magic: [u8; 4]) -> Result<u32> {
    let got = r.take(4)?;
    if got != magic {
        return Err(Error::Codec(format!(
            "bad magic {:02x?} (expected {:02x?})",
            got, magic
        )));
    }
    let version = r.u32_le()?;
    if version > CODEC_VERSION {
        return Err(Error::Codec(format!(
            "format version {version} is newer than supported ({CODEC_VERSION})"
        )));
    }
    Ok(version)
}

/// Reserve a frame header in `out` and return a position token for
/// [`end_frame`]. Encode the payload directly into `out` between the two
/// calls — no intermediate payload buffer.
pub fn begin_frame(out: &mut Vec<u8>) -> usize {
    let start = out.len();
    out.extend_from_slice(&[0u8; FRAME_HEADER_LEN]);
    start
}

/// Fill in the length and CRC of the frame opened at `start`.
pub fn end_frame(out: &mut [u8], start: usize) {
    let payload_start = start + FRAME_HEADER_LEN;
    let len = (out.len() - payload_start) as u32;
    let crc = crc32(&out[payload_start..]);
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
}

/// Append one complete frame wrapping `payload`.
pub fn put_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Outcome of reading one frame from a byte stream.
#[derive(Debug)]
pub enum FrameRead<'a> {
    /// A complete, checksum-valid frame.
    Frame(&'a [u8]),
    /// Clean end of input (the previous frame was the last).
    Eof,
    /// The trailing frame is incomplete — the bytes run out inside the
    /// header or payload. This is the signature of a torn write at crash:
    /// everything before it was intact, so callers drop the tail with a
    /// warning and recover.
    Torn {
        /// Byte offset where the incomplete frame starts.
        offset: usize,
    },
    /// A frame failed its checksum (or declared an impossible length)
    /// with *more data after it*. Unlike a torn tail this cannot come
    /// from an interrupted append — the medium corrupted data that was
    /// once intact — so callers must stop with an error rather than
    /// silently drop the suffix.
    Corrupt {
        /// Byte offset where the bad frame starts.
        offset: usize,
        /// What check failed.
        detail: String,
    },
}

/// True when the byte span contains a plausible complete frame at any
/// alignment: a positive in-cap length that fits, whose payload passes
/// its CRC. Used to tell a torn tail (no valid data follows the failure)
/// from mid-stream corruption (valid frames follow). Zero-length
/// candidates are excluded — the engine never writes empty frames, and a
/// zero-filled torn region (blocks allocated but never written) would
/// otherwise false-positive as `len=0, crc=0`.
fn has_valid_frame_after(bytes: &[u8]) -> bool {
    if bytes.len() < FRAME_HEADER_LEN {
        return false;
    }
    for start in 0..=bytes.len() - FRAME_HEADER_LEN {
        let b = &bytes[start..];
        let len = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        if len == 0 || len > MAX_FRAME_LEN || (b.len() - FRAME_HEADER_LEN) < len as usize {
            continue;
        }
        let crc = u32::from_le_bytes([b[4], b[5], b[6], b[7]]);
        let payload = &b[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len as usize];
        if crc32(payload) == crc {
            return true;
        }
    }
    false
}

/// Read the next frame, classifying the result (see [`FrameRead`]).
///
/// The torn/corrupt boundary is positional: any failure on the **last**
/// frame in the stream (bytes run out, length implausible, CRC mismatch
/// with nothing after it) is attributed to an interrupted append and
/// reported [`FrameRead::Torn`]; the same failure with *checksum-valid
/// data after it* means once-intact data went bad — [`FrameRead::Corrupt`].
pub fn read_frame<'a>(r: &mut Reader<'a>) -> FrameRead<'a> {
    let offset = r.pos();
    if r.is_empty() {
        return FrameRead::Eof;
    }
    if r.remaining() < FRAME_HEADER_LEN {
        return FrameRead::Torn { offset };
    }
    let len = r.u32_le().expect("checked header length");
    let crc = r.u32_le().expect("checked header length");
    if (r.remaining() as u64) < len as u64 || len > MAX_FRAME_LEN {
        // The declared length is impossible. A torn append (or trailing
        // garbage) looks exactly like a bit-flipped length field from
        // here, so disambiguate by content: if any checksum-valid frame
        // exists *after* this point, once-intact data went bad mid-file
        // and dropping the suffix would silently lose committed records.
        return if has_valid_frame_after(&r.buf[offset + 1..]) {
            FrameRead::Corrupt {
                offset,
                detail: format!(
                    "frame declares length {len} (have {} bytes) but valid frames follow",
                    r.remaining()
                ),
            }
        } else {
            FrameRead::Torn { offset }
        };
    }
    let payload = r.take(len as usize).expect("checked payload length");
    let actual = crc32(payload);
    if actual != crc {
        if r.is_empty() {
            // Trailing frame, nothing after it: an interrupted final
            // append, not medium corruption.
            return FrameRead::Torn { offset };
        }
        return FrameRead::Corrupt {
            offset,
            detail: format!("CRC mismatch (stored {crc:#010x}, computed {actual:#010x})"),
        };
    }
    FrameRead::Frame(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn varints_round_trip_edges() {
        let mut buf = Vec::new();
        let us = [0u64, 1, 127, 128, 300, u64::MAX];
        let is = [0i64, 1, -1, 63, -64, i64::MIN, i64::MAX];
        for &v in &us {
            put_uvarint(&mut buf, v);
        }
        for &v in &is {
            put_ivarint(&mut buf, v);
        }
        let mut r = Reader::new(&buf);
        for &v in &us {
            assert_eq!(r.uvarint().unwrap(), v);
        }
        for &v in &is {
            assert_eq!(r.ivarint().unwrap(), v);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn values_round_trip() {
        let vals = [
            Value::Null,
            Value::Int(0),
            Value::Int(-1),
            Value::Int(i64::MIN),
            Value::Float(2.5),
            Value::Float(f64::NAN),
            Value::Text(String::new()),
            Value::Text("héllo".into()),
            Value::Bool(true),
            Value::Bool(false),
            Value::Timestamp(-7),
        ];
        let mut buf = Vec::new();
        for v in &vals {
            encode_value(v, &mut buf);
        }
        let mut r = Reader::new(&buf);
        for v in &vals {
            let back = decode_value(&mut r).unwrap();
            // NaN != NaN under sql semantics but cmp_total treats them equal.
            assert_eq!(&back, v);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn rows_round_trip_borrowing() {
        let row = Row::new(vec![Value::Int(1), Value::Text("x".into()), Value::Null]);
        let alias = row.clone();
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        let back = decode_row(&mut Reader::new(&buf)).unwrap();
        assert_eq!(back, row);
        // Encoding did not break sharing: the alias still shares storage.
        assert!(!alias.is_unique());
    }

    #[test]
    fn frames_round_trip_and_classify() {
        let mut buf = Vec::new();
        put_file_header(&mut buf, LOG_MAGIC);
        let f1 = begin_frame(&mut buf);
        buf.extend_from_slice(b"hello");
        end_frame(&mut buf, f1);
        put_frame(&mut buf, b"world");

        let mut r = Reader::new(&buf);
        assert_eq!(check_file_header(&mut r, LOG_MAGIC).unwrap(), CODEC_VERSION);
        assert!(matches!(read_frame(&mut r), FrameRead::Frame(b"hello")));
        assert!(matches!(read_frame(&mut r), FrameRead::Frame(b"world")));
        assert!(matches!(read_frame(&mut r), FrameRead::Eof));
    }

    #[test]
    fn torn_tail_is_not_corruption() {
        let mut buf = Vec::new();
        put_frame(&mut buf, b"complete");
        // A second frame cut off mid-payload (torn group-commit write).
        let mut torn = Vec::new();
        put_frame(&mut torn, b"never finished");
        buf.extend_from_slice(&torn[..torn.len() - 3]);

        let mut r = Reader::new(&buf);
        assert!(matches!(read_frame(&mut r), FrameRead::Frame(_)));
        assert!(matches!(read_frame(&mut r), FrameRead::Torn { .. }));
    }

    #[test]
    fn mid_stream_bit_flip_is_corruption() {
        let mut buf = Vec::new();
        put_frame(&mut buf, b"abcdefgh");
        put_frame(&mut buf, b"second");
        // Flip a payload byte of the FIRST frame: valid data follows, so
        // this is medium corruption, not a torn append.
        buf[FRAME_HEADER_LEN + 3] ^= 0x40;
        let mut r = Reader::new(&buf);
        assert!(matches!(read_frame(&mut r), FrameRead::Corrupt { .. }));
    }

    #[test]
    fn trailing_bit_flip_is_a_torn_tail() {
        // The same flip on the LAST frame is attributed to an interrupted
        // final append (the standard WAL tail ambiguity) and dropped.
        let mut buf = Vec::new();
        put_frame(&mut buf, b"first");
        put_frame(&mut buf, b"abcdefgh");
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        let mut r = Reader::new(&buf);
        assert!(matches!(read_frame(&mut r), FrameRead::Frame(b"first")));
        assert!(matches!(read_frame(&mut r), FrameRead::Torn { .. }));
    }

    #[test]
    fn flipped_length_field_with_valid_frames_after_is_corruption() {
        // A bit flip in a mid-file length field makes the frame look
        // torn (declared length > remaining) — but checksum-valid frames
        // after it prove the data was once intact, so silently dropping
        // the suffix would lose committed records.
        let mut buf = Vec::new();
        put_frame(&mut buf, b"first");
        let second_at = buf.len();
        put_frame(&mut buf, b"second");
        put_frame(&mut buf, b"third");
        buf[second_at + 3] ^= 0x80; // high byte of the len u32
        let mut r = Reader::new(&buf);
        assert!(matches!(read_frame(&mut r), FrameRead::Frame(b"first")));
        assert!(matches!(read_frame(&mut r), FrameRead::Corrupt { .. }));
    }

    #[test]
    fn trailing_text_garbage_is_a_torn_tail() {
        // Garbage appended after the last frame (e.g. a crashed writer of
        // a different format) parses as an implausible header and ends
        // the replayable prefix.
        let mut buf = Vec::new();
        put_frame(&mut buf, b"good");
        buf.extend_from_slice(b"{\"BorderBatch\":{\"batch\":999}}");
        let mut r = Reader::new(&buf);
        assert!(matches!(read_frame(&mut r), FrameRead::Frame(b"good")));
        assert!(matches!(read_frame(&mut r), FrameRead::Torn { .. }));
    }

    #[test]
    fn future_version_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        buf.extend_from_slice(&(CODEC_VERSION + 1).to_le_bytes());
        let err = check_file_header(&mut Reader::new(&buf), SNAPSHOT_MAGIC).unwrap_err();
        assert_eq!(err.kind(), "codec");
    }

    #[test]
    fn tree_bridge_round_trips_derived_types() {
        use crate::ids::BatchId;
        let v: Vec<(String, Option<BatchId>)> =
            vec![("a".into(), Some(BatchId::new(7))), ("b".into(), None)];
        let bytes = to_bytes(&v);
        let back: Vec<(String, Option<BatchId>)> = from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn decode_never_panics_on_garbage() {
        // Any byte soup must produce Err, not a panic or huge allocation.
        let garbage: Vec<u8> = (0..64u8).map(|i| i.wrapping_mul(37) ^ 0xA5).collect();
        let _ = decode_value(&mut Reader::new(&garbage));
        let _ = decode_row(&mut Reader::new(&garbage));
        let _ = decode_tree(&mut Reader::new(&garbage));
        let mut r = Reader::new(&garbage);
        while let FrameRead::Frame(_) = read_frame(&mut r) {}
    }
}
