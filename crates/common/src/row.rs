//! Rows and stream batches.
//!
//! # The sharing / copy-on-write contract
//!
//! A [`Row`] is a shared, immutable tuple: a newtype over `Arc<[Value]>`.
//! `Row::clone` is a reference-count bump, so handing a row from storage to
//! the SQL executor, from a stream append to the TE's output batch, or from
//! an ingest [`Batch`] into a procedure context never copies cell data.
//! The one legal way to mutate a row in place is [`Row::make_mut`], which
//! is copy-on-write: it returns `&mut [Value]` directly when this handle is
//! the only owner, and clones the cells into a fresh allocation first when
//! the row is shared (a *COW break*). Consequently:
//!
//! * a snapshot/undo/windowed copy of a row can never be altered through
//!   another handle — aliasing is safe by construction;
//! * arity is fixed at construction. Deriving a wider row (e.g. appending
//!   hidden lifecycle columns, or concatenating join sides) builds a new
//!   allocation via [`Row::with_appended`] / [`Row::concat`] /
//!   [`Row::prefix`];
//! * every deep copy is counted in the process-wide [`RowMetrics`], so the
//!   share-vs-copy behaviour of the hot path is observable at runtime
//!   (surfaced through `PeStats` and `ClusterMetrics`).
//!
//! A [`Batch`] is the unit of streaming work in the S-Store transaction
//! model: one transaction execution (TE) is `(stored procedure, batch)`
//! (paper §2, "Stream-oriented Transaction Model"). Because batch rows are
//! shared handles, the ingest→router→worker→procedure-context hand-off is
//! refcount traffic, not row copies.
//!
//! Rows serialize exactly like the plain `Vec<Value>` they replaced (a JSON
//! array), so command-log and snapshot formats are unchanged.

use crate::ids::BatchId;
use crate::value::Value;
use serde::{json, DeError, Deserialize, Serialize};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Row metrics
// ---------------------------------------------------------------------------

/// A cache-line-padded counter: the three row counters live on separate
/// lines so increments to different counters on different cores never
/// false-share.
#[repr(align(64))]
struct PaddedCounter(AtomicU64);

static ROW_SHARES: PaddedCounter = PaddedCounter(AtomicU64::new(0));
static ROW_DEEP_COPIES: PaddedCounter = PaddedCounter(AtomicU64::new(0));
static ROW_COW_BREAKS: PaddedCounter = PaddedCounter(AtomicU64::new(0));

/// Process-wide counters of row sharing behaviour.
///
/// Counters are monotone and global (all partitions of the process), kept
/// as relaxed atomics padded to independent cache lines. Capture a
/// [`RowMetrics::snapshot`] before and after a region and subtract to
/// attribute activity to it — but note the counters see every thread, so
/// deltas are only exact when nothing else is running.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowMetrics {
    /// Row handles cloned by reference (the zero-copy path).
    pub shares: u64,
    /// Rows whose cells were fully copied (`to_values`, `with_appended`,
    /// `prefix`, and shared-`make_mut`).
    pub deep_copies: u64,
    /// `make_mut` calls that found the row shared and had to copy
    /// (a subset of `deep_copies`).
    pub cow_breaks: u64,
}

impl RowMetrics {
    /// Current counter values.
    pub fn snapshot() -> RowMetrics {
        RowMetrics {
            shares: ROW_SHARES.0.load(Ordering::Relaxed),
            deep_copies: ROW_DEEP_COPIES.0.load(Ordering::Relaxed),
            cow_breaks: ROW_COW_BREAKS.0.load(Ordering::Relaxed),
        }
    }

    /// Counter deltas since `earlier` (saturating).
    pub fn since(&self, earlier: &RowMetrics) -> RowMetrics {
        RowMetrics {
            shares: self.shares.saturating_sub(earlier.shares),
            deep_copies: self.deep_copies.saturating_sub(earlier.deep_copies),
            cow_breaks: self.cow_breaks.saturating_sub(earlier.cow_breaks),
        }
    }
}

#[inline]
fn count(counter: &PaddedCounter) {
    counter.0.fetch_add(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Row
// ---------------------------------------------------------------------------

/// One tuple: a shared, copy-on-write cell slice. Column order follows the
/// owning schema. See the module docs for the sharing contract.
#[derive(Debug)]
pub struct Row(Arc<[Value]>);

impl Row {
    /// Build a row from owned cells (no copy; the vector is consumed).
    pub fn new(values: Vec<Value>) -> Row {
        Row(values.into())
    }

    /// Mutable access to the cells, copy-on-write: in place when this
    /// handle is unique, after a counted deep copy when it is shared.
    /// The arity cannot change.
    pub fn make_mut(&mut self) -> &mut [Value] {
        if Arc::get_mut(&mut self.0).is_none() {
            count(&ROW_COW_BREAKS);
            count(&ROW_DEEP_COPIES);
            self.0 = self.0.iter().cloned().collect();
        }
        Arc::get_mut(&mut self.0).expect("row is unique after COW")
    }

    /// True when no other handle shares this row's cells.
    pub fn is_unique(&self) -> bool {
        Arc::strong_count(&self.0) == 1
    }

    /// Owned copy of the cells (counted as a deep copy).
    pub fn to_values(&self) -> Vec<Value> {
        count(&ROW_DEEP_COPIES);
        self.0.to_vec()
    }

    /// A new, wider row: these cells followed by `extra` (counted as a
    /// deep copy — used to append hidden lifecycle columns).
    pub fn with_appended(&self, extra: impl IntoIterator<Item = Value>) -> Row {
        count(&ROW_DEEP_COPIES);
        let extra = extra.into_iter();
        let mut v: Vec<Value> = Vec::with_capacity(self.0.len() + extra.size_hint().0);
        v.extend_from_slice(&self.0);
        v.extend(extra);
        Row(v.into())
    }

    /// A new row holding the first `n` cells (counted as a deep copy —
    /// used to strip hidden columns back off).
    pub fn prefix(&self, n: usize) -> Row {
        count(&ROW_DEEP_COPIES);
        Row(Arc::from(&self.0[..n.min(self.0.len())]))
    }

    /// A new row: `self`'s cells followed by `other`'s (join concat;
    /// counted as one deep copy).
    pub fn concat(&self, other: &Row) -> Row {
        count(&ROW_DEEP_COPIES);
        let mut v: Vec<Value> = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Row(v.into())
    }
}

impl Clone for Row {
    fn clone(&self) -> Row {
        count(&ROW_SHARES);
        Row(Arc::clone(&self.0))
    }
}

impl std::ops::Deref for Row {
    type Target = [Value];
    fn deref(&self) -> &[Value] {
        &self.0
    }
}

impl AsRef<[Value]> for Row {
    fn as_ref(&self) -> &[Value] {
        &self.0
    }
}

impl From<Vec<Value>> for Row {
    fn from(v: Vec<Value>) -> Row {
        Row::new(v)
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Row {
        Row(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Row {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl PartialEq for Row {
    fn eq(&self, other: &Row) -> bool {
        self.0 == other.0
    }
}
impl Eq for Row {}

impl PartialEq<Vec<Value>> for Row {
    fn eq(&self, other: &Vec<Value>) -> bool {
        *self.0 == other[..]
    }
}
impl PartialEq<Row> for Vec<Value> {
    fn eq(&self, other: &Row) -> bool {
        self[..] == *other.0
    }
}

impl Hash for Row {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state)
    }
}

impl PartialOrd for Row {
    fn partial_cmp(&self, other: &Row) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Row {
    fn cmp(&self, other: &Row) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl Default for Row {
    fn default() -> Row {
        Row(Vec::new().into())
    }
}

/// Encodes as a JSON array of values — byte-identical to the `Vec<Value>`
/// representation this type replaced, so log/snapshot formats carry over.
impl Serialize for Row {
    fn to_json(&self) -> json::Value {
        json::Value::Array(self.0.iter().map(Serialize::to_json).collect())
    }
}

impl Deserialize for Row {
    fn from_json(v: &json::Value) -> Result<Self, DeError> {
        Vec::<Value>::from_json(v).map(Row::new)
    }
}

// ---------------------------------------------------------------------------
// Batch
// ---------------------------------------------------------------------------

/// An atomically-processed group of stream tuples.
///
/// For a border stored procedure (BSP), the batch boundary is chosen by the
/// client (e.g. "2 tuples"). For an interior stored procedure (ISP), the
/// batch is whatever the immediate upstream TE emitted on its output stream.
/// A transaction commits when its input batch has been completely processed.
///
/// `Batch::clone` shares its rows (refcount bumps), so re-enqueueing or
/// fanning a batch out never copies tuple data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Batch {
    /// Identity of this batch within its workflow. Batch ids are assigned
    /// by the input manager in arrival order; the scheduler preserves that
    /// order end-to-end.
    pub id: BatchId,
    /// The tuples (shared handles).
    pub rows: Vec<Row>,
}

impl Batch {
    /// Construct a batch from anything row-convertible.
    pub fn new<R: Into<Row>>(id: BatchId, rows: Vec<R>) -> Self {
        Batch {
            id,
            rows: rows.into_iter().map(Into::into).collect(),
        }
    }

    /// An empty batch carrying only ordering information. Interior SPs can
    /// receive empty batches when the upstream TE emitted nothing; they
    /// still execute (windows may slide on time) but see no input rows.
    pub fn empty(id: BatchId) -> Self {
        Batch {
            id,
            rows: Vec::new(),
        }
    }

    /// Number of tuples in the batch.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the batch carries no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_basics() {
        let b = Batch::new(BatchId::new(1), vec![vec![Value::Int(1)]]);
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
        let e = Batch::empty(BatchId::new(2));
        assert!(e.is_empty());
        assert_eq!(e.id, BatchId::new(2));
    }

    #[test]
    fn batch_serde_round_trip() {
        let b = Batch::new(
            BatchId::new(7),
            vec![vec![Value::Int(1), Value::Text("x".into())]],
        );
        let s = serde_json::to_string(&b).unwrap();
        let back: Batch = serde_json::from_str(&s).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn row_serializes_like_vec_value() {
        let r = Row::new(vec![Value::Int(1), Value::Text("x".into())]);
        let as_row = serde_json::to_string(&r).unwrap();
        let as_vec = serde_json::to_string(&vec![Value::Int(1), Value::Text("x".into())]).unwrap();
        assert_eq!(as_row, as_vec);
        let back: Row = serde_json::from_str(&as_row).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn clone_shares_storage() {
        let a = Row::new(vec![Value::Int(1)]);
        assert!(a.is_unique());
        let b = a.clone();
        assert!(!a.is_unique());
        assert_eq!(a, b);
    }

    #[test]
    fn make_mut_unique_mutates_in_place() {
        // Allocation identity (not the global counters, which other
        // threads bump concurrently) proves no copy happened.
        let mut a = Row::new(vec![Value::Int(1)]);
        let cells_before = a.as_ptr();
        a.make_mut()[0] = Value::Int(2);
        assert_eq!(a[0], Value::Int(2));
        assert_eq!(a.as_ptr(), cells_before, "unique row must mutate in place");
    }

    #[test]
    fn make_mut_shared_copies_and_preserves_alias() {
        let mut a = Row::new(vec![Value::Int(1)]);
        let snapshot = a.clone();
        let before = RowMetrics::snapshot();
        a.make_mut()[0] = Value::Int(99);
        let delta = RowMetrics::snapshot().since(&before);
        assert_eq!(a[0], Value::Int(99));
        assert_eq!(snapshot[0], Value::Int(1), "alias must not see the write");
        assert!(delta.cow_breaks >= 1);
        assert!(delta.deep_copies >= 1);
    }

    #[test]
    fn widen_and_narrow() {
        let a = Row::new(vec![Value::Int(1)]);
        let wide = a.with_appended([Value::Int(2), Value::Int(3)]);
        assert_eq!(wide, vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert_eq!(wide.prefix(1), a);
        let joined = a.concat(&Row::new(vec![Value::Int(9)]));
        assert_eq!(joined, vec![Value::Int(1), Value::Int(9)]);
    }

    #[test]
    fn ordering_and_hashing_follow_cells(/* Distinct + ORDER BY rely on these */) {
        use std::collections::HashSet;
        let a = Row::new(vec![Value::Int(1)]);
        let b = Row::new(vec![Value::Int(2)]);
        assert!(a < b);
        let mut set = HashSet::new();
        set.insert(a.clone());
        assert!(!set.insert(Row::new(vec![Value::Int(1)])));
        assert!(set.insert(b));
    }
}
