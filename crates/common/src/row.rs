//! Rows and stream batches.
//!
//! A [`Row`] is a plain `Vec<Value>`; a [`Batch`] is the unit of streaming
//! work in the S-Store transaction model: one transaction execution (TE) is
//! `(stored procedure, batch)` (paper §2, "Stream-oriented Transaction
//! Model").

use crate::ids::BatchId;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// One tuple. Column order follows the owning schema.
pub type Row = Vec<Value>;

/// An atomically-processed group of stream tuples.
///
/// For a border stored procedure (BSP), the batch boundary is chosen by the
/// client (e.g. "2 tuples"). For an interior stored procedure (ISP), the
/// batch is whatever the immediate upstream TE emitted on its output stream.
/// A transaction commits when its input batch has been completely processed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Batch {
    /// Identity of this batch within its workflow. Batch ids are assigned
    /// by the input manager in arrival order; the scheduler preserves that
    /// order end-to-end.
    pub id: BatchId,
    /// The tuples.
    pub rows: Vec<Row>,
}

impl Batch {
    /// Construct a batch.
    pub fn new(id: BatchId, rows: Vec<Row>) -> Self {
        Batch { id, rows }
    }

    /// An empty batch carrying only ordering information. Interior SPs can
    /// receive empty batches when the upstream TE emitted nothing; they
    /// still execute (windows may slide on time) but see no input rows.
    pub fn empty(id: BatchId) -> Self {
        Batch { id, rows: vec![] }
    }

    /// Number of tuples in the batch.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the batch carries no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_basics() {
        let b = Batch::new(BatchId::new(1), vec![vec![Value::Int(1)]]);
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
        let e = Batch::empty(BatchId::new(2));
        assert!(e.is_empty());
        assert_eq!(e.id, BatchId::new(2));
    }

    #[test]
    fn batch_serde_round_trip() {
        let b = Batch::new(
            BatchId::new(7),
            vec![vec![Value::Int(1), Value::Text("x".into())]],
        );
        let s = serde_json::to_string(&b).unwrap();
        let back: Batch = serde_json::from_str(&s).unwrap();
        assert_eq!(back, b);
    }
}
