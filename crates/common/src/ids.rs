//! Identifier newtypes.
//!
//! Small `u32`/`u64` wrappers so that a table id can never be confused with
//! a transaction id at compile time. All are `Copy` and order by their
//! numeric value, which the scheduler relies on (TE order, batch order).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize,
            Deserialize,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// Wrap a raw id.
            pub const fn new(v: $inner) -> Self {
                Self(v)
            }
            /// Unwrap to the raw integer.
            pub const fn raw(self) -> $inner {
                self.0
            }
            /// The next id in sequence (ids are dense and monotone).
            pub const fn next(self) -> Self {
                Self(self.0 + 1)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }
    };
}

id_type!(
    /// Identifies a table, stream, or window in the catalog.
    TableId, u32, "t"
);
id_type!(
    /// Identifies a stored procedure in the procedure registry.
    ProcId, u32, "sp"
);
id_type!(
    /// Identifies one transaction execution (TE). Monotone per partition;
    /// commit order equals id order under serial execution.
    TxnId, u64, "txn"
);
id_type!(
    /// Identifies an input batch flowing through a workflow. The S-Store
    /// transaction model keys everything on (procedure, batch).
    BatchId, u64, "b"
);
id_type!(
    /// Identifies a logical partition (site). Standalone instances are
    /// partition 0 (the paper's single-sited demo); the cluster runtime
    /// assigns one id per worker and threads it through `PeConfig`,
    /// `PeStats`, and the cluster metrics.
    PartitionId, u32, "p"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_displayable() {
        let a = TxnId::new(1);
        let b = a.next();
        assert!(a < b);
        assert_eq!(b.raw(), 2);
        assert_eq!(a.to_string(), "txn1");
        assert_eq!(TableId::new(7).to_string(), "t7");
        assert_eq!(BatchId::new(3).to_string(), "b3");
    }

    #[test]
    fn ids_hash_and_convert() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(ProcId::from(4u32));
        assert!(s.contains(&ProcId::new(4)));
        assert_eq!(PartitionId::new(0).raw(), 0);
    }
}
