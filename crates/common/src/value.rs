//! Runtime values.
//!
//! [`Value`] is the single dynamic cell type flowing through storage, the
//! SQL executor, windows, and stored-procedure parameters. It implements a
//! total order (`Ord`) — NULL sorts first, floats use IEEE total ordering —
//! so values can key B-tree indexes and `ORDER BY` without panics.

use crate::types::DataType;
use crate::{Error, Result};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A dynamically-typed SQL value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Text(String),
    /// Boolean.
    Bool(bool),
    /// Logical timestamp (microseconds since engine start).
    Timestamp(i64),
}

impl Value {
    /// The value's runtime type, or `None` for NULL (NULL is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    /// True for SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer accessor with a typed error (used by procedures).
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Timestamp(t) => Ok(*t),
            other => Err(Error::TypeMismatch(format!("expected INT, got {other}"))),
        }
    }

    /// Float accessor; ints widen.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error::TypeMismatch(format!("expected FLOAT, got {other}"))),
        }
    }

    /// String accessor.
    pub fn as_text(&self) -> Result<&str> {
        match self {
            Value::Text(s) => Ok(s),
            other => Err(Error::TypeMismatch(format!(
                "expected VARCHAR, got {other}"
            ))),
        }
    }

    /// Boolean accessor.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::TypeMismatch(format!(
                "expected BOOLEAN, got {other}"
            ))),
        }
    }

    /// SQL three-valued-logic equality: NULL = anything is unknown, which
    /// we surface as `None`.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.cmp_total(other) == Ordering::Equal)
    }

    /// SQL comparison; `None` when either side is NULL, mirroring
    /// three-valued logic. Numeric types compare cross-type (INT vs FLOAT).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.cmp_total(other))
    }

    /// Total ordering used for index keys and ORDER BY. NULL < everything;
    /// heterogeneous types order by a fixed type rank; INT/FLOAT/TIMESTAMP
    /// compare numerically against each other.
    pub fn cmp_total(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            (Int(a), Timestamp(b)) | (Timestamp(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) | (Timestamp(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) | (Float(a), Timestamp(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            // Heterogeneous, non-numeric: order by type rank. Only reachable
            // through user error (mixed-type column data is rejected by the
            // schema layer), but Ord must still be total.
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2,
            Value::Timestamp(_) => 2,
            Value::Text(_) => 3,
        }
    }

    /// Render as a SQL literal (used by plan explainers and tests).
    pub fn to_literal(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.is_finite() {
                    format!("{f:.1}")
                } else {
                    f.to_string()
                }
            }
            Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
            Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            Value::Timestamp(t) => t.to_string(),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_total(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_total(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Int/Float/Timestamp that compare equal must hash equal:
            // hash every numeric through its f64 bits when fractional-free
            // is impossible to guarantee; instead hash i64-representable
            // floats as ints.
            Value::Int(i) | Value::Timestamp(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                // Normalize -0.0 to 0.0 so that equal values hash equal.
                let f = if *f == 0.0 { 0.0 } else { *f };
                f.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Timestamp(t) => write!(f, "@{t}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::Text(String::new()));
    }

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.9) < Value::Int(2));
        assert_eq!(Value::Int(5), Value::Timestamp(5));
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&Value::Int(2)), hash_of(&Value::Float(2.0)));
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Timestamp(7)));
    }

    #[test]
    fn three_valued_logic() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int().unwrap(), 3);
        assert_eq!(Value::Int(3).as_float().unwrap(), 3.0);
        assert!(Value::Text("x".into()).as_int().is_err());
        assert!(Value::Bool(true).as_bool().unwrap());
        assert_eq!(Value::Text("hi".into()).as_text().unwrap(), "hi");
    }

    #[test]
    fn literals_escape_quotes() {
        assert_eq!(Value::Text("a'b".into()).to_literal(), "'a''b'");
        assert_eq!(Value::Float(2.0).to_literal(), "2.0");
        assert_eq!(Value::Null.to_literal(), "NULL");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from("s"), Value::Text("s".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn nan_is_ordered_not_panicking() {
        let nan = Value::Float(f64::NAN);
        // total_cmp puts NaN above +inf; just assert it doesn't violate Ord.
        assert_eq!(nan.cmp_total(&nan), Ordering::Equal);
        assert!(Value::Float(f64::INFINITY) < nan);
    }
}
