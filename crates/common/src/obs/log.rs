//! Structured leveled logging.
//!
//! The [`slog!`](crate::slog) macro replaces scattered `eprintln!`
//! diagnostics with one parseable line per event on stderr:
//!
//! ```text
//! ts=1754650000.123456 level=warn partition=2 trace=91 msg="command log: dropping torn tail"
//! ```
//!
//! Fields are fixed (absent partition/trace print as `-`) and `msg` is
//! `Debug`-quoted, so a line splitter on spaces outside quotes recovers
//! every field. The maximum emitted level comes from `SSTORE_LOG`
//! (`error|warn|info|debug`, default `warn`); filtering happens before
//! the message is formatted, so suppressed levels cost one relaxed
//! atomic load. Every emitted line also bumps a per-level counter in
//! the metrics registry (`log.error`, `log.warn`, …), so reports show
//! how noisy a run was even when stderr was discarded.
//!
//! ```
//! use sstore_common::slog;
//!
//! slog!(Warn, partition = 3; "restarting worker after {} failures", 2);
//! slog!(Info; "snapshot complete");
//! ```

use super::registry::{counter, Counter};
use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, LazyLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most severe first. `SSTORE_LOG=<level>` emits that
/// level and everything more severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-affecting conditions.
    Error = 0,
    /// Degraded but handled: torn tails, restarts, fallbacks.
    Warn = 1,
    /// Lifecycle milestones.
    Info = 2,
    /// High-volume diagnostics.
    Debug = 3,
}

impl Level {
    fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// Sentinel meaning "not yet read from the environment".
const UNSET: u8 = u8::MAX;

static MAX_LEVEL: AtomicU8 = AtomicU8::new(UNSET);

fn max_level() -> u8 {
    let v = MAX_LEVEL.load(Ordering::Relaxed);
    if v != UNSET {
        return v;
    }
    let parsed = std::env::var("SSTORE_LOG")
        .ok()
        .as_deref()
        .and_then(Level::parse)
        .unwrap_or(Level::Warn);
    MAX_LEVEL.store(parsed as u8, Ordering::Relaxed);
    parsed as u8
}

/// Override the maximum emitted level at runtime (tests; normal
/// configuration is the `SSTORE_LOG` environment variable).
pub fn set_max_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Would a message at `level` be emitted? The macro checks this before
/// formatting, so disabled levels are nearly free.
#[inline]
pub fn log_enabled(level: Level) -> bool {
    level as u8 <= max_level()
}

static LOG_COUNTERS: LazyLock<[Arc<Counter>; 4]> = LazyLock::new(|| {
    [
        counter("log.error"),
        counter("log.warn"),
        counter("log.info"),
        counter("log.debug"),
    ]
});

/// Emit one structured line to stderr. Called by the [`slog!`](crate::slog)
/// macro after its level check; not meant to be called directly.
pub fn log_event(
    level: Level,
    partition: Option<u32>,
    trace: Option<u64>,
    args: std::fmt::Arguments<'_>,
) {
    LOG_COUNTERS[level as usize].inc();
    let ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default();
    let mut line = format!(
        "ts={}.{:06} level={} ",
        ts.as_secs(),
        ts.subsec_micros(),
        level.name()
    );
    match partition {
        Some(p) => line.push_str(&format!("partition={p} ")),
        None => line.push_str("partition=- "),
    }
    match trace {
        Some(t) => line.push_str(&format!("trace={t} ")),
        None => line.push_str("trace=- "),
    }
    line.push_str(&format!("msg={:?}\n", std::fmt::format(args)));
    // One write call per line: concurrent loggers interleave whole
    // lines, never fragments. A failed stderr write is ignored.
    let _ = std::io::stderr().write_all(line.as_bytes());
}

/// Structured leveled log line (see [`obs::log`](self) for the format).
///
/// ```
/// use sstore_common::slog;
///
/// slog!(Error; "plain message");
/// slog!(Warn, partition = 0; "formatted: {}", 42);
/// slog!(Debug, partition = 1, trace = 7; "full context");
/// ```
#[macro_export]
macro_rules! slog {
    ($lvl:ident, partition = $p:expr, trace = $t:expr; $($arg:tt)+) => {
        if $crate::obs::log_enabled($crate::obs::Level::$lvl) {
            $crate::obs::log_event(
                $crate::obs::Level::$lvl,
                Some($p),
                Some($t),
                format_args!($($arg)+),
            );
        }
    };
    ($lvl:ident, partition = $p:expr; $($arg:tt)+) => {
        if $crate::obs::log_enabled($crate::obs::Level::$lvl) {
            $crate::obs::log_event(
                $crate::obs::Level::$lvl,
                Some($p),
                None,
                format_args!($($arg)+),
            );
        }
    };
    ($lvl:ident; $($arg:tt)+) => {
        if $crate::obs::log_enabled($crate::obs::Level::$lvl) {
            $crate::obs::log_event(
                $crate::obs::Level::$lvl,
                None,
                None,
                format_args!($($arg)+),
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_and_parse() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("nope"), None);
    }

    #[test]
    fn emitted_lines_bump_the_level_counter() {
        set_max_level(Level::Debug);
        let before = counter("log.debug").get();
        slog!(Debug, partition = 9, trace = 123; "counted {}", "once");
        assert_eq!(counter("log.debug").get(), before + 1);
        set_max_level(Level::Warn);
        let before = counter("log.debug").get();
        slog!(Debug; "suppressed");
        assert_eq!(counter("log.debug").get(), before, "filtered out");
    }
}
