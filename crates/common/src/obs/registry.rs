//! Process-wide lock-free metrics registry.
//!
//! # Registry API
//!
//! Metrics are named, process-global, and created on first use:
//!
//! ```
//! use sstore_common::obs;
//!
//! let submitted = obs::counter("ingest.submitted");
//! submitted.add(1); // relaxed atomic, sharded — safe on hot paths
//!
//! let depth = obs::gauge("queue.depth");
//! depth.set(17);
//!
//! let lat = obs::histogram("recovery.log_replay");
//! lat.record(1_250_000); // nanoseconds
//!
//! let snap = obs::registry_snapshot();
//! assert!(snap.counters["ingest.submitted"] >= 1);
//! ```
//!
//! Creation (`counter`/`gauge`/`histogram`) takes a registry lock and is
//! the **cold** path: call it once and keep the returned [`Arc`] (or a
//! `LazyLock` of it). The returned handles record through relaxed
//! atomics only — no locks, no allocation — so the **hot** path is
//! wait-free. [`Counter`]s shard their cells across cache lines keyed by
//! thread identity, so concurrent increments from worker threads do not
//! false-share. [`registry_snapshot`] walks every registered metric and
//! returns plain maps, suitable for serialization.

use super::hist::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Shards per counter: enough that each core of a typical worker pool
/// lands on its own cache line with high probability.
const SHARDS: usize = 8;

/// One cache line per shard so increments from different threads never
/// false-share (same idiom as the `RowMetrics` counters).
#[repr(align(64))]
#[derive(Default)]
struct PaddedCell(AtomicU64);

/// A monotone counter sharded across cache-line-padded cells. `add` is
/// a single relaxed `fetch_add` on the calling thread's shard; `get`
/// sums the shards (reads may briefly lag concurrent writers, which is
/// fine for reporting).
#[derive(Default)]
pub struct Counter {
    shards: [PaddedCell; SHARDS],
}

impl Counter {
    /// Increment by `n` on this thread's shard. Wait-free.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one. Wait-free.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Sum of all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// The calling thread's shard: a hash of its `ThreadId` so long-lived
/// worker threads spread across the cells.
#[inline]
fn shard_index() -> usize {
    use std::hash::BuildHasher;
    thread_local! {
        static SHARD: usize = std::hash::RandomState::new()
            .hash_one(std::thread::current().id()) as usize
            % SHARDS;
    }
    SHARD.with(|s| *s)
}

/// A point-in-time signed value (queue depths, in-flight counts).
/// All operations are single relaxed atomics.
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the value by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One named slot per metric kind. Registration order is irrelevant —
/// snapshots sort by name.
struct Slots<T> {
    slots: Mutex<Vec<(String, Arc<T>)>>,
}

impl<T: Default> Slots<T> {
    const fn new() -> Slots<T> {
        Slots {
            slots: Mutex::new(Vec::new()),
        }
    }

    fn get_or_register(&self, name: &str) -> Arc<T> {
        let mut slots = self.slots.lock().expect("obs registry poisoned");
        if let Some((_, m)) = slots.iter().find(|(n, _)| n == name) {
            return Arc::clone(m);
        }
        let m = Arc::new(T::default());
        slots.push((name.to_string(), Arc::clone(&m)));
        m
    }

    fn for_each(&self, mut f: impl FnMut(&str, &T)) {
        let slots = self.slots.lock().expect("obs registry poisoned");
        for (name, m) in slots.iter() {
            f(name, m);
        }
    }
}

static COUNTERS: Slots<Counter> = Slots::new();
static GAUGES: Slots<Gauge> = Slots::new();
static HISTOGRAMS: Slots<Histogram> = Slots::new();

/// Get or create the process-wide counter named `name`. Cold path —
/// cache the returned handle.
pub fn counter(name: &str) -> Arc<Counter> {
    COUNTERS.get_or_register(name)
}

/// Get or create the process-wide gauge named `name`. Cold path —
/// cache the returned handle.
pub fn gauge(name: &str) -> Arc<Gauge> {
    GAUGES.get_or_register(name)
}

/// Get or create the process-wide histogram named `name` (values are
/// nanoseconds by convention). Cold path — cache the returned handle.
pub fn histogram(name: &str) -> Arc<Histogram> {
    HISTOGRAMS.get_or_register(name)
}

/// Record `elapsed` nanoseconds of a named phase: shorthand for
/// `histogram(name).record(..)` on cold paths (recovery phases, restarts)
/// where caching the handle buys nothing.
pub fn record_phase_ns(name: &str, elapsed_ns: u64) {
    histogram(name).record(elapsed_ns);
}

/// Time a closure and record its wall-clock duration under `name`.
/// Returns the closure's result unchanged (works for `Result` too).
pub fn timed_phase<R>(name: &str, f: impl FnOnce() -> R) -> R {
    let start = std::time::Instant::now();
    let out = f();
    record_phase_ns(name, start.elapsed().as_nanos() as u64);
    out
}

/// A plain-data copy of every registered metric, keyed by name.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// Monotone counters.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time gauges.
    pub gauges: BTreeMap<String, i64>,
    /// Named latency histograms (e.g. recovery phases).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Snapshot every registered counter, gauge, and named histogram.
pub fn registry_snapshot() -> RegistrySnapshot {
    let mut snap = RegistrySnapshot::default();
    COUNTERS.for_each(|name, c| {
        snap.counters.insert(name.to_string(), c.get());
    });
    GAUGES.for_each(|name, g| {
        snap.gauges.insert(name.to_string(), g.get());
    });
    HISTOGRAMS.for_each(|name, h| {
        snap.histograms.insert(name.to_string(), h.snapshot());
    });
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let c = counter("test.registry.threads");
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1_000 {
                        c.inc();
                    }
                });
            }
        });
        assert!(c.get() >= 4_000);
        let again = counter("test.registry.threads");
        assert_eq!(again.get(), c.get(), "same name, same counter");
    }

    #[test]
    fn gauge_set_add_get() {
        let g = gauge("test.registry.gauge");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn snapshot_contains_registered_names() {
        counter("test.registry.snap_c").add(2);
        gauge("test.registry.snap_g").set(-1);
        histogram("test.registry.snap_h").record(500);
        let snap = registry_snapshot();
        assert!(snap.counters["test.registry.snap_c"] >= 2);
        assert_eq!(snap.gauges["test.registry.snap_g"], -1);
        assert!(snap.histograms["test.registry.snap_h"].count() >= 1);
    }

    #[test]
    fn timed_phase_records_and_passes_through() {
        let out = timed_phase("test.registry.phase", || 41 + 1);
        assert_eq!(out, 42);
        assert!(histogram("test.registry.phase").count() >= 1);
    }
}
