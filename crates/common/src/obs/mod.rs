//! `sstore_obs` — the observability substrate.
//!
//! Four cooperating pieces, all safe on hot paths:
//!
//! * **[`hist`]** — log-bucketed concurrent latency [`Histogram`]s:
//!   O(1) wait-free `record`, mergeable [`HistogramSnapshot`]s, p50/p95/
//!   p99/max with ≤ ~3% relative error.
//! * **[`registry`]** — a process-wide named-metric registry: sharded
//!   cache-padded [`Counter`]s, [`Gauge`]s, and named histograms.
//!   Registration is the cold path; recording is relaxed atomics only.
//! * **[`trace`]** — batch lifecycle tracing: a [`TraceCtx`] minted at
//!   submission and threaded through the pipeline, per-[`Stage`]
//!   cumulative-latency histograms, and bounded per-thread [`Ring`]
//!   buffers of timestamped events from which [`slowest_spans`]
//!   reconstructs the slowest batches' timelines.
//! * **[`log`]** — structured leveled logging via the
//!   [`slog!`](crate::slog) macro, filtered by `SSTORE_LOG`.
//!
//! The cluster layer assembles all of it into
//! `Cluster::observability_report()` (see `sstore-core`), a
//! serde-serializable JSON document benches and CI dump as artifacts.
//!
//! # Environment
//!
//! | Variable            | Effect                                          |
//! |---------------------|-------------------------------------------------|
//! | `SSTORE_LOG`        | max log level: `error`\|`warn`\|`info`\|`debug` (default `warn`) |
//! | `SSTORE_TRACE`      | `off`/`0` disables stage tracing (default on)   |
//! | `SSTORE_TRACE_RING` | per-thread trace ring capacity (default 4096)   |

pub mod hist;
pub mod log;
pub mod registry;
pub mod trace;

pub use hist::{Histogram, HistogramReport, HistogramSnapshot};
pub use log::{log_enabled, log_event, set_max_level, Level};
pub use registry::{
    counter, gauge, histogram, record_phase_ns, registry_snapshot, timed_phase, Counter, Gauge,
    RegistrySnapshot,
};
pub use trace::{
    collect_events, enabled, next_trace_id, now_ns, record, set_enabled, slowest_spans,
    stage_snapshot, Ring, SpanStage, Stage, TraceCtx, TraceEvent, TraceSpan, STAGES,
};
