//! Log-bucketed concurrent latency histograms.
//!
//! An HDR-style histogram over `u64` values (nanoseconds by convention):
//! each value lands in one of ~1,920 buckets arranged as 32 linear
//! sub-buckets per power-of-two "major" range, bounding the relative
//! error of any reconstructed quantile to ≤ 1/32 (~3%). Recording is a
//! single relaxed `fetch_add` on a fixed-size atomic array — O(1), lock
//! free, no allocation — so it is safe on the hottest paths.
//! [`HistogramSnapshot`]s are plain data: they merge by bucket-wise
//! addition, which makes per-thread or per-partition histograms
//! aggregate exactly (merge(a, b) and recording the union are the same
//! distribution).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-bucket resolution: 2^5 = 32 sub-buckets per major range.
const SUB_BITS: u32 = 5;
/// Sub-buckets per major range.
const SUB: usize = 1 << SUB_BITS;
/// Major ranges: values up to `u64::MAX` have bit length ≤ 64, so the
/// major index (bit length minus `SUB_BITS`, floored at 0) is ≤ 59.
const MAJORS: usize = 64 - SUB_BITS as usize;
/// Total bucket count (some low slots of each major > 0 are unused by
/// construction; the waste buys a branch-free index function).
pub(crate) const BUCKETS: usize = MAJORS * SUB;

/// Bucket index of `v`: `major` is the bit length above the linear
/// range, `sub` the top `SUB_BITS` bits below the leading one.
#[inline]
fn bucket_of(v: u64) -> usize {
    let bits = 64 - v.leading_zeros();
    let major = bits.saturating_sub(SUB_BITS);
    (major as usize) * SUB + ((v >> major) as usize & (SUB - 1))
}

/// Inclusive lower bound of bucket `idx` (the smallest value mapping
/// into it).
#[inline]
fn bucket_floor(idx: usize) -> u64 {
    let major = (idx / SUB) as u32;
    let sub = (idx % SUB) as u64;
    if major == 0 {
        sub
    } else {
        sub << major
    }
}

/// Representative value of bucket `idx`: the midpoint of its range,
/// which halves the worst-case quantile error versus the floor.
#[inline]
fn bucket_mid(idx: usize) -> u64 {
    let major = (idx / SUB) as u32;
    bucket_floor(idx) + (1u64 << major) / 2
}

/// A concurrent log-bucketed histogram. `record` is wait-free (relaxed
/// atomics only); `snapshot` may run at any time and observes a
/// near-consistent view (counts lag sums by at most the in-flight
/// recordings, which is harmless for reporting).
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram (~15 KiB of buckets).
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value. O(1), lock-free, allocation-free.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`]: quantiles are computed here, and
/// snapshots from different threads/partitions merge exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (identity element of [`HistogramSnapshot::merge`]).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (exact: tracked as a running sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) reconstructed from the buckets:
    /// the midpoint of the bucket holding the ⌈q·count⌉-th value, so
    /// within ~±1.6% of the true order statistic. `q = 1.0` returns the
    /// exact max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_mid(idx).min(self.max);
            }
        }
        self.max
    }

    /// Add `other`'s distribution into this one. Merging snapshots is
    /// exact: the result equals a snapshot that recorded both inputs.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The distribution recorded between `earlier` and this snapshot
    /// (bucket-wise saturating subtraction — the inverse of
    /// [`HistogramSnapshot::merge`] for monotone histograms). The exact
    /// `max` of the delta window is unknowable from two snapshots, so
    /// the later max is kept when anything was recorded in between.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(b, e)| b.saturating_sub(*e))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: if self.count > earlier.count {
                self.max
            } else {
                0
            },
        }
    }

    /// Condense into the serializable per-stage report row, converting
    /// nanosecond recordings to microseconds.
    pub fn report(&self) -> HistogramReport {
        const NS_PER_US: f64 = 1_000.0;
        HistogramReport {
            count: self.count,
            mean_us: self.mean() / NS_PER_US,
            p50_us: self.quantile(0.50) as f64 / NS_PER_US,
            p95_us: self.quantile(0.95) as f64 / NS_PER_US,
            p99_us: self.quantile(0.99) as f64 / NS_PER_US,
            max_us: self.max as f64 / NS_PER_US,
        }
    }
}

/// Serializable summary of one histogram: count plus headline
/// percentiles in microseconds. This is the shape that appears per
/// stage in `Cluster::observability_report()`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramReport {
    /// Number of recorded values.
    pub count: u64,
    /// Exact mean, µs.
    pub mean_us: f64,
    /// Median, µs (bucketed, ≤ ~1.6% relative error).
    pub p50_us: f64,
    /// 95th percentile, µs.
    pub p95_us: f64,
    /// 99th percentile, µs.
    pub p99_us: f64,
    /// Exact maximum, µs.
    pub max_us: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_in_linear_range() {
        // Values below 2^SUB_BITS each get their own bucket.
        for v in 0..SUB as u64 {
            assert_eq!(bucket_of(v), v as usize, "v={v}");
            assert_eq!(bucket_floor(v as usize), v);
        }
    }

    #[test]
    fn bucket_floor_is_inclusive_lower_bound() {
        // For a spread of values, the bucket's floor must be ≤ v and the
        // next bucket's floor must be > v (floors are monotone over the
        // occupied indices).
        for shift in 0..63u32 {
            for off in [0u64, 1, 3] {
                let v = (1u64 << shift) + off;
                let idx = bucket_of(v);
                assert!(bucket_floor(idx) <= v, "floor(bucket({v})) > {v}");
                let upper = bucket_floor(idx) + (1u64 << (idx / SUB)) - 1;
                assert!(v <= upper, "{v} above bucket upper bound {upper}");
            }
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let h = Histogram::new();
        for v in [1u64, 100, 999, 5_000, 123_456, 9_999_999, u32::MAX as u64] {
            h.record(v);
        }
        let s = h.snapshot();
        // Every recorded value reconstructs within 1/32 relative error
        // via its bucket midpoint.
        for v in [1u64, 100, 999, 5_000, 123_456, 9_999_999, u32::MAX as u64] {
            let mid = bucket_mid(bucket_of(v)) as f64;
            let err = (mid - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / 32.0 + 1e-9, "v={v} mid={mid} err={err}");
        }
        assert_eq!(s.count(), 7);
        assert_eq!(s.max(), u32::MAX as u64);
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 10_000);
        for (q, want) in [(0.5, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let got = s.quantile(q) as f64;
            let err = (got - want).abs() / want;
            assert!(err < 0.04, "q={q} got={got} want={want} err={err}");
        }
        assert_eq!(s.quantile(1.0), 10_000);
        let mean = s.mean();
        assert!((mean - 5_000.5).abs() < 1e-6, "mean {mean}");
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = HistogramSnapshot::empty();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.report(), HistogramReport::default());
    }

    #[test]
    fn merge_equals_union() {
        let a = Histogram::new();
        let b = Histogram::new();
        let u = Histogram::new();
        for v in 0..1_000u64 {
            let x = v * 97 + 13;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            u.record(x);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, u.snapshot());
    }

    #[test]
    fn quantile_edge_ranks() {
        let h = Histogram::new();
        h.record(7);
        let s = h.snapshot();
        // A single sample is every quantile.
        assert_eq!(s.quantile(0.0), 7);
        assert_eq!(s.quantile(0.5), 7);
        assert_eq!(s.quantile(1.0), 7);
    }
}
