//! Batch lifecycle tracing.
//!
//! Every batch admitted through the cluster front door is minted a
//! [`TraceCtx`] — a `Copy` pair of (trace id, submit timestamp) cheap
//! enough to thread through queues and worker messages. Each pipeline
//! [`Stage`] the batch passes (routed → queued → executed → logged →
//! fsynced → forwarded → acked, plus the 2PC prepare/decide pair) calls
//! [`record`], which does two O(1) things:
//!
//! 1. adds the **cumulative** latency since submit to that stage's
//!    process-wide [`Histogram`] (relaxed atomics — wait-free), and
//! 2. appends a timestamped [`TraceEvent`] to the calling thread's
//!    bounded [`Ring`] buffer (fixed memory, overwrite-oldest, no
//!    allocation).
//!
//! Because stage histograms record time-since-submit, the per-stage
//! p95s in a report read as a waterfall: `fsynced.p95 - executed.p95`
//! approximates the durability wait at the tail. Exact per-stage deltas
//! for individual batches come from the ring buffers: [`slowest_spans`]
//! stitches the buffered events back into per-trace timelines and
//! returns the K slowest.
//!
//! Tracing is on by default; `SSTORE_TRACE=off` (or `0`) disables it at
//! startup and [`set_enabled`] toggles it at runtime (used by the E9
//! bench to measure the overhead of the instrumentation itself).

use super::hist::{Histogram, HistogramSnapshot};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, LazyLock, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Monotonic clock
// ---------------------------------------------------------------------------

/// Nanoseconds since the process's first observability timestamp
/// (monotonic, never wall-clock — immune to NTP steps).
#[inline]
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Trace context
// ---------------------------------------------------------------------------

/// The identity a batch carries through the pipeline: a unique id and
/// the submit timestamp. 16 bytes, `Copy` — threading it through a
/// queue costs nothing beyond the bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Unique per process, minted at submission.
    pub id: u64,
    /// [`now_ns`] at mint time.
    pub t0: u64,
}

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

impl TraceCtx {
    /// Mint a fresh trace at the current instant.
    pub fn mint() -> TraceCtx {
        TraceCtx {
            id: NEXT_TRACE.fetch_add(1, Ordering::Relaxed),
            t0: now_ns(),
        }
    }
}

/// The next trace id that will be minted. A report captures this at
/// baseline time and passes it as `min_id` to [`slowest_spans`] so only
/// traces born after the baseline appear.
pub fn next_trace_id() -> u64 {
    NEXT_TRACE.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Stages
// ---------------------------------------------------------------------------

/// The pipeline stages a traced batch passes through. Each records the
/// cumulative time since submit when reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Router resolved the target partition and the batch entered the
    /// ingest queue.
    Routed,
    /// A worker dequeued the batch from its ingest queue.
    Queued,
    /// The batch's border record was appended to the command log.
    Logged,
    /// The transaction(s) for the batch finished executing.
    Executed,
    /// The group-commit fsync covering the batch's record completed.
    Fsynced,
    /// 2PC only: the participant's yes-vote was made durable.
    Prepared,
    /// 2PC only: the coordinator's decision was applied here.
    Decided,
    /// A cross-partition forward for the batch left the sending
    /// partition (picked up by the forward hub).
    Forwarded,
    /// The receiving partition durably logged the forward and the edge
    /// ack released the upstream backup.
    Acked,
}

/// Every stage, in pipeline order (the order reports list them in).
pub const STAGES: [Stage; 9] = [
    Stage::Routed,
    Stage::Queued,
    Stage::Logged,
    Stage::Executed,
    Stage::Fsynced,
    Stage::Prepared,
    Stage::Decided,
    Stage::Forwarded,
    Stage::Acked,
];

impl Stage {
    /// Stable lowercase name (report keys, log lines).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Routed => "routed",
            Stage::Queued => "queued",
            Stage::Logged => "logged",
            Stage::Executed => "executed",
            Stage::Fsynced => "fsynced",
            Stage::Prepared => "prepared",
            Stage::Decided => "decided",
            Stage::Forwarded => "forwarded",
            Stage::Acked => "acked",
        }
    }

    #[inline]
    fn index(self) -> usize {
        match self {
            Stage::Routed => 0,
            Stage::Queued => 1,
            Stage::Logged => 2,
            Stage::Executed => 3,
            Stage::Fsynced => 4,
            Stage::Prepared => 5,
            Stage::Decided => 6,
            Stage::Forwarded => 7,
            Stage::Acked => 8,
        }
    }
}

static STAGE_HISTS: LazyLock<[Histogram; STAGES.len()]> =
    LazyLock::new(|| std::array::from_fn(|_| Histogram::new()));

// ---------------------------------------------------------------------------
// Enable/disable
// ---------------------------------------------------------------------------

static ENABLED: LazyLock<AtomicBool> = LazyLock::new(|| {
    let off = std::env::var("SSTORE_TRACE")
        .map(|v| v.eq_ignore_ascii_case("off") || v == "0")
        .unwrap_or(false);
    AtomicBool::new(!off)
});

/// Whether stage recording is active.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn stage recording on or off at runtime (benchmarks use this to
/// measure tracing overhead; `SSTORE_TRACE=off` sets the initial state).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------------

/// Record that `trace` reached `stage` now: cumulative latency into the
/// stage histogram, timestamped event into this thread's ring buffer.
/// Wait-free and allocation-free; a no-op when tracing is disabled.
#[inline]
pub fn record(stage: Stage, trace: TraceCtx) {
    if !enabled() {
        return;
    }
    let now = now_ns();
    STAGE_HISTS[stage.index()].record(now.saturating_sub(trace.t0));
    with_ring(|ring| {
        ring.push(TraceEvent {
            trace: trace.id,
            stage,
            at_ns: now,
        })
    });
}

/// Snapshot one stage's cumulative-latency histogram.
pub fn stage_snapshot(stage: Stage) -> HistogramSnapshot {
    STAGE_HISTS[stage.index()].snapshot()
}

// ---------------------------------------------------------------------------
// Ring buffers
// ---------------------------------------------------------------------------

/// One recorded stage passage. 24 bytes, `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The batch's trace id.
    pub trace: u64,
    /// Which stage was reached.
    pub stage: Stage,
    /// [`now_ns`] when it was reached.
    pub at_ns: u64,
}

/// A bounded ring of [`TraceEvent`]s: fixed capacity allocated up
/// front, overwrite-oldest when full. Pushing never allocates.
pub struct Ring {
    buf: Vec<TraceEvent>,
    /// Next write position (wraps at capacity once full).
    next: usize,
    /// Events discarded because the ring was full.
    overwrites: u64,
    cap: usize,
}

impl Ring {
    /// A ring holding at most `cap` events (`cap` ≥ 1).
    pub fn new(cap: usize) -> Ring {
        let cap = cap.max(1);
        Ring {
            buf: Vec::with_capacity(cap),
            next: 0,
            overwrites: 0,
            cap,
        }
    }

    /// Append an event, overwriting the oldest once the ring is full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.overwrites += 1;
        }
        self.next = (self.next + 1) % self.cap;
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        if self.buf.len() < self.cap {
            self.buf.clone()
        } else {
            let (tail, head) = self.buf.split_at(self.next);
            head.iter().chain(tail).copied().collect()
        }
    }

    /// How many events have been overwritten (lost) so far.
    pub fn overwrites(&self) -> u64 {
        self.overwrites
    }
}

/// Per-thread ring capacity: `SSTORE_TRACE_RING` (events), default 4096
/// (~96 KiB per recording thread).
fn ring_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("SSTORE_TRACE_RING")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&c| c > 0)
            .unwrap_or(4096)
    })
}

/// Every thread's ring, registered on that thread's first record. The
/// mutex per ring is uncontended except while a report is collecting.
static RINGS: Mutex<Vec<Arc<Mutex<Ring>>>> = Mutex::new(Vec::new());

fn with_ring(f: impl FnOnce(&mut Ring)) {
    thread_local! {
        static RING: Arc<Mutex<Ring>> = {
            let ring = Arc::new(Mutex::new(Ring::new(ring_capacity())));
            RINGS.lock().expect("obs rings poisoned").push(Arc::clone(&ring));
            ring
        };
    }
    RING.with(|ring| f(&mut ring.lock().expect("obs ring poisoned")));
}

/// Copy out every thread's buffered events (and the total overwrite
/// count), oldest-first per thread.
pub fn collect_events() -> (Vec<TraceEvent>, u64) {
    let rings = RINGS.lock().expect("obs rings poisoned");
    let mut events = Vec::new();
    let mut overwrites = 0;
    for ring in rings.iter() {
        let ring = ring.lock().expect("obs ring poisoned");
        events.extend(ring.events());
        overwrites += ring.overwrites();
    }
    (events, overwrites)
}

// ---------------------------------------------------------------------------
// Trace spans (report-time reconstruction)
// ---------------------------------------------------------------------------

/// One stage passage inside a [`TraceSpan`], as an offset from the
/// span's first buffered event.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpanStage {
    /// Stage name (see [`Stage::name`]).
    pub stage: String,
    /// Microseconds after the span's first event.
    pub at_us: f64,
}

/// A reconstructed per-batch timeline: every stage event buffered for
/// one trace id, ordered by time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceSpan {
    /// The batch's trace id.
    pub trace: u64,
    /// First-to-last event duration, µs.
    pub total_us: f64,
    /// The stage passages, in time order.
    pub stages: Vec<SpanStage>,
}

/// Stitch the ring buffers back into per-trace timelines and return the
/// `k` slowest (by first-to-last duration), slowest first. Only traces
/// whose events survived in some ring appear; with default ring sizes
/// that covers the most recent few thousand batches per thread.
pub fn slowest_spans(k: usize, min_id: u64) -> Vec<TraceSpan> {
    let (mut events, _) = collect_events();
    events.retain(|e| e.trace >= min_id);
    events.sort_by_key(|e| (e.trace, e.at_ns));
    let mut spans: Vec<TraceSpan> = Vec::new();
    let mut i = 0;
    while i < events.len() {
        let trace = events[i].trace;
        let mut j = i;
        while j < events.len() && events[j].trace == trace {
            j += 1;
        }
        let t_first = events[i].at_ns;
        let t_last = events[j - 1].at_ns;
        spans.push(TraceSpan {
            trace,
            total_us: (t_last - t_first) as f64 / 1_000.0,
            stages: events[i..j]
                .iter()
                .map(|e| SpanStage {
                    stage: e.stage.name().to_string(),
                    at_us: (e.at_ns - t_first) as f64 / 1_000.0,
                })
                .collect(),
        });
        i = j;
    }
    spans.sort_by(|a, b| b.total_us.total_cmp(&a.total_us));
    spans.truncate(k);
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trace: u64, at_ns: u64) -> TraceEvent {
        TraceEvent {
            trace,
            stage: Stage::Routed,
            at_ns,
        }
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let mut r = Ring::new(4);
        for t in 1..=4 {
            r.push(ev(t, t * 10));
        }
        assert_eq!(r.overwrites(), 0);
        assert_eq!(
            r.events().iter().map(|e| e.trace).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        // Two more: 1 and 2 (the oldest) fall out, order stays oldest-first.
        r.push(ev(5, 50));
        r.push(ev(6, 60));
        assert_eq!(r.overwrites(), 2);
        assert_eq!(
            r.events().iter().map(|e| e.trace).collect::<Vec<_>>(),
            vec![3, 4, 5, 6]
        );
    }

    #[test]
    fn ring_push_never_reallocates() {
        let mut r = Ring::new(8);
        let cap_before = r.buf.capacity();
        for t in 0..100 {
            r.push(ev(t, t));
        }
        assert_eq!(r.buf.capacity(), cap_before, "push must not reallocate");
        assert_eq!(r.events().len(), 8);
        assert_eq!(r.overwrites(), 92);
    }

    #[test]
    fn trace_ids_are_unique_and_t0_monotone() {
        let a = TraceCtx::mint();
        let b = TraceCtx::mint();
        assert_ne!(a.id, b.id);
        assert!(b.t0 >= a.t0);
    }

    #[test]
    fn record_lands_in_stage_histogram_and_ring() {
        let t = TraceCtx::mint();
        let before = stage_snapshot(Stage::Decided).count();
        record(Stage::Decided, t);
        assert_eq!(stage_snapshot(Stage::Decided).count(), before + 1);
        let (events, _) = collect_events();
        assert!(events.iter().any(|e| e.trace == t.id));
    }

    #[test]
    fn slowest_spans_orders_by_duration() {
        // Record two synthetic traces through this thread's ring.
        let slow = TraceCtx::mint();
        let fast = TraceCtx::mint();
        record(Stage::Routed, slow);
        record(Stage::Routed, fast);
        record(Stage::Executed, fast);
        std::thread::sleep(std::time::Duration::from_millis(2));
        record(Stage::Executed, slow);
        let spans = slowest_spans(2, slow.id.min(fast.id));
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].trace, slow.id, "slowest first");
        assert!(spans[0].total_us >= spans[1].total_us);
        assert_eq!(spans[0].stages.len(), 2);
        assert_eq!(spans[0].stages[0].stage, "routed");
        assert_eq!(spans[0].stages[0].at_us, 0.0);
    }
}
