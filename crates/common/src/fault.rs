//! Deterministic fault injection.
//!
//! The durability and 2PC paths embed named **kill points** at the stage
//! boundaries that matter for crash consistency (`prepare-logged`,
//! `commit-point` pre/post fsync, `decide-logged`, `forward-logged`,
//! `snapshot-mid-write`, `log-mid-write`). In normal operation every kill
//! point is a single relaxed atomic load — effectively free. A test (or
//! the crash-campaign child process) *arms* one point with [`arm`]; from
//! the `nth` hit onward the process either panics (unwinding just the
//! thread that hit it — the in-process sandbox) or aborts outright (the
//! child-process sandbox, leaving the on-disk state exactly as a real
//! crash would).
//!
//! Arming is process-global: tests that arm kill points must serialize
//! against other cluster-driving tests in the same test binary (each
//! integration-test *file* is its own process, so cross-file interference
//! is impossible). Always [`disarm`] before running recovery in the same
//! process — replayed protocol steps skip kill points, but live
//! post-recovery traffic does not.

use crate::error::Error;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// What firing a kill point does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillMode {
    /// `panic!` — unwinds the hitting thread only. Cluster worker threads
    /// die in place; the main thread can catch with
    /// `std::panic::catch_unwind`.
    Panic,
    /// `std::process::abort()` — the whole process vanishes, exactly like
    /// a crash. Used by the campaign's child-process sandbox.
    Abort,
}

/// What an armed point injects when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FireAction {
    /// Die at the site (panic or abort) — consumed by [`should_fire`] /
    /// [`kill_point`].
    Kill(KillMode),
    /// Report a disk IO failure at the site — consumed by [`io_error`].
    /// The site must handle it exactly like a real failed write/fsync:
    /// no partial state, a typed `Err`, never a panic.
    IoError,
}

struct Armed {
    point: String,
    /// 1-based hit index at which the point starts firing. Every hit at
    /// or past `nth` fires (sticky, so concurrent workers all die) —
    /// unless `once` is set, in which case exactly the `nth` hit fires
    /// and the registry disarms itself.
    nth: u64,
    hits: u64,
    action: FireAction,
    once: bool,
}

static ANY_ARMED: AtomicBool = AtomicBool::new(false);
static ARMED: Mutex<Option<Armed>> = Mutex::new(None);
static NOTES: Mutex<Vec<(String, u64)>> = Mutex::new(Vec::new());

/// Arm `point`: its `nth` hit (1-based) and every later hit fire with
/// `mode`. Replaces any previously armed point.
pub fn arm(point: &str, nth: u64, mode: KillMode) {
    arm_with(point, nth, FireAction::Kill(mode), false);
}

/// Arm `point` to fire with `mode` exactly once, on its `nth` hit
/// (1-based), then self-disarm. Used for supervised-restart drills: the
/// worker must die once and then come back cleanly, so the restarted
/// worker's traffic must not re-trip the point.
pub fn arm_once(point: &str, nth: u64, mode: KillMode) {
    arm_with(point, nth, FireAction::Kill(mode), true);
}

/// Arm `point` to inject a disk IO error ([`io_error`]) exactly once, on
/// its `nth` hit (1-based), then self-disarm. One-shot by design: the
/// site under test must fail cleanly and then succeed on retry.
pub fn arm_io_error(point: &str, nth: u64) {
    arm_with(point, nth, FireAction::IoError, true);
}

fn arm_with(point: &str, nth: u64, action: FireAction, once: bool) {
    let mut g = ARMED.lock().unwrap_or_else(|p| p.into_inner());
    *g = Some(Armed {
        point: point.to_string(),
        nth: nth.max(1),
        hits: 0,
        action,
        once,
    });
    ANY_ARMED.store(true, Ordering::SeqCst);
}

/// Disarm whatever is armed. Call before recovering in the same process.
pub fn disarm() {
    let mut g = ARMED.lock().unwrap_or_else(|p| p.into_inner());
    *g = None;
    ANY_ARMED.store(false, Ordering::SeqCst);
}

/// Arm from the environment (the child-process sandbox entry):
/// `SSTORE_FAULT_POINT` names the point, `SSTORE_FAULT_NTH` the 1-based
/// firing hit (default 1), and `SSTORE_FAULT_MODE` selects the action —
/// `abort` (default: a crash sandbox), `io` (one-shot injected IO error),
/// or `panic-once` (one-shot worker kill, exercising supervision).
pub fn arm_from_env() {
    if let Ok(point) = std::env::var("SSTORE_FAULT_POINT") {
        let nth = std::env::var("SSTORE_FAULT_NTH")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1);
        match std::env::var("SSTORE_FAULT_MODE").as_deref() {
            Ok("io") => arm_io_error(&point, nth),
            Ok("panic-once") => arm_once(&point, nth, KillMode::Panic),
            _ => arm(&point, nth, KillMode::Abort),
        }
    }
}

/// A kill point: dies here (per the armed mode) when `point` is armed and
/// due. The disarmed fast path is one atomic load.
pub fn kill_point(point: &str) {
    if let Some(mode) = should_fire(point) {
        die(point, mode);
    }
}

/// Like [`kill_point`] but gives the call site a chance to do damage
/// first (e.g. tear a half-written frame onto disk) before calling
/// [`die`] itself. Returns the mode to die with when the point is due.
pub fn should_fire(point: &str) -> Option<KillMode> {
    if !ANY_ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let mut g = ARMED.lock().unwrap_or_else(|p| p.into_inner());
    let armed = g.as_mut()?;
    let FireAction::Kill(mode) = armed.action else {
        return None;
    };
    if armed.point != point {
        return None;
    }
    armed.hits += 1;
    if armed.hits < armed.nth {
        return None;
    }
    if armed.once {
        *g = None;
        ANY_ARMED.store(false, Ordering::SeqCst);
    }
    Some(mode)
}

/// An IO fault site: returns the injected error when `point` is armed
/// (via [`arm_io_error`]) and due, `None` otherwise. The disarmed fast
/// path is one atomic load. Firing self-disarms (one-shot), so the call
/// site's retry path sees a healthy disk.
pub fn io_error(point: &str) -> Option<Error> {
    if !ANY_ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let mut g = ARMED.lock().unwrap_or_else(|p| p.into_inner());
    let armed = g.as_mut()?;
    if armed.action != FireAction::IoError || armed.point != point {
        return None;
    }
    armed.hits += 1;
    if armed.hits < armed.nth {
        return None;
    }
    if armed.once {
        *g = None;
        ANY_ARMED.store(false, Ordering::SeqCst);
    }
    crate::slog!(Warn; "sstore-fault: injected io error at `{point}`");
    Some(Error::Io(format!("injected io fault at `{point}`")))
}

/// Die at `point` with `mode`. Diverges.
pub fn die(point: &str, mode: KillMode) -> ! {
    match mode {
        KillMode::Abort => {
            crate::slog!(Warn; "sstore-fault: injected crash at `{point}`");
            std::process::abort();
        }
        KillMode::Panic => panic!("sstore-fault: injected kill at `{point}`"),
    }
}

/// Record that a named (non-fatal) event happened — e.g. the command-log
/// reader surviving a torn tail. Tests assert on [`noted`].
pub fn note(event: &str) {
    let mut g = NOTES.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(e) = g.iter_mut().find(|(n, _)| n == event) {
        e.1 += 1;
    } else {
        g.push((event.to_string(), 1));
    }
}

/// How many times `event` was [`note`]d in this process.
pub fn noted(event: &str) -> u64 {
    let g = NOTES.lock().unwrap_or_else(|p| p.into_inner());
    g.iter().find(|(n, _)| n == event).map(|e| e.1).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test covers the whole lifecycle: the registry is process-global,
    // so splitting these into parallel #[test]s would race.
    #[test]
    fn arm_fire_disarm_lifecycle() {
        disarm();
        assert!(should_fire("p").is_none(), "disarmed points never fire");

        arm("p", 2, KillMode::Panic);
        assert!(should_fire("other").is_none(), "wrong point never fires");
        assert!(should_fire("p").is_none(), "hit 1 of nth=2 must not fire");
        assert_eq!(should_fire("p"), Some(KillMode::Panic), "hit 2 fires");
        assert_eq!(should_fire("p"), Some(KillMode::Panic), "sticky after nth");

        disarm();
        assert!(should_fire("p").is_none());

        arm("q", 1, KillMode::Panic);
        let err = std::panic::catch_unwind(|| kill_point("q")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected kill at `q`"), "{msg}");
        disarm();

        let before = noted("evt");
        note("evt");
        note("evt");
        assert_eq!(noted("evt"), before + 2);

        // One-shot kill: exactly the nth hit fires, then self-disarms.
        arm_once("w", 2, KillMode::Panic);
        assert!(should_fire("w").is_none(), "hit 1 of nth=2 must not fire");
        assert_eq!(should_fire("w"), Some(KillMode::Panic), "hit 2 fires");
        assert!(should_fire("w").is_none(), "once-armed self-disarms");

        // IO-error arming: invisible to kill points, one-shot, typed Err.
        arm_io_error("d", 2);
        assert!(should_fire("d").is_none(), "io arming never kills");
        assert!(io_error("other").is_none(), "wrong point never fires");
        assert!(io_error("d").is_none(), "hit 1 of nth=2 must not fire");
        let e = io_error("d").expect("hit 2 fires");
        assert_eq!(e.kind(), "io");
        assert!(e.to_string().contains("injected io fault at `d`"), "{e}");
        assert!(io_error("d").is_none(), "io faults are one-shot");

        // Kill arming is invisible to io sites.
        arm("k", 1, KillMode::Panic);
        assert!(io_error("k").is_none(), "kill arming never injects io");
        disarm();
    }
}
