//! Column data types and coercion rules.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The data types supported by the engine's SQL subset.
///
/// This matches the surface the H-Store benchmarks (Voter et al.) need:
/// 64-bit integers, doubles, varchar, booleans, and timestamps. Timestamps
/// are logical microseconds (see [`crate::clock::Clock`]) so that runs are
/// deterministic and replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer (`INT` / `BIGINT`).
    Int,
    /// 64-bit IEEE float (`FLOAT` / `DOUBLE`).
    Float,
    /// UTF-8 string (`VARCHAR`).
    Text,
    /// Boolean (`BOOLEAN`).
    Bool,
    /// Logical timestamp in microseconds (`TIMESTAMP`).
    Timestamp,
}

impl DataType {
    /// True if a value of type `from` may be stored in a column of type
    /// `self` (possibly with a widening conversion).
    pub fn accepts(self, from: DataType) -> bool {
        self == from
            || (self == DataType::Float && from == DataType::Int)
            || (self == DataType::Timestamp && from == DataType::Int)
            || (self == DataType::Int && from == DataType::Timestamp)
    }

    /// Coerce `v` to this type if possible. `Null` passes through untouched
    /// (nullability is checked separately by the schema layer).
    pub fn coerce(self, v: Value) -> Option<Value> {
        match (self, v) {
            (_, Value::Null) => Some(Value::Null),
            (DataType::Int, Value::Int(i)) => Some(Value::Int(i)),
            (DataType::Int, Value::Timestamp(t)) => Some(Value::Int(t)),
            (DataType::Float, Value::Float(f)) => Some(Value::Float(f)),
            (DataType::Float, Value::Int(i)) => Some(Value::Float(i as f64)),
            (DataType::Text, Value::Text(s)) => Some(Value::Text(s)),
            (DataType::Bool, Value::Bool(b)) => Some(Value::Bool(b)),
            (DataType::Timestamp, Value::Timestamp(t)) => Some(Value::Timestamp(t)),
            (DataType::Timestamp, Value::Int(i)) => Some(Value::Timestamp(i)),
            _ => None,
        }
    }

    /// Stable one-byte code for the binary metadata codec.
    pub fn code(self) -> u8 {
        match self {
            DataType::Int => 0,
            DataType::Float => 1,
            DataType::Text => 2,
            DataType::Bool => 3,
            DataType::Timestamp => 4,
        }
    }

    /// Inverse of [`DataType::code`].
    pub fn from_code(code: u8) -> Option<DataType> {
        Some(match code {
            0 => DataType::Int,
            1 => DataType::Float,
            2 => DataType::Text,
            3 => DataType::Bool,
            4 => DataType::Timestamp,
            _ => return None,
        })
    }

    /// SQL keyword for this type, as accepted by the parser.
    pub fn sql_name(self) -> &'static str {
        match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "VARCHAR",
            DataType::Bool => "BOOLEAN",
            DataType::Timestamp => "TIMESTAMP",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_widens_to_float() {
        assert!(DataType::Float.accepts(DataType::Int));
        assert_eq!(
            DataType::Float.coerce(Value::Int(3)),
            Some(Value::Float(3.0))
        );
    }

    #[test]
    fn text_does_not_coerce_to_int() {
        assert!(!DataType::Int.accepts(DataType::Text));
        assert_eq!(DataType::Int.coerce(Value::Text("3".into())), None);
    }

    #[test]
    fn null_passes_all_types() {
        for ty in [
            DataType::Int,
            DataType::Float,
            DataType::Text,
            DataType::Bool,
            DataType::Timestamp,
        ] {
            assert_eq!(ty.coerce(Value::Null), Some(Value::Null));
        }
    }

    #[test]
    fn timestamp_int_interop() {
        assert_eq!(
            DataType::Timestamp.coerce(Value::Int(42)),
            Some(Value::Timestamp(42))
        );
        assert_eq!(
            DataType::Int.coerce(Value::Timestamp(42)),
            Some(Value::Int(42))
        );
    }

    #[test]
    fn sql_names_round_trip_display() {
        assert_eq!(DataType::Text.to_string(), "VARCHAR");
        assert_eq!(DataType::Timestamp.to_string(), "TIMESTAMP");
    }
}
