//! Property tests: native window maintenance against a reference model,
//! for arbitrary (size, slide) and insert sequences; plus abort exactness.

use proptest::prelude::*;
use sstore_common::{Column, DataType, Schema, TableId, Value};
use sstore_engine::windows::insert_into_window;
use sstore_storage::catalog::{TableKind, WindowKind, WindowSpec};
use sstore_storage::{Database, UndoLog};

fn window_db(size: u64, slide: u64) -> (Database, TableId) {
    let mut db = Database::new();
    let schema = Schema::keyless(vec![Column::new("v", DataType::Int)]).unwrap();
    let w = db
        .create_window(
            "w",
            schema,
            WindowSpec {
                kind: WindowKind::Tuple { size, slide },
                owner: None,
            },
        )
        .unwrap();
    (db, w)
}

fn contents(db: &Database, w: TableId) -> Vec<i64> {
    let mut rows: Vec<(i64, i64)> = db
        .table(w)
        .unwrap()
        .scan()
        .map(|(_, r)| (r[1].as_int().unwrap(), r[0].as_int().unwrap()))
        .collect();
    rows.sort_unstable();
    rows.into_iter().map(|(_, v)| v).collect()
}

/// Reference model: keeps all inserted tuples; after every slide event the
/// window holds exactly the newest `size`. Between slides it may hold up
/// to `size + slide - 1` (documented eviction-at-slide behaviour).
struct Model {
    size: u64,
    slide: u64,
    all: Vec<i64>,
    pending: u64,
    slides: u64,
    evicted_upto: usize,
}

impl Model {
    fn new(size: u64, slide: u64) -> Model {
        Model {
            size,
            slide,
            all: vec![],
            pending: 0,
            slides: 0,
            evicted_upto: 0,
        }
    }
    fn insert(&mut self, v: i64) -> bool {
        self.all.push(v);
        self.pending += 1;
        if self.all.len() as u64 >= self.size && self.pending >= self.slide {
            self.pending = 0;
            self.slides += 1;
            self.evicted_upto = self.all.len() - self.size as usize;
            true
        } else {
            false
        }
    }
    fn contents(&self) -> Vec<i64> {
        self.all[self.evicted_upto..].to_vec()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn window_matches_model(
        size in 1u64..20,
        slide in 1u64..10,
        values in prop::collection::vec(any::<i64>(), 0..100),
    ) {
        let (mut db, w) = window_db(size, slide);
        let mut model = Model::new(size, slide);
        let mut undo = UndoLog::new();
        for (i, &v) in values.iter().enumerate() {
            let r = insert_into_window(&mut db, &mut undo, w, vec![Value::Int(v)], i as i64)
                .unwrap();
            let model_slid = model.insert(v);
            prop_assert_eq!(r.slid, model_slid, "slide mismatch at tuple {}", i);
            prop_assert_eq!(contents(&db, w), model.contents(), "contents diverged at {}", i);
        }
        // Lifecycle counters agree.
        match db.kind(w).unwrap() {
            TableKind::Window(m) => {
                prop_assert_eq!(m.total_inserted, values.len() as u64);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn aborted_window_txn_leaves_no_trace(
        size in 1u64..10,
        slide in 1u64..5,
        committed in prop::collection::vec(any::<i64>(), 0..40),
        aborted in prop::collection::vec(any::<i64>(), 1..40),
    ) {
        let (mut db, w) = window_db(size, slide);
        let mut undo = UndoLog::new();
        for (i, &v) in committed.iter().enumerate() {
            insert_into_window(&mut db, &mut undo, w, vec![Value::Int(v)], i as i64).unwrap();
        }
        undo.commit();
        let snapshot_rows = contents(&db, w);
        let snapshot_kind = db.kind(w).unwrap().clone();

        let mut undo = UndoLog::new();
        for (i, &v) in aborted.iter().enumerate() {
            insert_into_window(
                &mut db,
                &mut undo,
                w,
                vec![Value::Int(v)],
                (committed.len() + i) as i64,
            )
            .unwrap();
        }
        undo.rollback(&mut db).unwrap();

        prop_assert_eq!(contents(&db, w), snapshot_rows);
        prop_assert_eq!(db.kind(w).unwrap(), &snapshot_kind);
    }
}
