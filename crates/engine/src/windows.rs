//! Native window maintenance.
//!
//! Windows are tables with hidden `__seq`/`__ts` columns plus lifecycle
//! counters in the catalog ([`sstore_storage::catalog::WindowMeta`]). The
//! EE maintains them on every insert: assign sequence/timestamp, evict
//! expired tuples, and detect slide boundaries — all inside the running
//! transaction, with undo recorded for each step so aborts restore both
//! rows *and* counters exactly.
//!
//! **Eviction is O(evicted), not O(window).** Each window keeps an
//! arrival-ordered deque of row ids (`TableMeta::arrivals`, front =
//! oldest). Sequence numbers increase strictly and `__ts` stamps come from
//! the partition's monotone logical clock, so every eviction predicate
//! (tuple cutoff, time expiry) selects a *prefix* of the deque: slide
//! maintenance pops from the front until the first survivor instead of
//! rescanning the whole window table per insert. Deque changes are
//! undo-logged (`WindowPushed`/`WindowPopped`) so aborts restore the
//! arrival order exactly; ad-hoc SQL deletes excise their entry through
//! the execution context.
//!
//! The paper contrasts native windows with emulating them in client SQL
//! over a plain table, which costs extra PE↔EE round trips per insert
//! (experiment E3b reproduces that comparison).

use sstore_common::{Error, Result, Row, TableId, Value};
use sstore_storage::catalog::{TableKind, WindowKind, COL_SEQ, COL_TS};
use sstore_storage::{Database, RowId, UndoLog, UndoOp};

/// What happened during one window insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowInsert {
    /// Row id of the inserted tuple.
    pub rid: RowId,
    /// True if this insert crossed a slide boundary (slide triggers should
    /// fire after eviction).
    pub slid: bool,
    /// Tuples evicted by maintenance on this insert.
    pub evicted: usize,
}

/// Insert a visible row into a window, performing full maintenance.
///
/// `now` is the logical time used for the `__ts` stamp and for time-window
/// eviction/slide arithmetic.
pub fn insert_into_window(
    db: &mut Database,
    undo: &mut UndoLog,
    table: TableId,
    visible_row: impl Into<Row>,
    now: i64,
) -> Result<WindowInsert> {
    let visible_row = visible_row.into();
    // Save the lifecycle counters for undo before touching them.
    let prior_kind = db
        .catalog()
        .meta(table)
        .ok_or_else(|| Error::NotFound(format!("window {table}")))?
        .kind
        .clone();
    let (kind, seq) = {
        let meta = db
            .catalog_mut()
            .meta_mut(table)
            .expect("meta existence checked");
        match &mut meta.kind {
            TableKind::Window(w) => {
                w.next_seq += 1;
                w.total_inserted += 1;
                (w.spec.kind, w.next_seq)
            }
            _ => return Err(Error::Internal(format!("`{}` is not a window", meta.name))),
        }
    };
    undo.push(UndoOp::KindMeta {
        table,
        prior: prior_kind,
    });
    // The KindMeta snapshot above also covers the incremental aggregate
    // cache, so every cache mutation below rolls back with the counters.
    // An invalidated cache (recovery, out-of-band writes) is rebuilt here,
    // once, from a full scan; steady-state maintenance is O(1) per tuple.
    rebuild_aggs_if_invalid(db, table)?;

    // Build the storage row: visible columns + __seq + __ts.
    let visible_cells = visible_row.clone();
    let row = visible_row.with_appended([Value::Int(seq as i64), Value::Timestamp(now)]);
    let rid = db.table_mut(table)?.insert(row)?;
    undo.push(UndoOp::Insert { table, rid });
    let meta = db
        .catalog_mut()
        .meta_mut(table)
        .expect("meta existence checked");
    meta.arrivals.push_back(rid);
    if let TableKind::Window(w) = &mut meta.kind {
        // `insert` may coerce cell types, but never in a way the cache
        // reads wrong: INT↔TIMESTAMP keeps the i64, INT→FLOAT only affects
        // columns whose sums the fast path never serves, and nullness is
        // coercion-invariant. Folding the pre-coercion cells is exact.
        w.aggs.add(visible_cells.as_ref());
    }
    undo.push(UndoOp::WindowPushed { table });

    // Slide/eviction bookkeeping.
    let mut slid = false;
    let mut evicted = 0usize;
    match kind {
        WindowKind::Tuple { size, slide } => {
            let (total, pending_after) = {
                let meta = db.catalog_mut().meta_mut(table).expect("checked");
                match &mut meta.kind {
                    TableKind::Window(w) => {
                        w.pending += 1;
                        (w.total_inserted, w.pending)
                    }
                    _ => unreachable!(),
                }
            };
            if total >= size && pending_after >= slide as i64 {
                slid = true;
                // Evict everything older than the newest `size` tuples.
                let cutoff = total as i64 - size as i64;
                evicted = evict(db, undo, table, |storage_row, seq_pos, _| {
                    storage_row[seq_pos].as_int().map(|s| s <= cutoff)
                })?;
                let meta = db.catalog_mut().meta_mut(table).expect("checked");
                if let TableKind::Window(w) = &mut meta.kind {
                    w.pending = 0;
                }
            }
        }
        WindowKind::Time { range, slide } => {
            // Evict expired tuples on every insert.
            let expiry = now - range;
            evicted = evict(db, undo, table, |storage_row, _, ts_pos| {
                storage_row[ts_pos].as_int().map(|t| t <= expiry)
            })?;
            let meta = db.catalog_mut().meta_mut(table).expect("checked");
            if let TableKind::Window(w) = &mut meta.kind {
                // `pending` holds the last slide time for time windows.
                if now - w.pending >= slide {
                    slid = true;
                    w.pending = now;
                }
            }
        }
    }

    Ok(WindowInsert { rid, slid, evicted })
}

/// Delete the expired prefix of the window's arrival deque — rows matching
/// `pred(storage_row, seq_pos, ts_pos)` — recording undo for both the rows
/// and the deque. Stops at the first surviving row (the predicate is
/// monotone in arrival order), so the cost is O(evicted), not O(window).
/// Returns the eviction count.
fn evict(
    db: &mut Database,
    undo: &mut UndoLog,
    table: TableId,
    pred: impl Fn(&Row, usize, usize) -> Result<bool>,
) -> Result<usize> {
    let (seq_pos, ts_pos) = hidden_positions(db, table)?;
    let mut n = 0usize;
    loop {
        let front: Option<RowId> = db
            .catalog()
            .meta(table)
            .and_then(|m| m.arrivals.front().copied());
        let Some(rid) = front else { break };
        // A stale entry (row already deleted out-of-band) is dropped and
        // skipped; a surviving row ends the prefix.
        let expired = match db.table(table)?.get(rid) {
            None => false,
            Some(row) => {
                if pred(row, seq_pos, ts_pos)? {
                    true
                } else {
                    break;
                }
            }
        };
        let meta = db.catalog_mut().meta_mut(table).expect("meta checked");
        meta.arrivals.pop_front();
        undo.push(UndoOp::WindowPopped { table, rid });
        if expired {
            let row = db.table_mut(table)?.delete(rid)?;
            // Hidden __seq/__ts trail the schema, so the visible prefix
            // ends where the first hidden column starts.
            let visible_len = seq_pos.min(ts_pos);
            if let Some(meta) = db.catalog_mut().meta_mut(table) {
                if let TableKind::Window(w) = &mut meta.kind {
                    w.aggs.remove(&row[..visible_len]);
                }
            }
            undo.push(UndoOp::Delete { table, rid, row });
            n += 1;
        }
    }
    Ok(n)
}

/// Rebuild the window's incremental aggregate cache from a full scan if
/// it was invalidated (recovery, snapshot load, out-of-band writes).
/// No-op when the cache is already trusted.
fn rebuild_aggs_if_invalid(db: &mut Database, table: TableId) -> Result<()> {
    let needs_rebuild = matches!(
        db.catalog().meta(table).map(|m| &m.kind),
        Some(TableKind::Window(w)) if !w.aggs.valid
    );
    if !needs_rebuild {
        return Ok(());
    }
    let (seq_pos, ts_pos) = hidden_positions(db, table)?;
    let visible_len = seq_pos.min(ts_pos);
    let visible_rows: Vec<Vec<Value>> = db
        .table(table)?
        .scan()
        .map(|(_, r)| r[..visible_len].to_vec())
        .collect();
    if let Some(meta) = db.catalog_mut().meta_mut(table) {
        if let TableKind::Window(w) = &mut meta.kind {
            w.aggs.rebuild(visible_rows.iter().map(Vec::as_slice));
        }
    }
    Ok(())
}

/// Positions of the hidden `__seq` and `__ts` columns of a window.
pub fn hidden_positions(db: &Database, table: TableId) -> Result<(usize, usize)> {
    let schema = db.table(table)?.schema();
    let seq = schema
        .column_index(COL_SEQ)
        .ok_or_else(|| Error::Internal(format!("window {table} missing {COL_SEQ}")))?;
    let ts = schema
        .column_index(COL_TS)
        .ok_or_else(|| Error::Internal(format!("window {table} missing {COL_TS}")))?;
    Ok((seq, ts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstore_common::{Column, DataType, Schema};
    use sstore_storage::catalog::WindowSpec;

    fn db_with_window(kind: WindowKind) -> (Database, TableId) {
        let mut db = Database::new();
        let schema = Schema::keyless(vec![Column::new("v", DataType::Int)]).unwrap();
        let w = db
            .create_window("w", schema, WindowSpec { kind, owner: None })
            .unwrap();
        (db, w)
    }

    fn contents(db: &Database, w: TableId) -> Vec<i64> {
        let mut vals: Vec<(i64, i64)> = db
            .table(w)
            .unwrap()
            .scan()
            .map(|(_, r)| (r[1].as_int().unwrap(), r[0].as_int().unwrap()))
            .collect();
        vals.sort_unstable();
        vals.into_iter().map(|(_, v)| v).collect()
    }

    #[test]
    fn tuple_window_slides_and_evicts() {
        let (mut db, w) = db_with_window(WindowKind::Tuple { size: 3, slide: 1 });
        let mut undo = UndoLog::new();
        let mut slides = 0;
        for i in 0..5 {
            let r = insert_into_window(&mut db, &mut undo, w, vec![Value::Int(i)], i).unwrap();
            if r.slid {
                slides += 1;
            }
        }
        // Fires at the 3rd, 4th, 5th inserts.
        assert_eq!(slides, 3);
        assert_eq!(contents(&db, w), vec![2, 3, 4]);
    }

    #[test]
    fn tuple_window_with_slide_gap() {
        let (mut db, w) = db_with_window(WindowKind::Tuple { size: 4, slide: 2 });
        let mut undo = UndoLog::new();
        let mut slide_points = Vec::new();
        for i in 1..=8 {
            let r = insert_into_window(&mut db, &mut undo, w, vec![Value::Int(i)], i).unwrap();
            if r.slid {
                slide_points.push(i);
            }
        }
        // Full at 4; then every 2: fires at 4, 6, 8.
        assert_eq!(slide_points, vec![4, 6, 8]);
        assert_eq!(contents(&db, w), vec![5, 6, 7, 8]);
    }

    #[test]
    fn time_window_evicts_by_timestamp() {
        let (mut db, w) = db_with_window(WindowKind::Time {
            range: 100,
            slide: 50,
        });
        let mut undo = UndoLog::new();
        for (i, t) in [(1, 10i64), (2, 60), (3, 120), (4, 170)] {
            insert_into_window(&mut db, &mut undo, w, vec![Value::Int(i)], t).unwrap();
        }
        // At t=170, expiry=70: tuples at t=10 and t=60 are gone.
        assert_eq!(contents(&db, w), vec![3, 4]);
    }

    #[test]
    fn time_window_slide_cadence() {
        let (mut db, w) = db_with_window(WindowKind::Time {
            range: 1000,
            slide: 100,
        });
        let mut undo = UndoLog::new();
        let mut slides = Vec::new();
        for t in [50i64, 99, 100, 150, 199, 200, 301] {
            let r = insert_into_window(&mut db, &mut undo, w, vec![Value::Int(t)], t).unwrap();
            if r.slid {
                slides.push(t);
            }
        }
        // last_slide: 0 -> 100 -> 200 -> 301
        assert_eq!(slides, vec![100, 200, 301]);
    }

    #[test]
    fn abort_restores_rows_and_counters() {
        let (mut db, w) = db_with_window(WindowKind::Tuple { size: 2, slide: 1 });
        // Committed prefix: two tuples.
        let mut undo = UndoLog::new();
        insert_into_window(&mut db, &mut undo, w, vec![Value::Int(1)], 0).unwrap();
        insert_into_window(&mut db, &mut undo, w, vec![Value::Int(2)], 0).unwrap();
        undo.commit();
        let committed_kind = db.catalog().meta(w).unwrap().kind.clone();
        let committed = contents(&db, w);

        // Aborted TE: inserts that evict tuple 1.
        let mut undo = UndoLog::new();
        insert_into_window(&mut db, &mut undo, w, vec![Value::Int(3)], 0).unwrap();
        insert_into_window(&mut db, &mut undo, w, vec![Value::Int(4)], 0).unwrap();
        assert_eq!(contents(&db, w), vec![3, 4]);
        undo.rollback(&mut db).unwrap();

        assert_eq!(contents(&db, w), committed);
        assert_eq!(db.catalog().meta(w).unwrap().kind, committed_kind);
    }

    #[test]
    fn insert_into_non_window_errors() {
        let mut db = Database::new();
        let schema = Schema::keyless(vec![Column::new("v", DataType::Int)]).unwrap();
        let t = db.create_table("t", schema).unwrap();
        let mut undo = UndoLog::new();
        let err = insert_into_window(&mut db, &mut undo, t, vec![Value::Int(1)], 0).unwrap_err();
        assert_eq!(err.kind(), "internal");
    }
}
