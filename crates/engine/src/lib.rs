//! # sstore-engine
//!
//! S-Store's **execution engine (EE)** — the lower layer of the paper's
//! two-layer architecture (Fig. 1). It wraps the storage engine with:
//!
//! * a transactional [`context::EeContext`] that records undo for every
//!   mutation and enforces the window **scope** rule;
//! * **streams**: inserts stamp hidden `__batch`/`__seq` columns and are
//!   collected as the transaction's output batches;
//! * native **windows** ([`windows`]): tuple- and time-based sliding
//!   windows maintained inside the EE, with eviction and slide detection;
//! * **EE triggers** ([`triggers`]): statement-level insert/slide triggers
//!   that run *inside the current transaction*, eliminating PE↔EE round
//!   trips (the paper's §2 performance argument);
//! * stream **garbage collection** ([`gc`]) once batches are consumed;
//! * [`stats::EeStats`] counting statements, round trips, trigger firings,
//!   slides, and GC work — the raw data for experiments E3a/E3b/E7.

pub mod context;
pub mod engine;
pub mod gc;
pub mod stats;
pub mod triggers;
pub mod windows;

pub use engine::{EeConfig, ExecutionEngine, TxnScratch};
pub use stats::EeStats;
pub use triggers::{EeTrigger, TriggerEvent};
