//! The EE's transactional execution context.
//!
//! [`EeContext`] is the [`ExecContext`] implementation the SQL executor
//! runs against inside a transaction execution. It:
//!
//! * records undo for every mutation (atomic aborts);
//! * stamps stream inserts with `(__batch, __seq)` and collects them as the
//!   TE's output batches (consumed by PE triggers at commit);
//! * routes window inserts through native window maintenance;
//! * enforces the **scope rule**: a window may only be touched by TEs of
//!   its owning stored procedure (paper §2);
//! * queues EE trigger firings, which the engine drains *within the same
//!   transaction* — the paper's mechanism for avoiding PE↔EE round trips.

use crate::stats::EeStats;
use crate::triggers::{TriggerEvent, TriggerRegistry};
use crate::windows;
use sstore_common::{BatchId, Error, ProcId, Result, Row, TableId, Value};
use sstore_sql::exec::ExecContext;
use sstore_sql::ExecPath;
use sstore_storage::catalog::TableKind;
use sstore_storage::{Database, RowId, UndoLog, UndoOp};
use std::collections::VecDeque;

/// One queued EE trigger firing.
#[derive(Debug, Clone)]
pub struct PendingFire {
    /// Index into the trigger registry.
    pub trigger: usize,
    /// Statement parameters (the inserted row for insert triggers — a
    /// shared handle, not a copy; empty for slide triggers).
    pub params: Row,
    /// Cascade depth (insert → trigger → insert → trigger ...).
    pub depth: u32,
}

/// Tunables shared by the context and the engine.
#[derive(Debug, Clone)]
pub struct EeConfig {
    /// Master switch for EE triggers (ablation E3b). When off, stream and
    /// window inserts never enqueue trigger work.
    pub ee_triggers_enabled: bool,
    /// Maximum trigger cascade depth before the transaction aborts.
    pub max_trigger_depth: u32,
    /// Which executor eligible read plans run on (vectorized batch
    /// kernels vs. the row interpreter). Defaults from `SSTORE_EXEC`.
    pub exec_path: ExecPath,
}

impl Default for EeConfig {
    fn default() -> Self {
        EeConfig {
            ee_triggers_enabled: true,
            max_trigger_depth: 16,
            exec_path: ExecPath::session_default(),
        }
    }
}

/// The per-statement execution context (see module docs).
pub struct EeContext<'a> {
    /// Partition data.
    pub db: &'a mut Database,
    /// Undo log of the enclosing transaction execution.
    pub undo: &'a mut UndoLog,
    /// Engine counters.
    pub stats: &'a mut EeStats,
    /// Registered EE triggers.
    pub registry: &'a TriggerRegistry,
    /// Engine configuration.
    pub config: &'a EeConfig,
    /// Logical time of the statement.
    pub now: i64,
    /// The stored procedure this TE runs (None for ad-hoc statements).
    pub proc: Option<ProcId>,
    /// The TE's input batch id; stream inserts inherit it.
    pub batch: BatchId,
    /// Visible rows appended to each stream during this TE (output batches).
    pub appended: &'a mut Vec<(TableId, Row)>,
    /// Trigger firings awaiting execution.
    pub queue: VecDeque<PendingFire>,
    /// Current cascade depth (0 = statement issued by the PE).
    pub depth: u32,
}

impl EeContext<'_> {
    fn scope_check(&self, table: TableId) -> Result<()> {
        if let Ok(TableKind::Window(w)) = self.db.kind(table) {
            if let Some(owner) = w.spec.owner {
                if self.proc != Some(owner) {
                    let name = self
                        .db
                        .catalog()
                        .meta(table)
                        .map(|m| m.name.clone())
                        .unwrap_or_default();
                    return Err(Error::Scope(format!(
                        "window `{name}` is scoped to {owner}; access from {:?} denied",
                        self.proc
                    )));
                }
            }
        }
        Ok(())
    }

    fn enqueue(&mut self, table: TableId, event: TriggerEvent, params: Row) {
        if !self.config.ee_triggers_enabled {
            return;
        }
        for t in self.registry.matching(table, event) {
            self.queue.push_back(PendingFire {
                trigger: t,
                params: params.clone(),
                depth: self.depth + 1,
            });
        }
    }
}

impl ExecContext for EeContext<'_> {
    fn db(&self) -> &Database {
        self.db
    }

    fn now(&self) -> i64 {
        self.now
    }

    fn check_read(&self, table: TableId) -> Result<()> {
        self.scope_check(table)
    }

    fn check_write(&self, table: TableId) -> Result<()> {
        self.scope_check(table)
    }

    fn insert_visible(&mut self, table: TableId, row: Row) -> Result<RowId> {
        let kind = self.db.kind(table)?.clone();
        match kind {
            TableKind::Base => {
                let rid = self.db.table_mut(table)?.insert(row)?;
                self.undo.push(UndoOp::Insert { table, rid });
                Ok(rid)
            }
            TableKind::Stream(_) => {
                // Rewind counters on abort.
                let prior = self
                    .db
                    .catalog()
                    .meta(table)
                    .expect("kind checked")
                    .kind
                    .clone();
                self.undo.push(UndoOp::KindMeta { table, prior });
                let seq = {
                    let meta = self.db.catalog_mut().meta_mut(table).expect("kind checked");
                    match &mut meta.kind {
                        TableKind::Stream(s) => {
                            s.next_seq += 1;
                            s.next_seq
                        }
                        _ => unreachable!(),
                    }
                };
                // The stored row widens the visible one with the hidden
                // lifecycle columns; the visible handle itself is shared
                // into the output batch and any trigger parameters.
                let full = row
                    .with_appended([Value::Int(self.batch.raw() as i64), Value::Int(seq as i64)]);
                let rid = self.db.table_mut(table)?.insert(full)?;
                self.undo.push(UndoOp::Insert { table, rid });
                self.stats.stream_appends += 1;
                self.appended.push((table, row.clone()));
                self.enqueue(table, TriggerEvent::OnInsert, row);
                Ok(rid)
            }
            TableKind::Window(_) => {
                let visible = row.clone();
                let outcome =
                    windows::insert_into_window(self.db, self.undo, table, row, self.now)?;
                self.stats.window_evictions += outcome.evicted as u64;
                self.enqueue(table, TriggerEvent::OnInsert, visible);
                if outcome.slid {
                    self.stats.window_slides += 1;
                    self.enqueue(table, TriggerEvent::OnSlide, Row::default());
                }
                Ok(outcome.rid)
            }
        }
    }

    fn delete_row(&mut self, table: TableId, rid: RowId) -> Result<Row> {
        // Snapshot the window counters (incl. the aggregate cache) before
        // mutating them, so aborts restore the cache with the rows.
        let window_prior = self.window_kind_snapshot(table);
        let row = self.db.table_mut(table)?.delete(rid)?;
        self.undo.push(UndoOp::Delete {
            table,
            rid,
            row: row.clone(),
        });
        // An ad-hoc delete on a window must excise its arrival-deque entry
        // so slide maintenance never sees a stale row id.
        if let Some(prior) = window_prior {
            self.undo.push(UndoOp::KindMeta { table, prior });
            let visible_len = self.db.table(table)?.schema().arity() - 2;
            let meta = self.db.catalog_mut().meta_mut(table).expect("kind checked");
            if let TableKind::Window(w) = &mut meta.kind {
                w.aggs.remove(&row[..visible_len]);
            }
            if let Some(pos) = meta.arrivals.iter().position(|&r| r == rid) {
                meta.arrivals.remove(pos);
                self.undo.push(UndoOp::WindowExcised { table, rid, pos });
            }
        }
        Ok(row)
    }

    fn update_row(&mut self, table: TableId, rid: RowId, new_row: Row) -> Result<()> {
        let window_prior = self.window_kind_snapshot(table);
        let old = self.db.table_mut(table)?.update(rid, new_row)?;
        if let Some(prior) = window_prior {
            self.undo.push(UndoOp::KindMeta { table, prior });
            let visible_len = self.db.table(table)?.schema().arity() - 2;
            // Fold the post-coercion stored row so the cache matches what a
            // rescan would see.
            let new_vis: Option<Vec<Value>> = self
                .db
                .table(table)?
                .get(rid)
                .map(|r| r[..visible_len].to_vec());
            let meta = self.db.catalog_mut().meta_mut(table).expect("kind checked");
            if let TableKind::Window(w) = &mut meta.kind {
                w.aggs.remove(&old[..visible_len]);
                match &new_vis {
                    Some(cells) => w.aggs.add(cells),
                    None => w.aggs.invalidate(),
                }
            }
        }
        self.undo.push(UndoOp::Update { table, rid, old });
        Ok(())
    }

    fn exec_path(&self) -> ExecPath {
        self.config.exec_path
    }
}

impl EeContext<'_> {
    /// The prior `TableKind` of `table` when it is a window (undo snapshot
    /// for cache/counter maintenance); `None` for other kinds.
    fn window_kind_snapshot(&self, table: TableId) -> Option<TableKind> {
        match self.db.kind(table) {
            Ok(k @ TableKind::Window(_)) => Some(k.clone()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstore_common::{Column, DataType, Schema};
    use sstore_storage::catalog::{WindowKind, WindowSpec};

    fn setup() -> (Database, TableId, TableId, TableId) {
        let mut db = Database::new();
        let schema = || Schema::keyless(vec![Column::new("v", DataType::Int)]).unwrap();
        let t = db.create_table("t", schema()).unwrap();
        let s = db.create_stream("s", schema()).unwrap();
        let w = db
            .create_window(
                "w",
                schema(),
                WindowSpec {
                    kind: WindowKind::Tuple { size: 2, slide: 1 },
                    owner: Some(ProcId::new(7)),
                },
            )
            .unwrap();
        (db, t, s, w)
    }

    fn ctx_parts() -> (
        UndoLog,
        EeStats,
        TriggerRegistry,
        EeConfig,
        Vec<(TableId, Row)>,
    ) {
        (
            UndoLog::new(),
            EeStats::new(),
            TriggerRegistry::new(),
            EeConfig::default(),
            Vec::new(),
        )
    }

    #[test]
    fn stream_insert_stamps_batch_and_seq_and_collects_output() {
        let (mut db, _, s, _) = setup();
        let (mut undo, mut stats, reg, cfg, mut appended) = ctx_parts();
        let mut ctx = EeContext {
            db: &mut db,
            undo: &mut undo,
            stats: &mut stats,
            registry: &reg,
            config: &cfg,
            now: 5,
            proc: None,
            batch: BatchId::new(42),
            appended: &mut appended,
            queue: VecDeque::new(),
            depth: 0,
        };
        ctx.insert_visible(s, vec![Value::Int(10)].into()).unwrap();
        ctx.insert_visible(s, vec![Value::Int(11)].into()).unwrap();
        drop(ctx);
        let rows: Vec<Row> = db
            .table(s)
            .unwrap()
            .scan()
            .map(|(_, r)| r.clone())
            .collect();
        assert_eq!(rows[0], vec![Value::Int(10), Value::Int(42), Value::Int(1)]);
        assert_eq!(rows[1], vec![Value::Int(11), Value::Int(42), Value::Int(2)]);
        assert_eq!(appended.len(), 2);
        assert_eq!(appended[0].1, vec![Value::Int(10)]);
        assert_eq!(stats.stream_appends, 2);

        // Abort rewinds both rows and the sequence counter.
        undo.rollback(&mut db).unwrap();
        assert!(db.table(s).unwrap().is_empty());
        match db.kind(s).unwrap() {
            TableKind::Stream(m) => assert_eq!(m.next_seq, 0),
            _ => panic!(),
        }
    }

    #[test]
    fn window_scope_enforced() {
        let (mut db, _, _, w) = setup();
        let (mut undo, mut stats, reg, cfg, mut appended) = ctx_parts();
        // Wrong procedure.
        let ctx = EeContext {
            db: &mut db,
            undo: &mut undo,
            stats: &mut stats,
            registry: &reg,
            config: &cfg,
            now: 0,
            proc: Some(ProcId::new(1)),
            batch: BatchId::new(0),
            appended: &mut appended,
            queue: VecDeque::new(),
            depth: 0,
        };
        assert_eq!(ctx.check_read(w).unwrap_err().kind(), "scope");
        assert_eq!(ctx.check_write(w).unwrap_err().kind(), "scope");
        drop(ctx);
        // Owning procedure passes.
        let ctx = EeContext {
            db: &mut db,
            undo: &mut undo,
            stats: &mut stats,
            registry: &reg,
            config: &cfg,
            now: 0,
            proc: Some(ProcId::new(7)),
            batch: BatchId::new(0),
            appended: &mut appended,
            queue: VecDeque::new(),
            depth: 0,
        };
        assert!(ctx.check_read(w).is_ok());
    }

    #[test]
    fn triggers_enqueue_with_row_params() {
        let (mut db, _, s, _) = setup();
        let (mut undo, mut stats, mut reg, cfg, mut appended) = ctx_parts();
        reg.register(crate::triggers::EeTrigger {
            name: "t1".into(),
            table: s,
            event: TriggerEvent::OnInsert,
            statements: vec![],
        })
        .unwrap();
        let mut ctx = EeContext {
            db: &mut db,
            undo: &mut undo,
            stats: &mut stats,
            registry: &reg,
            config: &cfg,
            now: 0,
            proc: None,
            batch: BatchId::new(1),
            appended: &mut appended,
            queue: VecDeque::new(),
            depth: 0,
        };
        ctx.insert_visible(s, vec![Value::Int(9)].into()).unwrap();
        assert_eq!(ctx.queue.len(), 1);
        let f = &ctx.queue[0];
        assert_eq!(f.params, vec![Value::Int(9)]);
        assert_eq!(f.depth, 1);
    }

    #[test]
    fn trigger_enqueue_respects_master_switch() {
        let (mut db, _, s, _) = setup();
        let (mut undo, mut stats, mut reg, mut cfg, mut appended) = ctx_parts();
        cfg.ee_triggers_enabled = false;
        reg.register(crate::triggers::EeTrigger {
            name: "t1".into(),
            table: s,
            event: TriggerEvent::OnInsert,
            statements: vec![],
        })
        .unwrap();
        let mut ctx = EeContext {
            db: &mut db,
            undo: &mut undo,
            stats: &mut stats,
            registry: &reg,
            config: &cfg,
            now: 0,
            proc: None,
            batch: BatchId::new(1),
            appended: &mut appended,
            queue: VecDeque::new(),
            depth: 0,
        };
        ctx.insert_visible(s, vec![Value::Int(9)].into()).unwrap();
        assert!(ctx.queue.is_empty());
    }

    #[test]
    fn base_table_mutations_record_undo() {
        let (mut db, t, _, _) = setup();
        let (mut undo, mut stats, reg, cfg, mut appended) = ctx_parts();
        let mut ctx = EeContext {
            db: &mut db,
            undo: &mut undo,
            stats: &mut stats,
            registry: &reg,
            config: &cfg,
            now: 0,
            proc: None,
            batch: BatchId::new(0),
            appended: &mut appended,
            queue: VecDeque::new(),
            depth: 0,
        };
        let rid = ctx.insert_visible(t, vec![Value::Int(1)].into()).unwrap();
        ctx.update_row(t, rid, vec![Value::Int(2)].into()).unwrap();
        ctx.delete_row(t, rid).unwrap();
        drop(ctx);
        assert_eq!(undo.len(), 3);
        undo.rollback(&mut db).unwrap();
        assert!(db.table(t).unwrap().is_empty());
    }
}
