//! Execution-engine counters.
//!
//! The paper's performance argument is structural — S-Store wins by
//! removing round trips between layers (§2, §3.1). These counters make
//! that argument measurable: benches read them to report PE↔EE dispatches
//! and trigger activity per workload.

/// Monotone counters for one execution engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EeStats {
    /// Statements dispatched from the PE into the EE. Each is one PE→EE
    /// round trip; statements run by EE triggers do *not* count (that is
    /// exactly the saving native triggers provide).
    pub pe_ee_trips: u64,
    /// Total statements executed, including trigger-initiated ones.
    pub statements: u64,
    /// EE insert-trigger firings (per row).
    pub insert_trigger_firings: u64,
    /// Window slide events (slide-trigger opportunities).
    pub window_slides: u64,
    /// Rows appended to streams.
    pub stream_appends: u64,
    /// Rows evicted from windows by slide maintenance.
    pub window_evictions: u64,
    /// Stream rows removed by garbage collection.
    pub rows_gcd: u64,
}

impl EeStats {
    /// Zeroed counters.
    pub fn new() -> Self {
        EeStats::default()
    }

    /// Difference `self - earlier` (for per-benchmark-window deltas).
    pub fn delta_since(&self, earlier: &EeStats) -> EeStats {
        EeStats {
            pe_ee_trips: self.pe_ee_trips - earlier.pe_ee_trips,
            statements: self.statements - earlier.statements,
            insert_trigger_firings: self.insert_trigger_firings - earlier.insert_trigger_firings,
            window_slides: self.window_slides - earlier.window_slides,
            stream_appends: self.stream_appends - earlier.stream_appends,
            window_evictions: self.window_evictions - earlier.window_evictions,
            rows_gcd: self.rows_gcd - earlier.rows_gcd,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = EeStats {
            pe_ee_trips: 10,
            statements: 20,
            ..EeStats::new()
        };
        let b = EeStats {
            pe_ee_trips: 4,
            statements: 5,
            ..EeStats::new()
        };
        let d = a.delta_since(&b);
        assert_eq!(d.pe_ee_trips, 6);
        assert_eq!(d.statements, 15);
        assert_eq!(d.rows_gcd, 0);
    }
}
