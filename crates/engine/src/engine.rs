//! The execution engine proper.
//!
//! [`ExecutionEngine`] owns the partition's [`Database`], the EE trigger
//! registry, and the engine counters. The partition engine (`sstore-txn`)
//! drives it: one [`ExecutionEngine::execute_planned`] call is one PE→EE
//! round trip; EE triggers cascade *inside* that call.

pub use crate::context::EeConfig;
use crate::context::{EeContext, PendingFire};
use crate::gc;
use crate::stats::EeStats;
use crate::triggers::{EeTrigger, TriggerEvent, TriggerRegistry};
use sstore_common::{BatchId, Error, ProcId, Result, Row, TableId, Value};
use sstore_sql::exec::{self, QueryResult};
use sstore_sql::plan::{DdlOp, PlannedStmt};
use sstore_sql::{parse, plan_statement};
use sstore_storage::catalog::{WindowKind, WindowSpec};
use sstore_storage::{Database, IndexDef, UndoLog};
use std::collections::VecDeque;

/// Per-transaction-execution scratch state, owned by the partition engine
/// and threaded through every statement of the TE.
#[derive(Debug, Default)]
pub struct TxnScratch {
    /// Undo log (applied on abort, dropped on commit).
    pub undo: UndoLog,
    /// Visible rows appended to streams during this TE, in insert order.
    /// At commit the PE groups these by stream into output batches.
    pub appended: Vec<(TableId, Row)>,
    /// The executing procedure (None for ad-hoc access).
    pub proc: Option<ProcId>,
    /// The TE's input batch id.
    pub batch: BatchId,
}

impl TxnScratch {
    /// Scratch for a TE of `proc` over `batch`.
    pub fn new(proc: Option<ProcId>, batch: BatchId) -> Self {
        TxnScratch {
            undo: UndoLog::new(),
            appended: Vec::new(),
            proc,
            batch,
        }
    }
}

/// The EE: storage + triggers + window maintenance + GC + stats.
#[derive(Debug, Default)]
pub struct ExecutionEngine {
    db: Database,
    registry: TriggerRegistry,
    stats: EeStats,
    config: EeConfig,
}

impl ExecutionEngine {
    /// Engine with default configuration.
    pub fn new() -> Self {
        ExecutionEngine::default()
    }

    /// Engine with explicit configuration.
    pub fn with_config(config: EeConfig) -> Self {
        ExecutionEngine {
            config,
            ..ExecutionEngine::default()
        }
    }

    /// Read access to the data.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Direct mutable access (setup, tests, recovery — not the txn path).
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Replace the whole database (snapshot restore).
    pub fn restore_db(&mut self, db: Database) {
        self.db = db;
    }

    /// Engine counters.
    pub fn stats(&self) -> &EeStats {
        &self.stats
    }

    /// Reset counters (benchmark warmup boundaries).
    pub fn reset_stats(&mut self) {
        self.stats = EeStats::new();
    }

    /// Current configuration.
    pub fn config(&self) -> &EeConfig {
        &self.config
    }

    /// Toggle EE triggers (ablation E3b).
    pub fn set_ee_triggers_enabled(&mut self, enabled: bool) {
        self.config.ee_triggers_enabled = enabled;
    }

    /// Select the executor for eligible read plans (experiment E12:
    /// vectorized batch kernels vs. the row interpreter).
    pub fn set_exec_path(&mut self, path: sstore_sql::ExecPath) {
        self.config.exec_path = path;
    }

    // ---- DDL ---------------------------------------------------------------

    /// Execute a DDL operation (outside any transaction, like H-Store).
    pub fn ddl(&mut self, op: &DdlOp) -> Result<TableId> {
        match op {
            DdlOp::CreateTable { name, schema } => self.db.create_table(name, schema.clone()),
            DdlOp::CreateStream { name, schema } => self.db.create_stream(name, schema.clone()),
            DdlOp::CreateWindow {
                name,
                schema,
                tuple_based,
                size,
                slide,
            } => {
                let kind = if *tuple_based {
                    WindowKind::Tuple {
                        size: *size as u64,
                        slide: *slide as u64,
                    }
                } else {
                    WindowKind::Time {
                        range: *size,
                        slide: *slide,
                    }
                };
                self.db
                    .create_window(name, schema.clone(), WindowSpec { kind, owner: None })
            }
        }
    }

    /// Run a `CREATE ...` SQL string through DDL.
    pub fn ddl_sql(&mut self, sql: &str) -> Result<TableId> {
        let stmt = parse(sql)?;
        match plan_statement(&stmt, &self.db)? {
            PlannedStmt::Ddl(op) => self.ddl(&op),
            _ => Err(Error::Parse(format!("not a DDL statement: {sql}"))),
        }
    }

    /// Create a secondary index on a table.
    pub fn create_index(
        &mut self,
        table: &str,
        index_name: &str,
        columns: &[&str],
        unique: bool,
        ordered: bool,
    ) -> Result<()> {
        let tid = self.db.resolve(table)?;
        let schema = self.db.table(tid)?.schema().clone();
        let key_cols = columns
            .iter()
            .map(|c| {
                schema
                    .column_index(c)
                    .ok_or_else(|| Error::NotFound(format!("column `{c}` in `{table}`")))
            })
            .collect::<Result<Vec<_>>>()?;
        self.db.table_mut(tid)?.create_index(IndexDef {
            name: index_name.to_string(),
            key_cols,
            unique,
            ordered,
        })
    }

    /// Bind a window to its owning procedure (scope rule).
    pub fn bind_window_owner(&mut self, window: &str, owner: ProcId) -> Result<()> {
        let id = self.db.resolve(window)?;
        self.db.catalog_mut().bind_window_owner(id, owner)
    }

    // ---- Triggers ------------------------------------------------------------

    /// Register an EE trigger whose statements are given as SQL text and
    /// planned immediately.
    pub fn create_trigger(
        &mut self,
        name: &str,
        on_table: &str,
        event: TriggerEvent,
        statements: &[&str],
    ) -> Result<()> {
        let table = self.db.resolve(on_table)?;
        let kind = self.db.kind(table)?;
        if !(kind.is_stream() || kind.is_window()) {
            return Err(Error::Constraint(format!(
                "EE triggers attach to streams/windows, `{on_table}` is a base table"
            )));
        }
        if event == TriggerEvent::OnSlide && !kind.is_window() {
            return Err(Error::Constraint(format!(
                "slide triggers attach to windows, `{on_table}` is a stream"
            )));
        }
        let mut planned = Vec::with_capacity(statements.len());
        for sql in statements {
            let stmt = parse(sql)?;
            let p = plan_statement(&stmt, &self.db)?;
            if matches!(p, PlannedStmt::Ddl(_)) {
                return Err(Error::Constraint("DDL not allowed in a trigger".into()));
            }
            planned.push(p);
        }
        self.registry.register(EeTrigger {
            name: name.to_string(),
            table,
            event,
            statements: planned,
        })?;
        Ok(())
    }

    /// Number of registered EE triggers.
    pub fn trigger_count(&self) -> usize {
        self.registry.len()
    }

    // ---- Statement execution ---------------------------------------------------

    /// Plan a statement against the current catalog (prepared-statement
    /// path used by stored procedures at registration time).
    pub fn prepare(&self, sql: &str) -> Result<PlannedStmt> {
        let stmt = parse(sql)?;
        plan_statement(&stmt, &self.db)
    }

    /// Execute one planned statement inside a TE. Counts as **one PE→EE
    /// round trip**; any EE trigger cascade runs inside this call.
    pub fn execute_planned(
        &mut self,
        stmt: &PlannedStmt,
        params: &[Value],
        scratch: &mut TxnScratch,
        now: i64,
    ) -> Result<QueryResult> {
        self.stats.pe_ee_trips += 1;
        self.stats.statements += 1;
        let mut ctx = EeContext {
            db: &mut self.db,
            undo: &mut scratch.undo,
            stats: &mut self.stats,
            registry: &self.registry,
            config: &self.config,
            now,
            proc: scratch.proc,
            batch: scratch.batch,
            appended: &mut scratch.appended,
            queue: VecDeque::new(),
            depth: 0,
        };
        let result = exec::execute(stmt, &mut ctx, params)?;
        // Drain the trigger cascade within the same transaction.
        while let Some(PendingFire {
            trigger,
            params,
            depth,
        }) = ctx.queue.pop_front()
        {
            if depth > ctx.config.max_trigger_depth {
                return Err(Error::Constraint(format!(
                    "EE trigger cascade exceeded depth {}",
                    ctx.config.max_trigger_depth
                )));
            }
            ctx.depth = depth;
            ctx.stats.insert_trigger_firings += 1;
            let trig = ctx
                .registry
                .get(trigger)
                .ok_or_else(|| Error::Internal("dangling trigger index".into()))?;
            for stmt in &trig.statements {
                ctx.stats.statements += 1;
                exec::execute(stmt, &mut ctx, &params)?;
            }
        }
        Ok(result)
    }

    /// Parse + plan + execute in one call (ad-hoc / test path).
    pub fn execute_sql(
        &mut self,
        sql: &str,
        params: &[Value],
        scratch: &mut TxnScratch,
        now: i64,
    ) -> Result<QueryResult> {
        let planned = self.prepare(sql)?;
        self.execute_planned(&planned, params, scratch, now)
    }

    // ---- Lifecycle ------------------------------------------------------------

    /// Garbage-collect a stream up to (and including) `batch`.
    pub fn gc_stream(&mut self, stream: TableId, batch: BatchId) -> Result<usize> {
        let n = gc::gc_stream(&mut self.db, stream, batch)?;
        self.stats.rows_gcd += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_with_objects() -> ExecutionEngine {
        let mut e = ExecutionEngine::new();
        e.ddl_sql("CREATE TABLE counts (k INT NOT NULL, n INT NOT NULL, PRIMARY KEY (k))")
            .unwrap();
        e.ddl_sql("CREATE STREAM s1 (v INT)").unwrap();
        e.ddl_sql("CREATE STREAM s2 (v INT)").unwrap();
        e.ddl_sql("CREATE WINDOW w1 (v INT) ROWS 3 SLIDE 1")
            .unwrap();
        e
    }

    fn scratch() -> TxnScratch {
        TxnScratch::new(None, BatchId::new(1))
    }

    #[test]
    fn ddl_creates_objects() {
        let e = engine_with_objects();
        assert_eq!(e.db().table_count(), 4);
        assert!(e.db().resolve("w1").is_ok());
    }

    #[test]
    fn execute_counts_round_trips() {
        let mut e = engine_with_objects();
        let mut sc = scratch();
        e.execute_sql("INSERT INTO counts VALUES (1, 0)", &[], &mut sc, 0)
            .unwrap();
        e.execute_sql("SELECT n FROM counts WHERE k = 1", &[], &mut sc, 0)
            .unwrap();
        assert_eq!(e.stats().pe_ee_trips, 2);
        assert_eq!(e.stats().statements, 2);
    }

    #[test]
    fn stream_insert_trigger_cascades_in_one_trip() {
        let mut e = engine_with_objects();
        // s1 insert -> copy into s2 and bump a counter.
        e.execute_sql("INSERT INTO counts VALUES (1, 0)", &[], &mut scratch(), 0)
            .unwrap();
        e.create_trigger(
            "s1_to_s2",
            "s1",
            TriggerEvent::OnInsert,
            &[
                "INSERT INTO s2 (v) VALUES (?)",
                "UPDATE counts SET n = n + 1 WHERE k = 1",
            ],
        )
        .unwrap();
        e.reset_stats();

        let mut sc = scratch();
        e.execute_sql("INSERT INTO s1 (v) VALUES (7)", &[], &mut sc, 0)
            .unwrap();

        // One PE->EE trip, three statements total (1 + 2 trigger stmts).
        assert_eq!(e.stats().pe_ee_trips, 1);
        assert_eq!(e.stats().statements, 3);
        assert_eq!(e.stats().insert_trigger_firings, 1);

        // The cascade happened transactionally: s2 holds the copied tuple,
        // counter bumped, and both streams' appends were collected.
        let s2 = e.db().resolve("s2").unwrap();
        assert_eq!(e.db().table(s2).unwrap().len(), 1);
        assert_eq!(sc.appended.len(), 2);

        // Abort undoes the entire cascade.
        sc.undo.rollback(e.db_mut()).unwrap();
        assert_eq!(e.db().table(s2).unwrap().len(), 0);
        let mut sc2 = scratch();
        let r = e
            .execute_sql("SELECT n FROM counts WHERE k = 1", &[], &mut sc2, 0)
            .unwrap();
        assert_eq!(r.scalar_i64().unwrap(), 0);
    }

    #[test]
    fn window_slide_trigger_fires_after_eviction() {
        let mut e = engine_with_objects();
        e.ddl_sql("CREATE TABLE slides (k INT NOT NULL, total INT NOT NULL, PRIMARY KEY (k))")
            .unwrap();
        e.execute_sql("INSERT INTO slides VALUES (1, 0)", &[], &mut scratch(), 0)
            .unwrap();
        // On each slide, record SUM over the window (post-eviction contents).
        e.create_trigger(
            "w1_slide",
            "w1",
            TriggerEvent::OnSlide,
            &["UPDATE slides SET total = (SELECT SUM(v) FROM w1) WHERE k = 1"],
        )
        .unwrap();

        let mut sc = scratch();
        for v in 1..=4 {
            e.execute_sql(
                "INSERT INTO w1 (v) VALUES (?)",
                &[Value::Int(v)],
                &mut sc,
                v,
            )
            .unwrap();
        }
        // Window size 3, slide 1: last slide after v=4 => contents {2,3,4}.
        let r = e
            .execute_sql("SELECT total FROM slides WHERE k = 1", &[], &mut sc, 9)
            .unwrap();
        assert_eq!(r.scalar_i64().unwrap(), 9);
        assert!(e.stats().window_slides >= 2);
        assert!(e.stats().window_evictions >= 1);
    }

    #[test]
    fn scalar_subquery_in_update() {
        let mut e = engine_with_objects();
        let mut sc = scratch();
        e.execute_sql("INSERT INTO counts VALUES (1, 0), (2, 5)", &[], &mut sc, 0)
            .unwrap();
        e.execute_sql(
            "UPDATE counts SET n = (SELECT MAX(n) FROM counts) + 1 WHERE k = 1",
            &[],
            &mut sc,
            0,
        )
        .unwrap();
        let r = e
            .execute_sql("SELECT n FROM counts WHERE k = 1", &[], &mut sc, 0)
            .unwrap();
        assert_eq!(r.scalar_i64().unwrap(), 6);
    }

    #[test]
    fn trigger_on_base_table_rejected() {
        let mut e = engine_with_objects();
        let err = e
            .create_trigger("bad", "counts", TriggerEvent::OnInsert, &[])
            .unwrap_err();
        assert_eq!(err.kind(), "constraint");
        let err = e
            .create_trigger("bad2", "s1", TriggerEvent::OnSlide, &[])
            .unwrap_err();
        assert_eq!(err.kind(), "constraint");
    }

    #[test]
    fn runaway_trigger_cascade_aborts() {
        let mut e = ExecutionEngine::new();
        e.ddl_sql("CREATE STREAM loop_s (v INT)").unwrap();
        // Trigger re-inserts into its own stream: infinite cascade.
        e.create_trigger(
            "looper",
            "loop_s",
            TriggerEvent::OnInsert,
            &["INSERT INTO loop_s (v) VALUES (?)"],
        )
        .unwrap();
        let mut sc = scratch();
        let err = e
            .execute_sql("INSERT INTO loop_s (v) VALUES (1)", &[], &mut sc, 0)
            .unwrap_err();
        assert_eq!(err.kind(), "constraint");
    }

    #[test]
    fn gc_stream_counts() {
        let mut e = engine_with_objects();
        let mut sc = scratch();
        e.execute_sql("INSERT INTO s1 (v) VALUES (1), (2)", &[], &mut sc, 0)
            .unwrap();
        sc.undo.commit();
        let s1 = e.db().resolve("s1").unwrap();
        let n = e.gc_stream(s1, BatchId::new(1)).unwrap();
        assert_eq!(n, 2);
        assert_eq!(e.stats().rows_gcd, 2);
    }

    #[test]
    fn disabled_triggers_leave_downstream_empty() {
        let mut e = engine_with_objects();
        e.create_trigger(
            "s1_to_s2",
            "s1",
            TriggerEvent::OnInsert,
            &["INSERT INTO s2 (v) VALUES (?)"],
        )
        .unwrap();
        e.set_ee_triggers_enabled(false);
        let mut sc = scratch();
        e.execute_sql("INSERT INTO s1 (v) VALUES (7)", &[], &mut sc, 0)
            .unwrap();
        let s2 = e.db().resolve("s2").unwrap();
        assert_eq!(e.db().table(s2).unwrap().len(), 0);
    }
}
