//! EE triggers.
//!
//! S-Store's EE triggers are *statement-level* insert triggers on stream or
//! window state: when new tuples arrive, the registered statements run
//! **inside the same transaction execution**, continuing the dataflow
//! without returning control to the partition engine (paper §2,
//! "Data-driven Processing via Triggers"). They are "control triggers" —
//! they react to the presence of data from a known source, not to arbitrary
//! table mutations.

use sstore_common::{Error, Result, TableId};
use sstore_sql::plan::PlannedStmt;

/// When a trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerEvent {
    /// Per tuple inserted into a stream (or window). The trigger statements
    /// receive the inserted tuple's visible columns as statement parameters
    /// (`?1` = first column, ...).
    OnInsert,
    /// When a window slides (eviction complete, contents = the new window).
    /// Statements receive no parameters; they query the window itself.
    OnSlide,
}

/// One registered EE trigger.
#[derive(Debug, Clone)]
pub struct EeTrigger {
    /// Trigger name (unique per engine).
    pub name: String,
    /// The stream/window it watches.
    pub table: TableId,
    /// Insert vs slide.
    pub event: TriggerEvent,
    /// Pre-planned statements, executed in order on each firing.
    pub statements: Vec<PlannedStmt>,
}

/// Registry of EE triggers with per-table firing indexes.
#[derive(Debug, Clone, Default)]
pub struct TriggerRegistry {
    triggers: Vec<EeTrigger>,
}

impl TriggerRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        TriggerRegistry::default()
    }

    /// Register a trigger; names must be unique.
    pub fn register(&mut self, trigger: EeTrigger) -> Result<usize> {
        if self.triggers.iter().any(|t| t.name == trigger.name) {
            return Err(Error::AlreadyExists(format!("trigger `{}`", trigger.name)));
        }
        self.triggers.push(trigger);
        Ok(self.triggers.len() - 1)
    }

    /// All triggers, by registration index.
    pub fn all(&self) -> &[EeTrigger] {
        &self.triggers
    }

    /// Trigger by index.
    pub fn get(&self, idx: usize) -> Option<&EeTrigger> {
        self.triggers.get(idx)
    }

    /// Indexes of triggers firing for `(table, event)`, in registration
    /// order (registration order = firing order, deterministically).
    pub fn matching(&self, table: TableId, event: TriggerEvent) -> Vec<usize> {
        self.triggers
            .iter()
            .enumerate()
            .filter(|(_, t)| t.table == table && t.event == event)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of registered triggers.
    pub fn len(&self) -> usize {
        self.triggers.len()
    }

    /// True when no triggers are registered.
    pub fn is_empty(&self) -> bool {
        self.triggers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trig(name: &str, table: u32, event: TriggerEvent) -> EeTrigger {
        EeTrigger {
            name: name.into(),
            table: TableId::new(table),
            event,
            statements: vec![],
        }
    }

    #[test]
    fn register_and_match() {
        let mut r = TriggerRegistry::new();
        r.register(trig("a", 0, TriggerEvent::OnInsert)).unwrap();
        r.register(trig("b", 0, TriggerEvent::OnInsert)).unwrap();
        r.register(trig("c", 0, TriggerEvent::OnSlide)).unwrap();
        r.register(trig("d", 1, TriggerEvent::OnInsert)).unwrap();
        assert_eq!(
            r.matching(TableId::new(0), TriggerEvent::OnInsert),
            vec![0, 1]
        );
        assert_eq!(r.matching(TableId::new(0), TriggerEvent::OnSlide), vec![2]);
        assert_eq!(
            r.matching(TableId::new(9), TriggerEvent::OnInsert),
            Vec::<usize>::new()
        );
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut r = TriggerRegistry::new();
        r.register(trig("a", 0, TriggerEvent::OnInsert)).unwrap();
        let err = r.register(trig("a", 1, TriggerEvent::OnSlide)).unwrap_err();
        assert_eq!(err.kind(), "already_exists");
    }
}
