//! Stream garbage collection.
//!
//! "Unlike regular tables, stream and window state has a short lifespan
//! determined by the queries accessing it. To support this, S-Store
//! provides automatic garbage collection mechanisms for tuples that expire
//! from stream or window state." (paper §2, Uniform State Management)
//!
//! Window GC is part of slide maintenance ([`crate::windows`]); this module
//! handles streams: once every downstream consumer of batch *b* has
//! committed, the partition engine advances the stream's watermark and the
//! tuples of batches `<= b` are deleted. GC runs post-commit, outside any
//! undo scope — the consumed tuples are recoverable from the command log
//! (upstream backup), never from the stream itself.

use sstore_common::{BatchId, Error, Result, TableId};
use sstore_storage::catalog::{TableKind, COL_BATCH};
use sstore_storage::Database;

/// Delete all tuples of `stream` belonging to batches `<= up_to`.
/// Advances the stream's GC watermark. Returns the number of rows removed.
pub fn gc_stream(db: &mut Database, stream: TableId, up_to: BatchId) -> Result<usize> {
    // Validate the object and locate the hidden batch column.
    let batch_pos = {
        let meta = db
            .catalog()
            .meta(stream)
            .ok_or_else(|| Error::NotFound(format!("stream {stream}")))?;
        if !meta.kind.is_stream() {
            return Err(Error::Internal(format!("`{}` is not a stream", meta.name)));
        }
        db.table(stream)?
            .schema()
            .column_index(COL_BATCH)
            .ok_or_else(|| Error::Internal(format!("stream {stream} missing {COL_BATCH}")))?
    };

    let victims: Vec<_> = {
        let tb = db.table(stream)?;
        tb.scan()
            .filter_map(|(rid, row)| {
                let b = row[batch_pos].as_int().ok()?;
                (b as u64 <= up_to.raw()).then_some(rid)
            })
            .collect()
    };
    let n = victims.len();
    for rid in victims {
        db.table_mut(stream)?.delete(rid)?;
    }

    if let Some(meta) = db.catalog_mut().meta_mut(stream) {
        if let TableKind::Stream(s) = &mut meta.kind {
            s.gc_watermark = Some(s.gc_watermark.map_or(up_to.raw(), |w| w.max(up_to.raw())));
        }
    }
    Ok(n)
}

/// Current GC watermark of a stream (None until the first GC).
pub fn watermark(db: &Database, stream: TableId) -> Result<Option<u64>> {
    match db.kind(stream)? {
        TableKind::Stream(s) => Ok(s.gc_watermark),
        _ => Err(Error::Internal(format!("{stream} is not a stream"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstore_common::{Column, DataType, Schema, Value};

    fn stream_db() -> (Database, TableId) {
        let mut db = Database::new();
        let schema = Schema::keyless(vec![Column::new("v", DataType::Int)]).unwrap();
        let s = db.create_stream("s", schema).unwrap();
        (db, s)
    }

    fn append(db: &mut Database, s: TableId, v: i64, batch: i64, seq: i64) {
        db.table_mut(s)
            .unwrap()
            .insert(vec![Value::Int(v), Value::Int(batch), Value::Int(seq)])
            .unwrap();
    }

    #[test]
    fn gc_removes_only_consumed_batches() {
        let (mut db, s) = stream_db();
        for (i, b) in [(1, 1), (2, 1), (3, 2), (4, 3)] {
            append(&mut db, s, i, b, i);
        }
        let removed = gc_stream(&mut db, s, BatchId::new(2)).unwrap();
        assert_eq!(removed, 3);
        assert_eq!(db.table(s).unwrap().len(), 1);
        assert_eq!(watermark(&db, s).unwrap(), Some(2));
    }

    #[test]
    fn watermark_is_monotone() {
        let (mut db, s) = stream_db();
        append(&mut db, s, 1, 1, 1);
        gc_stream(&mut db, s, BatchId::new(5)).unwrap();
        gc_stream(&mut db, s, BatchId::new(3)).unwrap();
        assert_eq!(watermark(&db, s).unwrap(), Some(5));
    }

    #[test]
    fn gc_on_base_table_errors() {
        let mut db = Database::new();
        let schema = Schema::keyless(vec![Column::new("v", DataType::Int)]).unwrap();
        let t = db.create_table("t", schema).unwrap();
        assert!(gc_stream(&mut db, t, BatchId::new(1)).is_err());
        assert!(watermark(&db, t).is_err());
    }

    #[test]
    fn gc_empty_stream_is_noop() {
        let (mut db, s) = stream_db();
        assert_eq!(gc_stream(&mut db, s, BatchId::new(10)).unwrap(), 0);
    }
}
