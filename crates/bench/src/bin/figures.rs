//! `figures` — regenerate every experiment in the paper (DESIGN.md §3).
//!
//! Usage:
//!   cargo run -p sstore-bench --bin figures --release            # all
//!   cargo run -p sstore-bench --bin figures --release -- e1 e3a  # subset
//!   cargo run -p sstore-bench --bin figures --release -- --quick # small n
//!
//! Each experiment prints the table/series the corresponding claim or
//! figure in the paper reports; EXPERIMENTS.md records a captured run.

use sstore_bench::*;
use sstore_voter::WindowImpl;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let run = |id: &str| wanted.is_empty() || wanted.contains(&id);
    let scale = if quick { 1 } else { 5 };

    println!("S-Store reproduction — experiment harness");
    println!("(paper: Cetintemel et al., VLDB 2014, vol 7 no 13)\n");

    if args.iter().any(|a| a == "--inventory") {
        inventory();
        return;
    }

    if run("e1") {
        exp1(scale);
    }
    if run("e2") {
        exp2(scale);
    }
    if run("e3a") {
        exp3a(scale);
    }
    if run("e3b") {
        exp3b(scale);
    }
    if run("e4") {
        exp4(scale);
    }
    if run("e6") {
        exp6(scale);
    }
    if run("e7") {
        exp7(scale);
    }
    if run("e8") {
        exp8(scale);
    }
    if run("e9") {
        exp9(scale);
    }
    if run("e10") {
        exp10(scale);
    }
    if run("e11") {
        exp11(scale);
    }
    if run("e12") {
        exp12(scale);
    }
}

/// F1 — the paper's Fig. 1 (architecture): the system inventory, mapping
/// each architectural box to the crate/module implementing it.
fn inventory() {
    println!("== F1: architecture inventory (paper Fig. 1) ==\n");
    let rows: &[(&str, &str)] = &[
        (
            "client interface (push + OLTP)",
            "sstore-core::{SStore::submit_batch, invoke}",
        ),
        (
            "pipelined/polling client (H-Store demo driver)",
            "sstore-core::client::PipelinedClient",
        ),
        (
            "shared-nothing partition runtime (workers)",
            "sstore-core::cluster::Cluster",
        ),
        (
            "partition router (hash/range, async tickets)",
            "sstore-core::router",
        ),
        ("PE: stored procedures", "sstore-txn::procedure"),
        ("PE: stream txn model / scheduler", "sstore-txn::partition"),
        (
            "PE: workflows + PE triggers",
            "sstore-txn::workflow + partition::post_te",
        ),
        ("PE: command logging (group commit)", "sstore-txn::log"),
        ("PE: upstream-backup recovery", "sstore-txn::recovery"),
        ("EE: statement execution + undo", "sstore-engine::context"),
        (
            "EE: EE triggers (insert/slide)",
            "sstore-engine::triggers + engine",
        ),
        ("EE: native windows (tuple/time)", "sstore-engine::windows"),
        ("EE: stream GC", "sstore-engine::gc"),
        ("SQL: lexer/parser/planner/executor", "sstore-sql"),
        (
            "storage: heap tables + indexes",
            "sstore-storage::{table, index}",
        ),
        (
            "storage: catalog (table/stream/window)",
            "sstore-storage::catalog",
        ),
        ("storage: snapshots", "sstore-storage::snapshot"),
        ("apps: Voter w/ Leaderboard (Figs 2-3)", "sstore-voter"),
        ("apps: BikeShare (Figs 4-5)", "sstore-bikeshare"),
    ];
    for (what, where_) in rows {
        println!("   {what:<46} {where_}");
    }
    println!();
}

/// E1 — §3.1 correctness demo: anomalies vs the rules of the show.
fn exp1(scale: usize) {
    println!("== E1: correctness — S-Store vs naive H-Store (votes vs oracle) ==");
    println!("   (paper §3.1: wrong candidates removed, possibility of a false winner)\n");
    println!("   inflight | sys      | wrong elims | tally errs | false leader | total anomalies");
    for inflight in [1usize, 4, 16, 64] {
        let (ds, dh) = exp_e1(600 * scale, inflight);
        println!(
            "   {:>8} | S-Store  | {:>11} | {:>10} | {:>12} | {:>6}",
            inflight,
            ds.wrong_eliminations,
            ds.tally_mismatches,
            ds.false_leader,
            ds.total()
        );
        println!(
            "   {:>8} | H-Store  | {:>11} | {:>10} | {:>12} | {:>6}",
            inflight,
            dh.wrong_eliminations,
            dh.tally_mismatches,
            dh.false_leader,
            dh.total()
        );
    }
    println!();
}

/// E2 — §3.1 performance demo: transactions/votes per second side by side.
fn exp2(scale: usize) {
    let n = 2_000 * scale;
    println!("== E2: throughput — S-Store vs H-Store, full Voter workflow ==\n");
    println!("   system   | votes   | votes/s  | client trips | PE->EE trips");
    let rs = run_voter(true, WindowImpl::Native, n, 1, 0, 0, 0);
    println!(
        "   S-Store  | {:>7} | {:>8.0} | {:>12} | {:>12}",
        rs.votes, rs.votes_per_sec, rs.client_pe_trips, rs.pe_ee_trips
    );
    let rh = run_voter(false, WindowImpl::Emulated, n, 1, 8, 0, 0);
    println!(
        "   H-Store  | {:>7} | {:>8.0} | {:>12} | {:>12}",
        rh.votes, rh.votes_per_sec, rh.client_pe_trips, rh.pe_ee_trips
    );
    println!(
        "\n   S-Store/H-Store speedup: {:.2}x (trip ratio: client {:.2}x, PE-EE {:.2}x)\n",
        rs.votes_per_sec / rh.votes_per_sec,
        rh.client_pe_trips as f64 / rs.client_pe_trips as f64,
        rh.pe_ee_trips as f64 / rs.pe_ee_trips as f64
    );
}

/// E3a — client↔PE round-trip reduction via PE triggers (push vs poll).
fn exp3a(scale: usize) {
    let n = 400 * scale;
    println!("== E3a: push vs poll — client<->PE round trips, with per-trip cost ==\n");
    println!("   trip cost | mode | votes/s  | client trips/vote");
    for cost in [0u64, 50, 200] {
        let push = run_voter(true, WindowImpl::Native, n, 1, 0, cost, 0);
        let poll = run_voter(false, WindowImpl::Native, n, 1, 8, cost, 0);
        println!(
            "   {:>6} us | push | {:>8.0} | {:>6.2}",
            cost,
            push.votes_per_sec,
            push.client_pe_trips as f64 / n as f64
        );
        println!(
            "   {:>6} us | poll | {:>8.0} | {:>6.2}",
            cost,
            poll.votes_per_sec,
            poll.client_pe_trips as f64 / n as f64
        );
    }
    println!();
}

/// E3b — PE↔EE round-trip reduction via native windows + EE triggers.
fn exp3b(scale: usize) {
    let n = 400 * scale;
    println!("== E3b: native vs emulated windows — PE->EE dispatches ==\n");
    println!("   stmt cost | window   | votes/s  | PE->EE trips/vote");
    for cost in [0u64, 20] {
        let native = run_voter(true, WindowImpl::Native, n, 1, 0, 0, cost);
        let emu = run_voter(true, WindowImpl::Emulated, n, 1, 0, 0, cost);
        println!(
            "   {:>6} us | native   | {:>8.0} | {:>6.2}",
            cost,
            native.votes_per_sec,
            native.pe_ee_trips as f64 / n as f64
        );
        println!(
            "   {:>6} us | emulated | {:>8.0} | {:>6.2}",
            cost,
            emu.votes_per_sec,
            emu.pe_ee_trips as f64 / n as f64
        );
    }
    println!();
}

/// E4 — §3.2 BikeShare mixed workload.
fn exp4(scale: usize) {
    let ticks = 300 * scale as u64;
    println!("== E4: BikeShare — OLTP + streaming + hybrid in one system ==\n");
    let t0 = Instant::now();
    let (r, db) = exp_e4(ticks, 7);
    let secs = t0.elapsed().as_secs_f64();
    let pe = db.stats().clone();
    println!("   simulated seconds   {:>8}", r.ticks);
    println!("   checkouts/returns   {:>8} / {}", r.checkouts, r.returns);
    println!("   GPS pings           {:>8}", r.gps_pings);
    println!("   stolen-bike alerts  {:>8}", r.alerts);
    println!(
        "   discount accepts    {:>8} ({} conflicts, all serialized)",
        r.accepts, r.accept_conflicts
    );
    println!("   revenue (cents)     {:>8}", r.total_charged);
    println!("   TEs committed       {:>8}", pe.committed);
    println!("   TEs/s (wall)        {:>8.0}", pe.committed as f64 / secs);
    println!("   invariants          verified (bike conservation, dock capacity,");
    println!("                       discount exclusivity, one open ride per rider)\n");
}

/// E6 — durability and recovery, JSON vs the CRC-framed binary codec.
fn exp6(scale: usize) {
    use sstore_core::DurabilityFormat;
    let n = 300 * scale;
    let formats = [
        ("json", DurabilityFormat::Json),
        ("binary", DurabilityFormat::Binary),
    ];
    println!("== E6: command logging overhead + upstream-backup recovery ==\n");
    println!("   config                  | votes/s");
    let off = run_voter(true, WindowImpl::Native, n, 1, 0, 0, 0);
    println!("   logging off             | {:>8.0}", off.votes_per_sec);
    for (name, format) in formats {
        for group in [1usize, 8, 64] {
            let dir = scratch_dir(&format!("fig-log-{name}{group}"));
            let r = run_durable_voter(&dir, n, group, format);
            std::fs::remove_dir_all(&dir).ok();
            println!(
                "   {name:<6} group commit {group:>3} | {:>8.0}",
                r.votes_per_sec
            );
        }
    }
    println!("\n   recovery: snapshot + log replay");
    for (name, format) in formats {
        for votes in [200 * scale, 1000 * scale] {
            let dir = scratch_dir(&format!("fig-rec-{name}{votes}"));
            let (secs, ok) = exp_e6_recovery(&dir, votes, format);
            std::fs::remove_dir_all(&dir).ok();
            println!(
                "   {name:<6} {:>6} logged votes -> recovered in {:>7.1} ms (state match: {})",
                votes,
                secs * 1e3,
                ok
            );
        }
    }
    println!();
}

/// E7 — bounded memory under unbounded streams (GC at work).
fn exp7(scale: usize) {
    println!("== E7: automatic GC — memory stays bounded on unbounded input ==\n");
    println!("   tuples ingested | resident bytes");
    let mut last = 0usize;
    for n in [2_000 * scale, 10_000 * scale, 20_000 * scale] {
        let bytes = exp_e7(n);
        println!("   {:>15} | {:>10}", n, bytes);
        last = bytes;
    }
    println!("   (window ROWS 1000 SLIDE 10: steady state ~1000 tuples resident; {last} bytes)\n");
}

/// E8 — batch size sweep.
fn exp8(scale: usize) {
    let n = 2_000 * scale;
    println!("== E8: batch size as the TE unit ==\n");
    println!("   batch | votes/s  | TEs      | mean TE latency (us)");
    for batch in [1usize, 4, 16, 64, 256, 1024] {
        let vs = votes(n);
        let mut db = sstore_voter_quiet();
        let r = sstore_voter::run_sstore(&mut db, &vs, batch).expect("run");
        println!(
            "   {:>5} | {:>8.0} | {:>8} | {:>8.1}",
            batch,
            r.votes_per_sec,
            db.stats().committed,
            db.stats().mean_latency_us()
        );
    }
    println!();
}

fn sstore_voter_quiet() -> sstore_core::SStore {
    sstore_voter(WindowImpl::Native, 0, 0)
}

/// E9 — shared-nothing cluster scaling: sync vs async routed ingest.
fn exp9(scale: usize) {
    let events = 300 * scale;
    let (batch, ee_latency_us) = (250usize, 50u64);
    println!("== E9: cluster scaling — 1/2/4 partitions, sync vs async ingest ==");
    println!(
        "   ({events} count_events rows, batches of {batch}, {ee_latency_us} us/statement EE latency)\n"
    );
    println!("   partitions | ingest | events/s | speedup vs 1p sync | state matches 1p");
    let reference = exp_e9_reference(events, batch, ee_latency_us);
    let mut base = 0.0f64;
    for n in [1usize, 2, 4] {
        for asynchronous in [false, true] {
            let (secs, state) = exp_e9_run(n, events, batch, asynchronous, ee_latency_us);
            if n == 1 && !asynchronous {
                base = secs;
            }
            println!(
                "   {:>10} | {:>6} | {:>8.0} | {:>18.2}x | {}",
                n,
                if asynchronous { "async" } else { "sync" },
                events as f64 / secs,
                base / secs,
                state == reference
            );
        }
    }
    println!();
}

/// E10 — zero-copy row pipeline: per-path timings plus the row-sharing
/// counters that prove where copies went.
fn exp10(scale: usize) {
    use sstore_core::common::RowMetrics;
    println!("== E10: zero-copy row pipeline — shared COW rows end-to-end ==\n");
    let n = 20_000 * scale;
    let mut db = exp_e10_build(n);
    println!("   path                  | elems   | ms      | M elem/s");
    let t0 = Instant::now();
    let kept = exp_e10_scan_filter(&mut db);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "   scan+filter ({kept:>6} kept) | {n:>7} | {ms:>7.2} | {:>8.2}",
        n as f64 / ms / 1e3
    );
    let t0 = Instant::now();
    let groups = exp_e10_join_agg(&mut db);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "   join+agg ({groups} groups)     | {n:>7} | {ms:>7.2} | {:>8.2}",
        n as f64 / ms / 1e3
    );
    let slide_n = 4_000 * scale;
    let t0 = Instant::now();
    exp_e10_window_slide(slide_n);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "   window slide          | {slide_n:>7} | {ms:>7.2} | {:>8.2}",
        slide_n as f64 / ms / 1e3
    );
    let before = RowMetrics::snapshot();
    let (mut hdb, hrows) = exp_e10_handoff_build(slide_n);
    let t0 = Instant::now();
    exp_e10_batch_handoff(&mut hdb, &hrows, 250);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "   batch hand-off        | {slide_n:>7} | {ms:>7.2} | {:>8.2}",
        slide_n as f64 / ms / 1e3
    );
    let delta = RowMetrics::snapshot().since(&before);
    println!(
        "\n   hand-off row metrics: {} shares, {} deep copies, {} COW breaks\n",
        delta.shares, delta.deep_copies, delta.cow_breaks
    );
}

/// E11 — cross-partition transactions: 2PC overhead per TE (multi-sited
/// batches vs the pre-sharded single-partition fast path) and the
/// cross-partition workflow edge pipeline.
fn exp11(scale: usize) {
    let events = 1_024 * scale;
    let batch = 64usize;
    println!("== E11: cross-partition transactions — 2PC vs the fast path ==");
    println!("   ({events} count_events rows, batches of {batch}, hash-routed)\n");
    println!("   partitions | mode         | events/s | 2PC txns | fast path | us/txn");
    for n in [2usize, 4] {
        let mut single_secs = 0.0f64;
        for multi in [false, true] {
            let (secs, state, stats) = exp_e11_run(n, events, batch, multi);
            if !multi {
                single_secs = secs;
            }
            let txns = if multi {
                stats.multi_partition_txns
            } else {
                stats.single_partition_fast_path
            };
            let overhead_us = if multi && stats.multi_partition_txns > 0 {
                (secs - single_secs) * 1e6 / stats.multi_partition_txns as f64
            } else {
                0.0
            };
            println!(
                "   {:>10} | {:<12} | {:>8.0} | {:>8} | {:>9} | {:>6.1}",
                n,
                if multi { "multi-sited" } else { "single-sited" },
                events as f64 / secs,
                if multi { txns } else { 0 },
                if multi { 0 } else { txns },
                overhead_us,
            );
            // Correctness gate: both modes must agree (checked once).
            if multi {
                let (_, ref_state, _) = exp_e11_run(n, events, batch, false);
                assert_eq!(state, ref_state, "2PC state diverged at {n} partitions");
            }
        }
    }
    println!("\n   cross-partition workflow edge (two-stage pipeline, stage 2 on the");
    println!("   partition owning the destination key):\n");
    println!("   partitions | events/s | forwards out | forwards in (shards)");
    for n in [1usize, 2, 4] {
        let (secs, _, (out, inn)) = exp_e11_edges(n, events, batch);
        println!(
            "   {:>10} | {:>8.0} | {:>12} | {:>20}",
            n,
            events as f64 / secs,
            out,
            inn
        );
    }
    println!();
}

/// E12 — vectorized columnar executor: identical queries through the row
/// interpreter and the batch/kernels path, plus the incremental window
/// aggregate cache (tick cost vs window size).
fn exp12(scale: usize) {
    use sstore_bench::ExecPath;
    println!("== E12: vectorized columnar executor — row vs vector path ==\n");
    let n = 20_000 * scale;
    let mut db = exp_e12_build(n);
    println!("   query ({n} events)         | row ms  | vec ms  | speedup");
    // One untimed warmup then median-of-N per query: the first call on a
    // fresh path pays allocator/page-fault costs that are not steady-state.
    fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
        f();
        let mut times: Vec<f64> = (0..reps)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        times.sort_by(f64::total_cmp);
        times[times.len() / 2]
    }
    let mut timings = Vec::new();
    for path in [ExecPath::Row, ExecPath::Vector] {
        exp_e12_set_path(&mut db, path);
        let mut kept = 0;
        let scan_ms = median_ms(5, || {
            kept = exp_e12_scan_filter_agg(&mut db).0;
        });
        // The row-path join is O(events × dims); keep its reps small.
        let join_reps = if path == ExecPath::Row { 1 } else { 5 };
        let mut joined = 0;
        let join_ms = median_ms(join_reps, || {
            joined = exp_e12_join_count(&mut db);
        });
        assert_eq!(joined, n as i64, "join must match every event once");
        timings.push((kept, scan_ms, join_ms));
    }
    let (kept, row_scan, row_join) = timings[0];
    let (vkept, vec_scan, vec_join) = timings[1];
    assert_eq!(kept, vkept, "paths disagree on filter cardinality");
    println!(
        "   scan+filter+agg ({kept:>6} kept) | {row_scan:>7.2} | {vec_scan:>7.2} | {:>6.1}x",
        row_scan / vec_scan
    );
    println!(
        "   equi-join (x{})            | {row_join:>7.2} | {vec_join:>7.2} | {:>6.1}x",
        sstore_bench::E12_DIMS,
        row_join / vec_join
    );

    println!("\n   window tick (1 insert + COUNT/SUM/AVG read), ROWS w SLIDE 10:\n");
    println!("   window rows | row us/tick | vec us/tick");
    for size in [1_000 * scale, 4_000 * scale, 16_000 * scale] {
        let mut per_path = Vec::new();
        for path in [ExecPath::Row, ExecPath::Vector] {
            let mut wdb = exp_e12_window_build(size);
            exp_e12_set_path(&mut wdb, path);
            let ticks = 50i64;
            let t0 = Instant::now();
            for i in 0..ticks {
                exp_e12_window_tick(&mut wdb, i);
            }
            per_path.push(t0.elapsed().as_secs_f64() * 1e6 / ticks as f64);
        }
        println!(
            "   {:>11} | {:>11.1} | {:>11.1}",
            size, per_path[0], per_path[1]
        );
    }
    println!();
}
