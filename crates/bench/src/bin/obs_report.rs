//! CI observability smoke: run a short mixed workload on a durable
//! two-partition cluster with a cross-partition edge, emit the full
//! telemetry export to `target/OBS_report.json`, and validate it —
//! schema keys present, JSON round-trips through `ObsReport::from_json`,
//! and the stage histogram counts reconcile with the batches the run
//! actually submitted. Exits non-zero (panics) on any violation.
//!
//! Usage: `cargo run -p sstore-bench --bin obs_report`

use sstore_core::workloads::{
    count_events_rows, deploy_count_events, deploy_two_stage, two_stage_rows, TWO_STAGE_EDGES,
};
use sstore_core::{Cluster, ObsReport, RouteSpec, SStore, SStoreBuilder};

const STAGE_KEYS: [&str; 9] = [
    "routed",
    "queued",
    "logged",
    "executed",
    "fsynced",
    "prepared",
    "decided",
    "forwarded",
    "acked",
];

fn deploy_both(db: &mut SStore) -> sstore_core::common::Result<()> {
    deploy_count_events(db)?;
    deploy_two_stage(db)
}

fn main() {
    let dir = std::env::temp_dir().join(format!("sstore-obs-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");

    let cluster = Cluster::with_edges(
        2,
        RouteSpec::hash(0),
        64,
        &SStoreBuilder::new().durability(&dir, 2),
        deploy_both,
        TWO_STAGE_EDGES,
    )
    .expect("cluster");

    // Mixed traffic: plain partitioned ingest plus a two-stage workflow
    // whose hand_off edge exercises the forwarded/acked stages.
    let mut submissions = 0u64;
    let mut shards = 0u64;
    for i in 0..30 {
        let ticket = cluster
            .submit_batch_async("count_events", count_events_rows(16, 8, 5 + i % 3))
            .expect("submit count_events");
        submissions += 1;
        shards += ticket.wait().expect("commit").len() as u64;
    }
    for _ in 0..10 {
        let ticket = cluster
            .submit_batch_async("route_events", two_stage_rows(16, 8))
            .expect("submit route_events");
        submissions += 1;
        shards += ticket.wait().expect("commit").len() as u64;
    }
    cluster.quiesce().expect("quiesce");

    let report = cluster.observability_report();
    let json = report.to_json();

    // Schema: stable keys, machine-parseable.
    let parsed = ObsReport::from_json(&json).expect("OBS_report.json must parse back");
    for key in STAGE_KEYS {
        assert!(parsed.stages.contains_key(key), "missing stage `{key}`");
    }

    // Reconciliation: every client submission routed once; every
    // per-partition ingest batch passed queued and executed exactly
    // once. Forwarded hand_off batches are logged at the destination
    // (but deliberately record no queued/executed — the source batch
    // already did), so `logged` is a superset of `executed`.
    assert_eq!(report.stages["routed"].count, submissions);
    assert_eq!(report.stages["queued"].count, shards);
    assert_eq!(report.stages["executed"].count, shards);
    assert!(report.stages["logged"].count >= shards);
    assert!(report.stages["forwarded"].count > 0, "edge never forwarded");
    assert!(report.stages["acked"].count > 0, "edge never acked");
    let submitted: u64 = report
        .metrics
        .partitions
        .iter()
        .map(|p| p.batches_submitted)
        .sum();
    assert_eq!(
        report.stages["logged"].count, submitted,
        "logged stage count must equal the cluster's submitted-batch total"
    );
    assert!(
        !report.slowest_batches.is_empty(),
        "no trace spans captured"
    );

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target")
        .join("OBS_report.json");
    std::fs::write(&path, &json).expect("write OBS_report.json");

    println!("wrote {}", path.display());
    println!("\n  stage     |  count |  p50 ms |  p95 ms |  p99 ms");
    for key in STAGE_KEYS {
        let s = &report.stages[key];
        println!(
            "  {key:<9} | {:>6} | {:>7.3} | {:>7.3} | {:>7.3}",
            s.count,
            s.p50_us / 1e3,
            s.p95_us / 1e3,
            s.p99_us / 1e3
        );
    }
    println!(
        "\n  committed/s {:.1} | skew {:.2} | ring overwrites {} | slowest batch {:.3} ms (trace {})",
        report.committed_per_s,
        report.skew,
        report.trace_ring_overwrites,
        report.slowest_batches[0].total_us / 1e3,
        report.slowest_batches[0].trace
    );
    println!("OBS smoke OK");

    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}
