//! Shared benchmark harness for the paper's experiments (DESIGN.md §3).
//!
//! Every experiment id (E1–E8) has a driver here; the criterion benches
//! and the `figures` binary both call into these so numbers line up.

use sstore_bikeshare::{BikeConfig, CitySim, SimReport};
use sstore_core::{recover, DurabilityFormat, SStore, SStoreBuilder};
use sstore_voter::checker::oracle_state;
use sstore_voter::workload::Vote;
use sstore_voter::{
    capture_state, diff_states, install, run_hstore, run_sstore, Discrepancies, Oracle, RunReport,
    VoteGen, VoterConfig, WindowImpl,
};

/// Default Voter configuration for experiments (paper's parameters).
pub fn voter_config() -> VoterConfig {
    VoterConfig::default()
}

/// Deterministic vote stream shared by all experiments.
pub fn votes(n: usize) -> Vec<Vote> {
    VoteGen::new(2014, voter_config().num_contestants).take(n)
}

/// Build an installed S-Store Voter instance.
pub fn sstore_voter(window: WindowImpl, client_cost_us: u64, ee_cost_us: u64) -> SStore {
    let mut db = SStoreBuilder::new()
        .client_trip_cost(client_cost_us)
        .ee_trip_cost(ee_cost_us)
        .build()
        .expect("build");
    install(&mut db, window, &voter_config()).expect("install");
    db
}

/// Build an installed H-Store-mode Voter instance.
pub fn hstore_voter(window: WindowImpl, client_cost_us: u64, ee_cost_us: u64) -> SStore {
    let mut db = SStoreBuilder::new()
        .hstore_mode()
        .client_trip_cost(client_cost_us)
        .ee_trip_cost(ee_cost_us)
        .build()
        .expect("build");
    install(&mut db, window, &voter_config()).expect("install");
    db
}

/// E1: anomaly counts for both systems against the oracle.
pub fn exp_e1(n_votes: usize, inflight: usize) -> (Discrepancies, Discrepancies) {
    let vs = votes(n_votes);
    let mut oracle = Oracle::new(voter_config());
    for v in &vs {
        oracle.feed(v.phone, v.contestant);
    }
    let expected = oracle_state(&oracle);

    let mut s = sstore_voter(WindowImpl::Native, 0, 0);
    run_sstore(&mut s, &vs, 1).expect("sstore run");
    let ds = diff_states(&expected, &capture_state(&mut s).expect("state"));

    let mut h = hstore_voter(WindowImpl::Emulated, 0, 0);
    run_hstore(&mut h, &vs, inflight).expect("hstore run");
    let dh = diff_states(&expected, &capture_state(&mut h).expect("state"));
    (ds, dh)
}

/// E2 / E3a / E3b / E8 share this: run one configuration, return the report.
pub fn run_voter(
    sstore_mode: bool,
    window: WindowImpl,
    n_votes: usize,
    batch: usize,
    inflight: usize,
    client_cost_us: u64,
    ee_cost_us: u64,
) -> RunReport {
    let vs = votes(n_votes);
    if sstore_mode {
        let mut db = sstore_voter(window, client_cost_us, ee_cost_us);
        run_sstore(&mut db, &vs, batch).expect("run")
    } else {
        let mut db = hstore_voter(window, client_cost_us, ee_cost_us);
        run_hstore(&mut db, &vs, inflight).expect("run")
    }
}

/// E4: the BikeShare mixed workload.
pub fn exp_e4(ticks: u64, seed: u64) -> (SimReport, SStore) {
    let cfg = BikeConfig::default();
    let mut db = SStoreBuilder::new().build().expect("build");
    sstore_bikeshare::install(&mut db, &cfg).expect("install");
    let mut sim = CitySim::new(&mut db, cfg.clone(), seed).expect("sim");
    sim.p_start = 0.05;
    sim.p_theft = 0.005;
    let report = sim.run(&mut db, ticks).expect("run");
    sstore_bikeshare::verify_invariants(&mut db, &cfg).expect("invariants");
    (report, db)
}

/// E6/E4 support: run `n` voter batches with durability under `dir`,
/// in the given on-disk format (both codecs are live in the same build,
/// so json-vs-binary is an apples-to-apples sweep on one workload).
pub fn run_durable_voter(
    dir: &std::path::Path,
    n_votes: usize,
    group_commit: usize,
    format: DurabilityFormat,
) -> RunReport {
    let vs = votes(n_votes);
    let mut db = SStoreBuilder::new()
        .durability(dir, group_commit)
        .log_format(format)
        .build()
        .expect("build");
    install(&mut db, WindowImpl::Native, &voter_config()).expect("install");
    run_sstore(&mut db, &vs, 1).expect("run")
}

/// E6/E4: measure recovery wall time for a log of `n_votes` border
/// batches written in `format`.
pub fn exp_e6_recovery(
    dir: &std::path::Path,
    n_votes: usize,
    format: DurabilityFormat,
) -> (f64, bool) {
    // Populate durable state, capture the reference, then "crash".
    let vs = votes(n_votes);
    let reference = {
        let mut db = SStoreBuilder::new()
            .durability(dir, 8)
            .log_format(format)
            .build()
            .expect("build");
        install(&mut db, WindowImpl::Native, &voter_config()).expect("install");
        run_sstore(&mut db, &vs, 1).expect("run");
        capture_state(&mut db).expect("state")
    };
    let t0 = std::time::Instant::now();
    let builder = SStoreBuilder::new().durability(dir, 8).log_format(format);
    let mut recovered = recover(builder.config().clone(), |db| {
        install(db, WindowImpl::Native, &voter_config())
    })
    .expect("recover");
    let secs = t0.elapsed().as_secs_f64();
    let matches =
        diff_states(&reference, &capture_state(&mut recovered).expect("state")).is_clean();
    (secs, matches)
}

/// E7: memory growth with and without stream/window GC is implicit in the
/// engine (GC always runs); we measure the *bound*: bytes after N tuples
/// for two N values — bounded memory means they are close.
pub fn exp_e7(n_tuples: usize) -> usize {
    let mut db = SStoreBuilder::new().build().expect("build");
    db.ddl("CREATE STREAM s_in (v INT)").expect("ddl");
    db.ddl("CREATE WINDOW w (v INT) ROWS 1000 SLIDE 10")
        .expect("ddl");
    db.register(
        sstore_core::ProcSpec::new("ingest", |ctx| {
            for row in ctx.input().rows.clone() {
                ctx.exec("win", &[row[0].clone()])?;
            }
            Ok(())
        })
        .consumes("s_in")
        .owns_window("w")
        .stmt("win", "INSERT INTO w VALUES (?)"),
    )
    .expect("register");
    use sstore_core::common::Value;
    for i in 0..n_tuples {
        db.submit_batch("ingest", vec![vec![Value::Int(i as i64)]])
            .expect("submit");
    }
    db.engine().db().approx_bytes()
}

/// E9 deployment: the `count_events` per-key counting workload —
/// embarrassingly partitionable, the shape the shared-nothing runtime is
/// built for. One definition for every consumer (bench, `figures`, core
/// tests): [`sstore_core::workloads::deploy_count_events`].
pub use sstore_core::workloads::deploy_count_events as count_events_deploy;

/// Deterministic `count_events` input rows (wide key space: 1024 keys).
pub fn count_events_rows(n: usize) -> Vec<sstore_core::common::Row> {
    sstore_core::workloads::count_events_rows(n, 1024, 97)
}

/// E9 reference: the single-partition blocking run. Returns the sorted
/// final `totals` state that every partitioned configuration must match.
pub fn exp_e9_reference(
    events: usize,
    batch: usize,
    ee_latency_us: u64,
) -> Vec<sstore_core::common::Row> {
    let mut db = SStoreBuilder::new()
        .ee_trip_latency(ee_latency_us)
        .build()
        .expect("build");
    count_events_deploy(&mut db).expect("deploy");
    for chunk in count_events_rows(events).chunks(batch) {
        db.submit_batch("count_events", chunk.to_vec())
            .expect("submit");
    }
    let mut rows = db.query("SELECT * FROM totals", &[]).expect("query").rows;
    rows.sort();
    rows
}

/// E9: push `events` rows through an `partitions`-way cluster in batches
/// of `batch`, blocking per submission (`asynchronous = false`) or
/// pipelining tickets through the bounded ingest queues
/// (`asynchronous = true`). The per-statement `ee_latency_us` sleep
/// models the round-trip latency of a remote EE — blocked time the
/// partition workers overlap, which is what lets a cluster scale past
/// the local core count. Returns the wall seconds spent ingesting and
/// the sorted final `totals` state.
pub fn exp_e9_run(
    partitions: usize,
    events: usize,
    batch: usize,
    asynchronous: bool,
    ee_latency_us: u64,
) -> (f64, Vec<sstore_core::common::Row>) {
    use sstore_core::Cluster;
    let builder = SStoreBuilder::new().ee_trip_latency(ee_latency_us);
    let cluster = Cluster::new(partitions, &builder, count_events_deploy).expect("cluster");
    let rows = count_events_rows(events);
    let t0 = std::time::Instant::now();
    if asynchronous {
        let mut tickets = Vec::new();
        for chunk in rows.chunks(batch) {
            tickets.push(
                cluster
                    .submit_batch_async("count_events", chunk.to_vec())
                    .expect("submit"),
            );
        }
        for t in tickets {
            t.wait().expect("ticket");
        }
    } else {
        for chunk in rows.chunks(batch) {
            cluster
                .submit_batch_partitioned("count_events", chunk.to_vec(), 0)
                .expect("submit");
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    let mut state = cluster
        .query_all("SELECT * FROM totals", &[])
        .expect("query");
    state.sort();
    (secs, state)
}

/// E4: command-log append throughput, isolated from the voter engine —
/// encode + buffered write + group-commit fsync for `records` border
/// batches of `rows_per_record` rows each (mixed int/text cells, the
/// shape streaming ingest produces). This is where the codec itself shows
/// up: both formats pay the same fsync count, so any difference is
/// serialization + write volume. Returns (bytes written, fsyncs).
pub fn exp_e4_log_append(
    dir: &std::path::Path,
    records: usize,
    rows_per_record: usize,
    group_commit: usize,
    format: DurabilityFormat,
) -> (u64, u64) {
    use sstore_core::common::{BatchId, Row, Value};
    use sstore_core::{CommandLog, LogConfig, LogRecord};
    let cfg = LogConfig::with_group_commit(dir, group_commit).with_format(format);
    let mut log = CommandLog::open(cfg).expect("open log");
    let rows: Vec<Row> = (0..rows_per_record)
        .map(|i| {
            Row::new(vec![
                Value::Int(i as i64),
                Value::Int((i * 37) as i64 % 1000),
                Value::Text(format!("device-{i:04}")),
                Value::Float(i as f64 * 0.5),
            ])
        })
        .collect();
    for b in 0..records {
        log.append(&LogRecord::BorderBatch {
            batch: BatchId::new(b as u64 + 1),
            proc: "ingest".into(),
            rows: rows.clone(), // refcount bumps; encode borrows the cells
            ts: b as i64,
        })
        .expect("append");
    }
    log.sync().expect("sync");
    (log.bytes_written(), log.syncs())
}

/// A fresh scratch directory under the system temp dir.
pub fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!(
        "sstore-bench-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0)
    ));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).expect("mkdir");
    p
}

// ---------------------------------------------------------------------------
// E10 — row-pipeline hot paths (zero-copy row refactor)
// ---------------------------------------------------------------------------

/// Build a visible row from owned values (`Row` is cheap-to-clone and
/// shares storage; this is the one place benches materialize fresh rows).
pub fn e10_row(vals: Vec<sstore_core::common::Value>) -> sstore_core::common::Row {
    vals.into()
}

/// E10 setup: an SStore with a `events(id, k, v)` table of `n` rows and a
/// tiny `dims(k, name)` dimension table (8 rows).
pub fn exp_e10_build(n: usize) -> SStore {
    use sstore_core::common::Value;
    let mut db = SStoreBuilder::new().build().expect("build");
    db.ddl(
        "CREATE TABLE events (id INT NOT NULL, k INT NOT NULL, v FLOAT NOT NULL, PRIMARY KEY (id))",
    )
    .expect("ddl");
    db.ddl("CREATE TABLE dims (k INT NOT NULL, name VARCHAR NOT NULL, PRIMARY KEY (k))")
        .expect("ddl");
    for k in 0..8i64 {
        db.setup_sql(
            "INSERT INTO dims VALUES (?, ?)",
            &[Value::Int(k), Value::Text(format!("dim-{k}"))],
        )
        .expect("seed dims");
    }
    // Seed in multi-row VALUES chunks: one parse per 500 rows.
    let mut i = 0usize;
    while i < n {
        let hi = (i + 500).min(n);
        let mut sql = String::from("INSERT INTO events VALUES ");
        for (j, id) in (i..hi).enumerate() {
            if j > 0 {
                sql.push(',');
            }
            sql.push_str(&format!("({}, {}, {}.5)", id, id % 8, id % 100));
        }
        db.setup_sql(&sql, &[]).expect("seed events");
        i = hi;
    }
    db
}

/// E10a: full scan + filter over `events`, materializing roughly half the
/// table — measures per-row handling cost through Scan/Filter/Project.
pub fn exp_e10_scan_filter(db: &mut SStore) -> usize {
    db.query("SELECT id, k, v FROM events WHERE v >= 50.0", &[])
        .expect("query")
        .rows
        .len()
}

/// E10b: nested-loop join + aggregate — measures row concatenation and
/// group-key handling.
pub fn exp_e10_join_agg(db: &mut SStore) -> usize {
    db.query(
        "SELECT d.name, COUNT(*) FROM events e JOIN dims d ON e.k = d.k GROUP BY d.name",
        &[],
    )
    .expect("query")
    .rows
    .len()
}

/// E10c: window-slide maintenance — `n` tuples through a ROWS 5000 SLIDE 10
/// window, the path that used to rescan the whole window table per slide
/// (cost grew with window size; the arrival deque makes it O(slide)).
pub fn exp_e10_window_slide(n: usize) -> usize {
    use sstore_core::common::Value;
    let mut db = SStoreBuilder::new().build().expect("build");
    db.ddl("CREATE STREAM s_in (v INT)").expect("ddl");
    db.ddl("CREATE WINDOW w (v INT) ROWS 5000 SLIDE 10")
        .expect("ddl");
    db.register(
        sstore_core::ProcSpec::new("ingest", |ctx| {
            for row in ctx.input().rows.clone() {
                ctx.exec("win", &[row[0].clone()])?;
            }
            Ok(())
        })
        .consumes("s_in")
        .owns_window("w")
        .stmt("win", "INSERT INTO w VALUES (?)"),
    )
    .expect("register");
    for chunk_start in (0..n).step_by(64) {
        let rows: Vec<sstore_core::common::Row> = (chunk_start..(chunk_start + 64).min(n))
            .map(|i| e10_row(vec![Value::Int(i as i64)]))
            .collect();
        db.submit_batch("ingest", rows).expect("submit");
    }
    db.engine().db().approx_bytes()
}

/// E10d setup: an SStore with a border `observe` procedure that consumes
/// its batch directly (no per-row SQL), plus `events` wide input rows
/// (three ints and a 64-byte payload string each).
pub fn exp_e10_handoff_build(events: usize) -> (SStore, Vec<sstore_core::common::Row>) {
    use sstore_core::common::Value;
    let mut db = SStoreBuilder::new().build().expect("build");
    db.ddl("CREATE STREAM s_in (k INT, a INT, b INT, payload VARCHAR)")
        .expect("ddl");
    db.register(
        sstore_core::ProcSpec::new("observe", |ctx| {
            // A consumer that reads every row of its batch; the hand-off
            // into this context is what's measured.
            let mut checksum = 0i64;
            for row in &ctx.input().rows {
                checksum += row[0].as_int()? + row[3].as_text()?.len() as i64;
            }
            std::hint::black_box(checksum);
            Ok(())
        })
        .consumes("s_in"),
    )
    .expect("register");
    let payload = "x".repeat(64);
    let rows: Vec<sstore_core::common::Row> = (0..events)
        .map(|i| {
            e10_row(vec![
                Value::Int(i as i64),
                Value::Int((i % 97) as i64),
                Value::Int((i % 7) as i64),
                Value::Text(payload.clone()),
            ])
        })
        .collect();
    (db, rows)
}

/// E10d: batch hand-off — push the prebuilt rows through the ingest path
/// in batches of `batch`. Exercises exactly the hand-off the zero-copy
/// refactor targets: client submission → command-log record construction →
/// scheduler queue → procedure-context input batch. Before the refactor
/// every stage deep-copied each row (including the payload string); now
/// each stage is a refcount bump.
pub fn exp_e10_batch_handoff(
    db: &mut SStore,
    rows: &[sstore_core::common::Row],
    batch: usize,
) -> u64 {
    for chunk in rows.chunks(batch) {
        db.submit_batch("observe", chunk.to_vec()).expect("submit");
    }
    db.stats().committed
}

// ---------------------------------------------------------------------------
// E11: cross-partition transactions (2PC) and workflow edges
// ---------------------------------------------------------------------------

/// E11 input rows: wide key space so unsharded batches straddle every
/// partition (forcing 2PC for the multi-sited mode).
pub fn e11_rows(events: usize) -> Vec<sstore_core::common::Row> {
    sstore_core::workloads::count_events_rows(events, 1024, 97)
}

/// E11: ingest `events` rows into a `partitions`-way cluster running the
/// `multi_partition`-declared `count_events`.
///
/// * `multi_sited = true` — batches are cut from the unsharded stream, so
///   every batch straddles partitions and runs as one global transaction
///   under two-phase commit.
/// * `multi_sited = false` — the same rows are pre-sharded by the router
///   and batched within each shard, so every submission routes to one
///   partition and takes the single-partition fast path (byte-identical
///   to the PR 2 ingest path).
///
/// Returns wall seconds, the sorted final `totals` state (must match
/// across modes — 2PC buys atomicity, never a different answer), and the
/// coordinator's counters.
pub fn exp_e11_run(
    partitions: usize,
    events: usize,
    batch: usize,
    multi_sited: bool,
) -> (f64, Vec<sstore_core::common::Row>, sstore_core::CoordStats) {
    use sstore_core::{Cluster, RouteSpec, Router};
    let cluster = Cluster::new(
        partitions,
        &SStoreBuilder::new(),
        sstore_core::workloads::deploy_count_events_multi,
    )
    .expect("cluster");
    let rows = e11_rows(events);
    let t0 = std::time::Instant::now();
    if multi_sited {
        let mut tickets = Vec::new();
        for chunk in rows.chunks(batch) {
            tickets.push(
                cluster
                    .submit_batch_atomic("count_events", chunk.to_vec())
                    .expect("submit"),
            );
        }
        for t in tickets {
            t.wait().expect("ticket");
        }
    } else {
        let router = Router::new(RouteSpec::hash(0), partitions).expect("router");
        let shards = router.shard(rows).expect("shard");
        let mut tickets = Vec::new();
        for shard in shards {
            for chunk in shard.chunks(batch) {
                tickets.push(
                    cluster
                        .submit_batch_async("count_events", chunk.to_vec())
                        .expect("submit"),
                );
            }
        }
        for t in tickets {
            t.wait().expect("ticket");
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    let mut state = cluster
        .query_all("SELECT * FROM totals", &[])
        .expect("query");
    state.sort();
    (secs, state, cluster.coordinator_stats())
}

/// E11 edge leg: push `events` `(src, dest, amount)` tuples through the
/// two-stage pipeline whose hand-off stream is a cross-partition edge —
/// stage 1 runs on the partition owning the source key, stage 2 on the
/// partition owning the destination key. Returns wall seconds (to full
/// quiescence), the sorted `dest_totals` state, and the cluster-wide
/// (forwards out, forwards in) counters.
pub fn exp_e11_edges(
    partitions: usize,
    events: usize,
    batch: usize,
) -> (f64, Vec<sstore_core::common::Row>, (u64, u64)) {
    use sstore_core::workloads::{deploy_two_stage, two_stage_rows, TWO_STAGE_EDGES};
    use sstore_core::{Cluster, RouteSpec};
    let cluster = Cluster::with_edges(
        partitions,
        RouteSpec::hash(0),
        sstore_core::cluster::DEFAULT_INGEST_QUEUE_DEPTH,
        &SStoreBuilder::new(),
        deploy_two_stage,
        TWO_STAGE_EDGES,
    )
    .expect("cluster");
    let rows = two_stage_rows(events, 512);
    let t0 = std::time::Instant::now();
    let mut tickets = Vec::new();
    for chunk in rows.chunks(batch) {
        tickets.push(
            cluster
                .submit_batch_async("route_events", chunk.to_vec())
                .expect("submit"),
        );
    }
    for t in tickets {
        t.wait().expect("ticket");
    }
    cluster.quiesce().expect("quiesce");
    let secs = t0.elapsed().as_secs_f64();
    let mut state = cluster
        .query_all("SELECT * FROM dest_totals", &[])
        .expect("query");
    state.sort();
    let m = cluster.metrics();
    let out = m.partitions.iter().map(|p| p.forwards_out).sum();
    let inn = m.partitions.iter().map(|p| p.forwards_in).sum();
    (secs, state, (out, inn))
}

// ---------------------------------------------------------------------------
// E12 — vectorized columnar executor vs the row interpreter
// ---------------------------------------------------------------------------

pub use sstore_core::ExecPath;

/// E12 dimension-table cardinality (`dims` rows; `events.k` ranges over it).
pub const E12_DIMS: usize = 256;

/// Pin the partition's executor path (row interpreter vs vectorized).
pub fn exp_e12_set_path(db: &mut SStore, path: ExecPath) {
    db.engine_mut().set_exec_path(path);
}

/// E12 setup: `events(id, k, v, w)` of `n` rows plus a `dims(k, name)`
/// dimension table of [`E12_DIMS`] rows. `v` is uniform over `[0.5, 99.5]`
/// so `v >= 50.0` keeps about half; `k = id % E12_DIMS` so the equi-join
/// matches every event exactly once.
pub fn exp_e12_build(n: usize) -> SStore {
    use sstore_core::common::Value;
    let mut db = SStoreBuilder::new().build().expect("build");
    db.ddl(
        "CREATE TABLE events (id INT NOT NULL, k INT NOT NULL, v FLOAT NOT NULL, w INT NOT NULL, \
         PRIMARY KEY (id))",
    )
    .expect("ddl");
    db.ddl("CREATE TABLE dims (k INT NOT NULL, name VARCHAR NOT NULL, PRIMARY KEY (k))")
        .expect("ddl");
    for k in 0..E12_DIMS as i64 {
        db.setup_sql(
            "INSERT INTO dims VALUES (?, ?)",
            &[Value::Int(k), Value::Text(format!("dim-{k:03}"))],
        )
        .expect("seed dims");
    }
    let mut i = 0usize;
    while i < n {
        let hi = (i + 500).min(n);
        let mut sql = String::from("INSERT INTO events VALUES ");
        for (j, id) in (i..hi).enumerate() {
            if j > 0 {
                sql.push(',');
            }
            sql.push_str(&format!(
                "({}, {}, {}.5, {})",
                id,
                id % E12_DIMS,
                id % 100,
                id % 1000
            ));
        }
        db.setup_sql(&sql, &[]).expect("seed events");
        i = hi;
    }
    db
}

/// E12a: scan + filter + aggregate — `COUNT`/`SUM` over roughly half the
/// table. On the vector path this runs as one batch build, one float
/// comparison kernel, and two aggregation kernels over the selection.
pub fn exp_e12_scan_filter_agg(db: &mut SStore) -> (i64, i64) {
    let rows = db
        .query("SELECT COUNT(*), SUM(w) FROM events WHERE v >= 50.0", &[])
        .expect("query")
        .rows;
    let count = rows[0][0].as_int().expect("count");
    let sum = rows[0][1].as_int().expect("sum");
    (count, sum)
}

/// E12b: equi-join cardinality — nested loop on the row path, hash
/// build/probe (`dims` build side, `events` probe side) on the vector
/// path.
pub fn exp_e12_join_count(db: &mut SStore) -> i64 {
    db.query(
        "SELECT COUNT(*) FROM events JOIN dims ON events.k = dims.k",
        &[],
    )
    .expect("query")
    .rows[0][0]
        .as_int()
        .expect("count")
}

/// E12c setup: a prefilled `ROWS size SLIDE 10` window ready for
/// steady-state tick measurements.
pub fn exp_e12_window_build(size: usize) -> SStore {
    let mut db = SStoreBuilder::new().build().expect("build");
    db.ddl(&format!("CREATE WINDOW w (v INT) ROWS {size} SLIDE 10"))
        .expect("ddl");
    let mut i = 0usize;
    while i < size {
        let hi = (i + 500).min(size);
        let mut sql = String::from("INSERT INTO w VALUES ");
        for (j, v) in (i..hi).enumerate() {
            if j > 0 {
                sql.push(',');
            }
            sql.push_str(&format!("({v})"));
        }
        db.setup_sql(&sql, &[]).expect("prefill window");
        i = hi;
    }
    db
}

/// E12c: one steady-state window tick — ingest one tuple, then read the
/// window's running aggregates. The row path rescans all `size` rows per
/// read; the vector path answers from the incrementally-maintained
/// aggregate cache, so tick cost is independent of window size.
pub fn exp_e12_window_tick(db: &mut SStore, i: i64) -> (i64, f64) {
    use sstore_core::common::Value;
    db.setup_sql("INSERT INTO w VALUES (?)", &[Value::Int(i)])
        .expect("insert");
    let rows = db
        .query("SELECT COUNT(*), SUM(v), AVG(v) FROM w", &[])
        .expect("query")
        .rows;
    let count = rows[0][0].as_int().expect("count");
    let avg = match rows[0][2] {
        Value::Float(f) => f,
        ref other => panic!("AVG returned {other:?}"),
    };
    (count, avg)
}

// ---------------------------------------------------------------------------
// E13 — delta snapshots, parallel recovery, 2PC fast paths
// ---------------------------------------------------------------------------

/// E13 key-value workload: `load` bulk-inserts live rows, `touch` updates
/// a hot subset. Deterministic, so recovery can redeploy it.
pub fn deploy_e13_kv(p: &mut SStore) -> sstore_core::common::Result<()> {
    p.ddl("CREATE STREAM load_in (k INT, v INT)")?;
    p.ddl("CREATE STREAM upd_in (k INT, v INT)")?;
    p.ddl("CREATE TABLE kv (k INT NOT NULL, v INT NOT NULL, PRIMARY KEY (k))")?;
    p.register(
        sstore_core::ProcSpec::new("load", |ctx| {
            for row in ctx.input().rows.clone() {
                ctx.exec("ins", &[row[0].clone(), row[1].clone()])?;
            }
            Ok(())
        })
        .consumes("load_in")
        .stmt("ins", "INSERT INTO kv VALUES (?, ?)"),
    )?;
    p.register(
        sstore_core::ProcSpec::new("touch", |ctx| {
            for row in ctx.input().rows.clone() {
                ctx.exec("upd", &[row[1].clone(), row[0].clone()])?;
            }
            Ok(())
        })
        .consumes("upd_in")
        .stmt("upd", "UPDATE kv SET v = v + ? WHERE k = ?"),
    )?;
    Ok(())
}

fn e13_config(dir: &std::path::Path, delta: bool) -> sstore_core::PeConfig {
    use sstore_core::LogConfig;
    // Cap 0 forces full images at every retention point — the pre-PR-8
    // behavior — without touching the process-global SSTORE_SNAPSHOT env.
    let cap = if delta { 64 } else { 0 };
    sstore_core::PeConfig {
        log: Some(LogConfig::new(dir).with_delta_chain_cap(cap)),
        ..sstore_core::PeConfig::default()
    }
}

fn e13_rows(range: std::ops::Range<usize>) -> Vec<sstore_core::common::Row> {
    use sstore_core::common::{Row, Value};
    range
        .map(|i| Row::new(vec![Value::Int(i as i64), Value::Int((i % 97) as i64)]))
        .collect()
}

/// Populate a durable E13 partition: `live_rows` inserts, one base
/// snapshot, then `rounds` hot-key update rounds each followed by a
/// retention-style snapshot (deltas when `delta`, full rewrites when
/// not). Returns the partition (still open) and the per-snapshot wall
/// seconds of the post-base snapshots.
pub fn exp_e13_populate(
    dir: &std::path::Path,
    live_rows: usize,
    hot_keys: usize,
    rounds: usize,
    delta: bool,
) -> (SStore, Vec<f64>) {
    let mut p = SStore::new(e13_config(dir, delta)).expect("build");
    deploy_e13_kv(&mut p).expect("deploy");
    for chunk in e13_rows(0..live_rows).chunks(4096) {
        p.submit_batch("load", chunk.to_vec()).expect("load");
    }
    p.snapshot().expect("base snapshot");
    let mut snap_secs = Vec::new();
    for r in 0..rounds {
        let start = (r * hot_keys) % live_rows.saturating_sub(hot_keys).max(1);
        let upd = e13_rows(start..start + hot_keys);
        p.submit_batch("touch", upd).expect("touch");
        let t0 = std::time::Instant::now();
        p.snapshot().expect("snapshot");
        snap_secs.push(t0.elapsed().as_secs_f64());
    }
    (p, snap_secs)
}

/// E13 partition-level recovery leg: crash the populated partition and
/// time `recover`. Returns (recovery wall seconds, post-base snapshot
/// wall seconds, live-row checksum match).
pub fn exp_e13_recovery(
    dir: &std::path::Path,
    live_rows: usize,
    hot_keys: usize,
    rounds: usize,
    delta: bool,
) -> (f64, Vec<f64>, bool) {
    let (mut p, snap_secs) = exp_e13_populate(dir, live_rows, hot_keys, rounds, delta);
    let checksum = |p: &mut SStore| -> i64 {
        p.query("SELECT COUNT(*), SUM(v) FROM kv", &[])
            .expect("probe")
            .rows
            .first()
            .map(|r| {
                r.to_values()
                    .iter()
                    .map(|v| v.as_int().unwrap_or(0))
                    .sum::<i64>()
            })
            .unwrap_or(0)
    };
    let reference = checksum(&mut p);
    drop(p); // crash
    let t0 = std::time::Instant::now();
    let mut r = recover(e13_config(dir, delta), deploy_e13_kv).expect("recover");
    let secs = t0.elapsed().as_secs_f64();
    (secs, snap_secs, checksum(&mut r) == reference)
}

/// E13 cluster leg: populate a `partitions`-way durable cluster with
/// `count_events` traffic, crash it, and time `Cluster::recover` with
/// the partition loop forced serial or left parallel (the default).
/// Returns (recovery wall seconds, recovered state matches).
pub fn exp_e13_cluster_recovery(
    dir: &std::path::Path,
    partitions: usize,
    events: usize,
    serial: bool,
) -> (f64, bool) {
    use sstore_core::{Cluster, RouteSpec};
    let builder = SStoreBuilder::new().durability(dir, 8).log_retention(512);
    let deploy = sstore_core::workloads::deploy_count_events;
    let reference = {
        let cluster = Cluster::with_edges(
            partitions,
            RouteSpec::hash(0),
            sstore_core::cluster::DEFAULT_INGEST_QUEUE_DEPTH,
            &builder,
            deploy,
            &[],
        )
        .expect("cluster");
        let rows = sstore_core::workloads::count_events_rows(events, 4096, 97);
        let mut tickets = Vec::new();
        for chunk in rows.chunks(256) {
            tickets.push(
                cluster
                    .submit_batch_async("count_events", chunk.to_vec())
                    .expect("submit"),
            );
        }
        for t in tickets {
            t.wait().expect("ticket");
        }
        cluster.quiesce().expect("quiesce");
        let mut state = cluster.query_all("SELECT * FROM totals", &[]).expect("ref");
        state.sort();
        state
    }; // crash: cluster dropped
    if serial {
        std::env::set_var("SSTORE_RECOVERY", "serial");
    } else {
        std::env::remove_var("SSTORE_RECOVERY");
    }
    let t0 = std::time::Instant::now();
    let cluster = Cluster::recover(
        partitions,
        RouteSpec::hash(0),
        sstore_core::cluster::DEFAULT_INGEST_QUEUE_DEPTH,
        &builder,
        deploy,
        &[],
    )
    .expect("recover");
    let secs = t0.elapsed().as_secs_f64();
    std::env::remove_var("SSTORE_RECOVERY");
    let mut state = cluster
        .query_all("SELECT * FROM totals", &[])
        .expect("state");
    state.sort();
    (secs, state == reference)
}

/// E13 mixed-traffic 2PC leg: multi-partition `count_events` batches
/// (each a global transaction under 2PC) from one thread, with a second
/// thread pumping disjoint single-partition `side` batches into the same
/// cluster. Side ingests that land while a participant is blocked
/// between its prepare vote and the coordinator's decision are executed
/// speculatively when speculation is on (the default) and deferred to
/// after the decision when it is off (`SSTORE_SPECULATION=off`).
///
/// Returns (wall seconds, speculative TEs executed, coordinator stats).
pub fn exp_e13_mixed_2pc(
    partitions: usize,
    events: usize,
    batch: usize,
    speculate: bool,
) -> (f64, u64, sstore_core::CoordStats) {
    use sstore_core::Cluster;
    if speculate {
        std::env::remove_var("SSTORE_SPECULATION");
    } else {
        std::env::set_var("SSTORE_SPECULATION", "off");
    }
    let deploy = |db: &mut SStore| -> sstore_core::common::Result<()> {
        sstore_core::workloads::deploy_count_events_multi(db)?;
        db.ddl("CREATE STREAM side_in (k INT, v INT)")?;
        db.ddl("CREATE TABLE side_totals (k INT NOT NULL, n INT NOT NULL, PRIMARY KEY (k))")?;
        db.register(
            sstore_core::ProcSpec::new("side", |ctx| {
                for row in ctx.input().rows.clone() {
                    let k = row[0].clone();
                    let seen = ctx.exec("get", std::slice::from_ref(&k))?;
                    if seen.rows.is_empty() {
                        ctx.exec("init", &[k])?;
                    } else {
                        ctx.exec("bump", &[k])?;
                    }
                }
                Ok(())
            })
            .consumes("side_in")
            .stmt("get", "SELECT k FROM side_totals WHERE k = ?")
            .stmt("init", "INSERT INTO side_totals VALUES (?, 1)")
            .stmt("bump", "UPDATE side_totals SET n = n + 1 WHERE k = ?"),
        )?;
        Ok(())
    };
    let cluster = Cluster::new(partitions, &SStoreBuilder::new(), deploy).expect("cluster");
    let global_rows = e11_rows(events);
    let side_rows = e13_rows(0..events);
    let t0 = std::time::Instant::now();
    std::thread::scope(|s| {
        let c = &cluster;
        let atomic = s.spawn(move || {
            let mut tickets = Vec::new();
            for chunk in global_rows.chunks(batch.max(1)) {
                tickets.push(
                    c.submit_batch_atomic("count_events", chunk.to_vec())
                        .expect("atomic"),
                );
            }
            for t in tickets {
                t.wait().expect("atomic ticket");
            }
        });
        let mut tickets = Vec::new();
        for chunk in side_rows.chunks(batch.max(1)) {
            tickets.push(
                cluster
                    .submit_batch_async("side", chunk.to_vec())
                    .expect("side"),
            );
        }
        for t in tickets {
            t.wait().expect("side ticket");
        }
        atomic.join().expect("atomic thread");
    });
    let secs = t0.elapsed().as_secs_f64();
    std::env::remove_var("SSTORE_SPECULATION");
    let m = cluster.metrics();
    let spec: u64 = m.partitions.iter().map(|p| p.speculative_tes).sum();
    (secs, spec, m.coordinator)
}

// ---- E14: open-loop overload and admission control -------------------------

/// One open-loop overload leg's results (E14).
pub struct E14Leg {
    /// Batches/sec the load generator offered.
    pub offered_per_s: f64,
    /// Batches/sec admission control accepted.
    pub admitted_per_s: f64,
    /// Batches the cluster committed.
    pub committed: u64,
    /// Submissions refused by admission control (from `ClusterMetrics`).
    pub sheds: u64,
    /// Submission attempts.
    pub attempts: u64,
    /// Median submit→commit latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile submit→commit latency, milliseconds.
    pub p95_ms: f64,
    /// Wall time of the leg.
    pub secs: f64,
}

fn e14_cluster(partitions: usize, depth: usize, ee_latency_us: u64) -> sstore_core::Cluster {
    sstore_core::Cluster::with_config(
        partitions,
        sstore_core::RouteSpec::hash(0),
        depth,
        &SStoreBuilder::new().ee_trip_latency(ee_latency_us),
        sstore_core::workloads::deploy_count_events,
    )
    .expect("cluster")
}

/// Closed-loop capacity probe: pipelined blocking submissions for
/// roughly `secs`, returning sustained batches/sec. Blocking
/// `submit_batch_async` applies backpressure at full queues, so this
/// measures the cluster's own pace — the open-loop legs are then offered
/// fractions/multiples of it.
pub fn exp_e14_capacity(
    partitions: usize,
    depth: usize,
    ee_latency_us: u64,
    batch: usize,
    secs: f64,
) -> f64 {
    let cluster = e14_cluster(partitions, depth, ee_latency_us);
    let rows = count_events_rows(batch);
    let mut outstanding = std::collections::VecDeque::new();
    let t0 = std::time::Instant::now();
    let mut done = 0u64;
    while t0.elapsed().as_secs_f64() < secs {
        outstanding.push_back(
            cluster
                .submit_batch_async("count_events", rows.clone())
                .expect("submit"),
        );
        if outstanding.len() >= depth.max(2) {
            outstanding.pop_front().unwrap().wait().expect("wait");
            done += 1;
        }
    }
    for t in outstanding {
        t.wait().expect("wait");
        done += 1;
    }
    done as f64 / t0.elapsed().as_secs_f64()
}

/// One paced open-loop leg (E14): offer `rate` batches/sec for `secs`
/// via the non-blocking admission-control path
/// (`Cluster::try_submit_batch_async`). Refused submissions are dropped,
/// not retried — open-loop clients do not stall with the server — so
/// offered and admitted throughput diverge once the queues fill. A
/// waiter thread records submit→commit latency for admitted batches;
/// shedding keeps the queues (and therefore p50/p95) bounded no matter
/// how far the offered rate exceeds capacity.
pub fn exp_e14_open_loop(
    partitions: usize,
    depth: usize,
    ee_latency_us: u64,
    batch: usize,
    rate: f64,
    secs: f64,
) -> E14Leg {
    let cluster = e14_cluster(partitions, depth, ee_latency_us);
    let rows = count_events_rows(batch);
    let (tx, rx) = std::sync::mpsc::channel::<(std::time::Instant, sstore_core::Ticket)>();
    let (attempts, admitted, lat, committed, wall) = std::thread::scope(|s| {
        let waiter = s.spawn(move || {
            let mut lat: Vec<f64> = Vec::new();
            let mut committed = 0u64;
            for (sent, ticket) in rx {
                if ticket.wait().is_ok() {
                    committed += 1;
                    lat.push(sent.elapsed().as_secs_f64() * 1e3);
                }
            }
            lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
            (lat, committed)
        });
        let t0 = std::time::Instant::now();
        let mut attempts = 0u64;
        let mut admitted = 0u64;
        loop {
            let elapsed = t0.elapsed().as_secs_f64();
            if elapsed >= secs {
                break;
            }
            // Open-loop pacing: submissions fall due on the offered
            // schedule regardless of how the cluster is keeping up.
            let due = (rate * elapsed) as u64;
            while attempts < due {
                attempts += 1;
                match cluster.try_submit_batch_async("count_events", rows.clone()) {
                    Ok(ticket) => {
                        admitted += 1;
                        tx.send((std::time::Instant::now(), ticket))
                            .expect("waiter alive");
                    }
                    // Shed: the batch is dropped on the floor, exactly
                    // what an overloaded open-loop source experiences.
                    Err(e) if e.kind() == "overloaded" => {}
                    Err(e) => panic!("unexpected submit error: {e}"),
                }
            }
            std::thread::sleep(std::time::Duration::from_micros(500));
        }
        drop(tx);
        let (lat, committed) = waiter.join().expect("waiter");
        (
            attempts,
            admitted,
            lat,
            committed,
            t0.elapsed().as_secs_f64(),
        )
    });
    let sheds = cluster.metrics().sheds;
    assert_eq!(
        sheds,
        attempts - admitted,
        "every refused submission must be counted as a shed"
    );
    let pct = |p: f64| -> f64 {
        if lat.is_empty() {
            0.0
        } else {
            lat[((lat.len() - 1) as f64 * p) as usize]
        }
    };
    E14Leg {
        offered_per_s: attempts as f64 / wall,
        admitted_per_s: admitted as f64 / wall,
        committed,
        sheds,
        attempts,
        p50_ms: pct(0.50),
        p95_ms: pct(0.95),
        secs: wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The binary log writes a fraction of the JSON byte volume for the
    /// same records at the same fsync count (E4's write-amplification
    /// claim, pinned as a regression test).
    #[test]
    fn binary_log_halves_write_volume() {
        let jdir = scratch_dir("bytes-json");
        let bdir = scratch_dir("bytes-bin");
        let (json_bytes, json_syncs) = exp_e4_log_append(&jdir, 50, 64, 8, DurabilityFormat::Json);
        let (bin_bytes, bin_syncs) = exp_e4_log_append(&bdir, 50, 64, 8, DurabilityFormat::Binary);
        std::fs::remove_dir_all(jdir).ok();
        std::fs::remove_dir_all(bdir).ok();
        assert_eq!(json_syncs, bin_syncs, "fsync schedule must match");
        assert!(
            bin_bytes * 2 < json_bytes,
            "binary {bin_bytes}B not < half of JSON {json_bytes}B"
        );
        println!("log bytes for 50x64-row records: json={json_bytes} binary={bin_bytes}");
    }
}
