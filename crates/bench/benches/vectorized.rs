//! E12 — vectorized columnar executor: batch kernels vs the row
//! interpreter over identical queries, plus the incremental window
//! aggregate cache vs per-read rescans.
//!
//! Two outputs:
//!
//! * criterion timings for the headline 64k-row configurations;
//! * a hand-sampled p50/p95 sweep over 4k/64k/256k rows for both
//!   executor paths, written to `target/BENCH_e12.json` (machine
//!   readable; CI uploads it as an artifact).
//!
//! Set `SSTORE_BENCH_SMOKE=1` for a 1-sample smoke run (CI uses this to
//! prove the bench executes, not to measure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sstore_bench::{
    exp_e12_build, exp_e12_join_count, exp_e12_scan_filter_agg, exp_e12_set_path,
    exp_e12_window_build, exp_e12_window_tick, ExecPath,
};
use std::time::{Duration, Instant};

fn smoke() -> bool {
    std::env::var_os("SSTORE_BENCH_SMOKE").is_some()
}

/// Sample `f` `samples` times (after one untimed warmup); return
/// (p50, p95) in microseconds.
fn percentiles(samples: usize, mut f: impl FnMut()) -> (f64, f64) {
    f();
    let mut times: Vec<Duration> = (0..samples.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    times.sort();
    let pick = |q: f64| {
        let ix = ((times.len() - 1) as f64 * q).round() as usize;
        times[ix].as_secs_f64() * 1e6
    };
    (pick(0.50), pick(0.95))
}

struct SweepRow {
    op: &'static str,
    rows: usize,
    path: &'static str,
    p50_us: f64,
    p95_us: f64,
}

fn path_label(path: ExecPath) -> &'static str {
    match path {
        ExecPath::Row => "row",
        ExecPath::Vector => "vector",
    }
}

/// The full sweep: scan+filter+agg and equi-join at each size, window
/// ticks at each window size, for both executor paths.
fn run_sweep(sizes: &[usize], window_sizes: &[usize], samples: usize) -> Vec<SweepRow> {
    let mut out = Vec::new();
    for &n in sizes {
        let mut db = exp_e12_build(n);
        for path in [ExecPath::Row, ExecPath::Vector] {
            exp_e12_set_path(&mut db, path);
            // The row-path nested-loop join is O(events × dims); cap its
            // sample count (~100ns per pair visit) so the sweep stays
            // tractable at 256k rows.
            let join_samples = if path == ExecPath::Row {
                samples.min((200_000_000 / (n * sstore_bench::E12_DIMS).max(1)).max(2))
            } else {
                samples
            };
            let (p50, p95) = percentiles(samples, || {
                std::hint::black_box(exp_e12_scan_filter_agg(&mut db));
            });
            out.push(SweepRow {
                op: "scan_filter_agg",
                rows: n,
                path: path_label(path),
                p50_us: p50,
                p95_us: p95,
            });
            let (p50, p95) = percentiles(join_samples, || {
                std::hint::black_box(exp_e12_join_count(&mut db));
            });
            out.push(SweepRow {
                op: "hash_join",
                rows: n,
                path: path_label(path),
                p50_us: p50,
                p95_us: p95,
            });
        }
    }
    let ticks = samples.max(2) * 4;
    for &size in window_sizes {
        for path in [ExecPath::Row, ExecPath::Vector] {
            let mut wdb = exp_e12_window_build(size);
            exp_e12_set_path(&mut wdb, path);
            let mut i = 0i64;
            let (p50, p95) = percentiles(ticks, || {
                i += 1;
                std::hint::black_box(exp_e12_window_tick(&mut wdb, i));
            });
            out.push(SweepRow {
                op: "window_tick",
                rows: size,
                path: path_label(path),
                p50_us: p50,
                p95_us: p95,
            });
        }
    }
    out
}

/// Write the sweep as a machine-readable artifact under `target/`.
fn write_artifact(rows: &[SweepRow]) {
    let mut json = String::from(
        "{\n  \"experiment\": \"e12_vectorized\",\n  \"unit\": \"us\",\n  \"results\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"op\": \"{}\", \"rows\": {}, \"path\": \"{}\", \"p50_us\": {:.1}, \"p95_us\": {:.1}}}{}\n",
            r.op,
            r.rows,
            r.path,
            r.p50_us,
            r.p95_us,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target")
        .join("BENCH_e12.json");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

fn vectorized(c: &mut Criterion) {
    // The sweep (and its JSON artifact) runs first; criterion then times
    // the headline size with its own statistics.
    let (sizes, window_sizes, samples): (&[usize], &[usize], usize) = if smoke() {
        (&[2_000], &[2_000], 2)
    } else {
        (&[4_000, 64_000, 256_000], &[4_000, 16_000, 64_000], 20)
    };
    let sweep = run_sweep(sizes, window_sizes, samples);
    println!("\n  op              |    rows | path   |   p50 us |   p95 us");
    for r in &sweep {
        println!(
            "  {:<15} | {:>7} | {:<6} | {:>8.1} | {:>8.1}",
            r.op, r.rows, r.path, r.p50_us, r.p95_us
        );
    }
    write_artifact(&sweep);

    let n = if smoke() { 2_000 } else { 64_000 };
    let mut g = c.benchmark_group("e12_vectorized");
    g.sample_size(if smoke() { 2 } else { 10 });
    g.throughput(Throughput::Elements(n as u64));
    let mut db = exp_e12_build(n);
    for path in [ExecPath::Row, ExecPath::Vector] {
        exp_e12_set_path(&mut db, path);
        g.bench_function(
            BenchmarkId::new(format!("scan_filter_agg_{}", path_label(path)), n),
            |b| b.iter(|| exp_e12_scan_filter_agg(&mut db)),
        );
        g.bench_function(
            BenchmarkId::new(format!("join_{}", path_label(path)), n),
            |b| b.iter(|| exp_e12_join_count(&mut db)),
        );
    }
    g.finish();
}

criterion_group!(benches, vectorized);
criterion_main!(benches);
