//! E3b — PE↔EE round trips: native windows + EE triggers vs SQL-emulated
//! windows, with simulated per-statement dispatch cost swept over
//! {0, 20} µs. The paper's claim: "a reduction of PE-to-EE round trips due
//! to native support for windowing".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sstore_bench::run_voter;
use sstore_voter::WindowImpl;

const VOTES: usize = 500;

fn window_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3b_windowing");
    g.sample_size(10);
    g.throughput(Throughput::Elements(VOTES as u64));

    for cost_us in [0u64, 20] {
        g.bench_function(BenchmarkId::new("native_window", cost_us), |b| {
            b.iter(|| run_voter(true, WindowImpl::Native, VOTES, 1, 0, 0, cost_us))
        });
        g.bench_function(BenchmarkId::new("emulated_window", cost_us), |b| {
            b.iter(|| run_voter(true, WindowImpl::Emulated, VOTES, 1, 0, 0, cost_us))
        });
    }
    g.finish();
}

criterion_group!(benches, window_bench);
criterion_main!(benches);
