//! E8 (ablation) — the batch as the unit of transaction execution: voter
//! throughput vs border batch size. Small batches pay scheduling overhead
//! per tuple; large batches amortize it but defer eliminations (latency).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sstore_bench::run_voter;
use sstore_voter::WindowImpl;

const VOTES: usize = 2_000;

fn batch_size_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_batch_size");
    g.sample_size(10);
    g.throughput(Throughput::Elements(VOTES as u64));

    for batch in [1usize, 4, 16, 64, 256, 1024] {
        g.bench_function(BenchmarkId::new("sstore", batch), |b| {
            b.iter(|| run_voter(true, WindowImpl::Native, VOTES, batch, 0, 0, 0))
        });
    }
    g.finish();
}

criterion_group!(benches, batch_size_sweep);
criterion_main!(benches);
