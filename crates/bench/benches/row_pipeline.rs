//! E10 — zero-copy row pipeline: per-row handling cost through the SQL
//! executor (scan/filter, join/aggregate), window-slide maintenance, and
//! batch hand-off into procedure contexts.
//!
//! Set `SSTORE_BENCH_SMOKE=1` for a 1-sample smoke run (CI uses this to
//! prove the bench executes, not to measure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sstore_bench::{
    exp_e10_batch_handoff, exp_e10_build, exp_e10_handoff_build, exp_e10_join_agg,
    exp_e10_scan_filter, exp_e10_window_slide,
};

fn smoke() -> bool {
    std::env::var_os("SSTORE_BENCH_SMOKE").is_some()
}

fn row_pipeline(c: &mut Criterion) {
    let n = if smoke() { 10_000 } else { 100_000 };
    let mut g = c.benchmark_group("e10_row_pipeline");
    g.sample_size(if smoke() { 2 } else { 10 });
    g.throughput(Throughput::Elements(n as u64));

    let mut db = exp_e10_build(n);
    g.bench_function(BenchmarkId::new("scan_filter", n), |b| {
        b.iter(|| exp_e10_scan_filter(&mut db))
    });
    g.bench_function(BenchmarkId::new("join_agg", n), |b| {
        b.iter(|| exp_e10_join_agg(&mut db))
    });

    let slide_n = if smoke() { 4_000 } else { 20_000 };
    g.bench_function(BenchmarkId::new("window_slide", slide_n), |b| {
        b.iter(|| exp_e10_window_slide(slide_n))
    });

    let handoff = if smoke() { 4_000 } else { 20_000 };
    let (mut hdb, hrows) = exp_e10_handoff_build(handoff);
    g.bench_function(BenchmarkId::new("batch_handoff", handoff), |b| {
        b.iter(|| exp_e10_batch_handoff(&mut hdb, &hrows, 250))
    });
    g.finish();
}

criterion_group!(benches, row_pipeline);
criterion_main!(benches);
