//! E3a — client↔PE round trips: push-based PE triggers vs client-driven
//! polling, with simulated per-trip network cost swept over
//! {0, 50, 200} µs. The paper's claim: "a reduction of Client-to-PE round
//! trips due to push-based workflow processing".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sstore_bench::run_voter;
use sstore_voter::WindowImpl;

const VOTES: usize = 500;

fn trigger_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3a_pe_triggers");
    g.sample_size(10);
    g.throughput(Throughput::Elements(VOTES as u64));

    for cost_us in [0u64, 50, 200] {
        g.bench_function(BenchmarkId::new("push", cost_us), |b| {
            b.iter(|| run_voter(true, WindowImpl::Native, VOTES, 1, 0, cost_us, 0))
        });
        g.bench_function(BenchmarkId::new("poll", cost_us), |b| {
            b.iter(|| run_voter(false, WindowImpl::Native, VOTES, 1, 8, cost_us, 0))
        });
    }
    g.finish();
}

criterion_group!(benches, trigger_ablation);
criterion_main!(benches);
