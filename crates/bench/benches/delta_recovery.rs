//! E13 — incremental delta snapshots, partition-parallel recovery, and
//! 2PC fast paths.
//!
//! Four legs, one JSON artifact (`target/BENCH_e13.json`):
//!
//! * **snapshot_write** — retention-snapshot wall time vs live rows, for
//!   the delta-chain policy (O(hot set) per image) against forced full
//!   images (O(live rows) per image). The hot set is fixed while live
//!   rows grow 10×, so delta cost should stay roughly flat while full
//!   cost grows linearly.
//! * **recovery** — single-partition recovery wall time over the same
//!   directories (base + delta chain vs full image). Recovery
//!   materializes every live row either way, so both curves track the
//!   live-row count; the leg proves the chain adds no replay penalty.
//! * **cluster_recovery** — `Cluster::recover` wall time at 1/2/4
//!   partitions, serial (`SSTORE_RECOVERY=serial`) vs the default
//!   partition-parallel loop.
//! * **mixed_2pc** — multi-partition atomic batches interleaved with
//!   disjoint single-partition traffic, speculation off vs on: prepared
//!   participants executing queued non-conflicting work during the
//!   prepare→decide stall.
//!
//! Set `SSTORE_BENCH_SMOKE=1` for a tiny smoke run (CI uses this to
//! prove the bench executes, not to measure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sstore_bench::{exp_e13_cluster_recovery, exp_e13_mixed_2pc, exp_e13_recovery, scratch_dir};
use sstore_common::obs;
use std::collections::BTreeMap;

fn smoke() -> bool {
    std::env::var_os("SSTORE_BENCH_SMOKE").is_some()
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

struct E13Row {
    leg: &'static str,
    config: String,
    rows: usize,
    secs: f64,
    extra: String,
}

/// Legs 1+2: one populate+crash+recover run per (live_rows, policy);
/// snapshot-write cost and recovery wall both fall out of it.
fn sweep_snapshots(sizes: &[usize], hot_keys: usize, rounds: usize) -> Vec<E13Row> {
    let mut out = Vec::new();
    for &n in sizes {
        for delta in [false, true] {
            let dir = scratch_dir(&format!("e13-snap-{n}-{delta}"));
            let (rec_secs, snap_secs, ok) = exp_e13_recovery(&dir, n, hot_keys, rounds, delta);
            assert!(ok, "recovered state diverged (rows={n} delta={delta})");
            let policy = if delta { "delta" } else { "full" };
            out.push(E13Row {
                leg: "snapshot_write",
                config: policy.into(),
                rows: n,
                secs: median(snap_secs),
                extra: format!("\"hot_keys\": {hot_keys}, \"rounds\": {rounds}"),
            });
            out.push(E13Row {
                leg: "recovery",
                config: policy.into(),
                rows: n,
                secs: rec_secs,
                extra: format!("\"hot_keys\": {hot_keys}, \"rounds\": {rounds}"),
            });
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    out
}

/// Leg 3: serial vs parallel cluster recovery at growing partition counts.
fn sweep_cluster(partition_counts: &[usize], events: usize) -> Vec<E13Row> {
    let mut out = Vec::new();
    for &n in partition_counts {
        for serial in [true, false] {
            let dir = scratch_dir(&format!("e13-cluster-{n}-{serial}"));
            let (secs, ok) = exp_e13_cluster_recovery(&dir, n, events, serial);
            assert!(
                ok,
                "cluster recovery diverged (partitions={n} serial={serial})"
            );
            out.push(E13Row {
                leg: "cluster_recovery",
                config: (if serial { "serial" } else { "parallel" }).into(),
                rows: events,
                secs,
                extra: format!("\"partitions\": {n}"),
            });
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    out
}

/// Leg 4: 2PC mixed traffic with speculation off vs on.
fn sweep_2pc(partitions: usize, events: usize, batch: usize) -> Vec<E13Row> {
    let mut out = Vec::new();
    for speculate in [false, true] {
        let (secs, spec_tes, coord) = exp_e13_mixed_2pc(partitions, events, batch, speculate);
        let te_count = (events / batch.max(1)) as f64 * partitions as f64;
        out.push(E13Row {
            leg: "mixed_2pc",
            config: (if speculate { "speculate" } else { "stall" }).into(),
            rows: events,
            secs,
            extra: format!(
                "\"partitions\": {partitions}, \"batch\": {batch}, \
                 \"per_te_us\": {:.2}, \"speculative_tes\": {spec_tes}, \
                 \"twopc\": {}, \"fast_path\": {}",
                secs * 1e6 / te_count.max(1.0),
                coord.multi_partition_txns,
                coord.single_partition_fast_path,
            ),
        });
    }
    out
}

fn write_artifact(rows: &[E13Row]) {
    let mut json = String::from("{\n  \"experiment\": \"e13_delta_recovery\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"leg\": \"{}\", \"config\": \"{}\", \"rows\": {}, \"secs\": {:.6}, {}}}{}\n",
            r.leg,
            r.config,
            r.rows,
            r.secs,
            r.extra,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    // Recovery phase breakdown (base-image read, delta-chain apply, log
    // replay, partition-parallel join) from the obs phase timers — every
    // recovery the sweeps ran in this process contributes.
    let phases: BTreeMap<String, _> = obs::registry_snapshot()
        .histograms
        .into_iter()
        .filter(|(name, _)| name.starts_with("recovery."))
        .map(|(name, h)| (name, h.report()))
        .collect();
    json.push_str("  ],\n  \"recovery_phases\": {\n");
    let n = phases.len();
    for (i, (name, r)) in phases.into_iter().enumerate() {
        json.push_str(&format!(
            "    \"{name}\": {{\"count\": {}, \"mean_us\": {:.1}, \"p95_us\": {:.1}, \
             \"max_us\": {:.1}}}{}\n",
            r.count,
            r.mean_us,
            r.p95_us,
            r.max_us,
            if i + 1 < n { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target")
        .join("BENCH_e13.json");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

fn delta_recovery(c: &mut Criterion) {
    let (sizes, hot, rounds, cluster_events, parts, mixed_events, batch): (
        &[usize],
        usize,
        usize,
        usize,
        &[usize],
        usize,
        usize,
    ) = if smoke() {
        (&[2_000], 200, 3, 2_000, &[1, 2], 1_000, 100)
    } else {
        (
            &[20_000, 60_000, 200_000],
            2_000,
            5,
            60_000,
            &[1, 2, 4],
            40_000,
            200,
        )
    };

    let mut rows = sweep_snapshots(sizes, hot, rounds);
    rows.extend(sweep_cluster(parts, cluster_events));
    rows.extend(sweep_2pc(*parts.last().unwrap(), mixed_events, batch));

    println!("\n  leg              | config    |    rows |     secs | extra");
    for r in &rows {
        println!(
            "  {:<16} | {:<9} | {:>7} | {:>8.4} | {}",
            r.leg, r.config, r.rows, r.secs, r.extra
        );
    }
    write_artifact(&rows);

    // Criterion headline: one mid-size snapshot-write cycle per policy.
    let n = if smoke() { 2_000 } else { 60_000 };
    let mut g = c.benchmark_group("e13_delta_recovery");
    g.sample_size(if smoke() { 2 } else { 10 });
    for delta in [false, true] {
        g.bench_function(
            BenchmarkId::new(
                if delta {
                    "recover_delta"
                } else {
                    "recover_full"
                },
                n,
            ),
            |b| {
                b.iter(|| {
                    let dir = scratch_dir("e13-crit");
                    let out =
                        exp_e13_recovery(&dir, n, if smoke() { 200 } else { 2_000 }, 2, delta);
                    let _ = std::fs::remove_dir_all(&dir);
                    out.0
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, delta_recovery);
criterion_main!(benches);
