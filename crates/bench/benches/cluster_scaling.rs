//! E9 — shared-nothing cluster scaling: the partitionable `count_events`
//! workload at 1/2/4 partitions, blocking (`sync`) vs ticketed (`async`)
//! ingest. Each partition worker runs the paper's single-sited serial
//! discipline; the runtime adds routed parallelism and PE-boundary batch
//! coalescing on top.
//!
//! Set `SSTORE_BENCH_SMOKE=1` for a 1-sample smoke run (CI uses this to
//! prove the bench executes, not to measure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sstore_bench::{exp_e9_reference, exp_e9_run};
use sstore_common::obs;
use std::time::Instant;

const BATCH: usize = 250;
/// Sleep per PE→EE statement dispatch, modelling the round-trip latency
/// of a remote EE. Blocked time overlaps across partition workers, so
/// the cluster scales even when the host has fewer cores than partitions
/// (as in `examples/cluster_scaling.rs`).
const EE_LATENCY_US: u64 = 50;

fn smoke() -> bool {
    std::env::var_os("SSTORE_BENCH_SMOKE").is_some()
}

fn cluster_scaling(c: &mut Criterion) {
    let events = if smoke() { 200 } else { 1_500 };
    let mut g = c.benchmark_group("e9_cluster_scaling");
    g.sample_size(if smoke() { 2 } else { 5 });
    g.throughput(Throughput::Elements(events as u64));

    // Determinism gate before measuring anything: the partitioned async
    // run must byte-for-byte match the single-partition reference state.
    let reference = exp_e9_reference(events, BATCH, EE_LATENCY_US);
    let (_, partitioned) = exp_e9_run(4, events, BATCH, true, EE_LATENCY_US);
    assert_eq!(
        partitioned, reference,
        "4-partition async state diverged from the single-partition reference"
    );

    // Dataflow-tracing overhead A/B: the same 4-partition async run with
    // stage tracing forced on vs off, interleaved so thermal/scheduler
    // drift cancels. O(1) relaxed-atomic recording must stay in the
    // noise next to real work.
    let pairs = if smoke() { 1 } else { 3 };
    let (mut with_trace, mut without_trace) = (Vec::new(), Vec::new());
    for _ in 0..pairs {
        obs::set_enabled(true);
        let t = Instant::now();
        exp_e9_run(4, events, BATCH, true, EE_LATENCY_US);
        with_trace.push(t.elapsed().as_secs_f64());
        obs::set_enabled(false);
        let t = Instant::now();
        exp_e9_run(4, events, BATCH, true, EE_LATENCY_US);
        without_trace.push(t.elapsed().as_secs_f64());
    }
    obs::set_enabled(true);
    let best = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
    let overhead_pct = (best(&with_trace) / best(&without_trace) - 1.0) * 100.0;
    println!(
        "tracing overhead: {overhead_pct:+.2}% (on {:.4}s vs off {:.4}s, best of {pairs})",
        best(&with_trace),
        best(&without_trace)
    );
    if !smoke() {
        assert!(
            overhead_pct <= 3.0,
            "dataflow tracing overhead {overhead_pct:.2}% exceeds the 3% budget"
        );
    }

    for n in [1usize, 2, 4] {
        g.bench_function(BenchmarkId::new(format!("sync/{n}p"), events), |b| {
            b.iter(|| exp_e9_run(n, events, BATCH, false, EE_LATENCY_US))
        });
        g.bench_function(BenchmarkId::new(format!("async/{n}p"), events), |b| {
            b.iter(|| exp_e9_run(n, events, BATCH, true, EE_LATENCY_US))
        });
    }
    g.finish();
}

criterion_group!(benches, cluster_scaling);
criterion_main!(benches);
