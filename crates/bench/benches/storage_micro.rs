//! Substrate microbenchmarks: the storage/EE primitives everything else
//! sits on (insert, PK lookup, secondary-index lookup, window insert with
//! maintenance, stream GC). Includes the E7 GC ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sstore_common::{BatchId, Column, DataType, Schema, Value};
use sstore_engine::{ExecutionEngine, TxnScratch};
use sstore_storage::catalog::{WindowKind, WindowSpec};
use sstore_storage::{Database, IndexDef, Table, UndoLog};

fn table_ops(c: &mut Criterion) {
    let schema = || {
        Schema::new(
            vec![
                Column::new("id", DataType::Int),
                Column::new("v", DataType::Int),
            ],
            &["id"],
        )
        .unwrap()
    };
    let mut g = c.benchmark_group("storage_table");
    g.throughput(Throughput::Elements(1));

    g.bench_function("insert", |b| {
        let mut t = Table::new("t", schema());
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            t.insert(vec![Value::Int(i), Value::Int(i)]).unwrap()
        });
    });

    g.bench_function("pk_lookup", |b| {
        let mut t = Table::new("t", schema());
        for i in 0..100_000i64 {
            t.insert(vec![Value::Int(i), Value::Int(i)]).unwrap();
        }
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 7919) % 100_000;
            t.pk_lookup(&[Value::Int(i)]).unwrap()
        });
    });

    g.bench_function("secondary_lookup", |b| {
        let mut t = Table::new("t", schema());
        t.create_index(IndexDef {
            name: "by_v".into(),
            key_cols: vec![1],
            unique: false,
            ordered: false,
        })
        .unwrap();
        for i in 0..100_000i64 {
            t.insert(vec![Value::Int(i), Value::Int(i % 1000)]).unwrap();
        }
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 31) % 1000;
            t.index_lookup("by_v", &[Value::Int(i)]).unwrap()
        });
    });
    g.finish();
}

fn window_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("ee_window");
    g.throughput(Throughput::Elements(1));

    for (name, size, slide) in [("w100s1", 100u64, 1u64), ("w1000s10", 1000, 10)] {
        g.bench_function(BenchmarkId::new("insert", name), |b| {
            let mut db = Database::new();
            let schema = Schema::keyless(vec![Column::new("v", DataType::Int)]).unwrap();
            let w = db
                .create_window(
                    "w",
                    schema,
                    WindowSpec {
                        kind: WindowKind::Tuple { size, slide },
                        owner: None,
                    },
                )
                .unwrap();
            let mut i = 0i64;
            b.iter(|| {
                i += 1;
                let mut undo = UndoLog::new();
                let r = sstore_engine::windows::insert_into_window(
                    &mut db,
                    &mut undo,
                    w,
                    vec![Value::Int(i)],
                    i,
                )
                .unwrap();
                undo.commit();
                r
            });
        });
    }
    g.finish();
}

/// E7 — GC keeps memory bounded on unbounded input.
fn gc_bound(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_gc");
    g.sample_size(10);
    for n in [10_000usize, 50_000] {
        g.bench_function(BenchmarkId::new("stream_ingest_gc", n), |b| {
            b.iter(|| {
                let mut e = ExecutionEngine::new();
                e.ddl_sql("CREATE STREAM s (v INT)").unwrap();
                let s = e.db().resolve("s").unwrap();
                for i in 0..n {
                    let mut sc = TxnScratch::new(None, BatchId::new(i as u64));
                    e.execute_sql(
                        "INSERT INTO s (v) VALUES (?)",
                        &[Value::Int(i as i64)],
                        &mut sc,
                        0,
                    )
                    .unwrap();
                    sc.undo.commit();
                    e.gc_stream(s, BatchId::new(i as u64)).unwrap();
                }
                e.db().approx_bytes()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, table_ops, window_ops, gc_bound);
criterion_main!(benches);
