//! E2 — §3.1 throughput claim: S-Store vs H-Store on the full
//! Voter-with-Leaderboard workflow ("displaying the number of transactions
//! per second that each is processing").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sstore_bench::run_voter;
use sstore_voter::WindowImpl;

const VOTES: usize = 2_000;

fn voter_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_voter_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(VOTES as u64));

    g.bench_function(BenchmarkId::new("sstore_push", VOTES), |b| {
        b.iter(|| run_voter(true, WindowImpl::Native, VOTES, 1, 0, 0, 0))
    });
    g.bench_function(BenchmarkId::new("hstore_poll", VOTES), |b| {
        b.iter(|| run_voter(false, WindowImpl::Emulated, VOTES, 1, 8, 0, 0))
    });
    g.finish();
}

criterion_group!(benches, voter_throughput);
criterion_main!(benches);
