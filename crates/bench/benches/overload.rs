//! E14 — open-loop overload and admission control.
//!
//! A closed-loop probe first measures the cluster's sustained capacity
//! (blocking submissions, backpressure at full queues). Three paced
//! open-loop legs then offer 0.5×, 1×, and 2× that rate through the
//! non-blocking admission-control path (`try_submit_batch_async`):
//! refused submissions are dropped, not retried, so offered and admitted
//! throughput diverge once the queues fill, and shedding keeps the
//! submit→commit p50/p95 bounded no matter how far offered load exceeds
//! capacity. One JSON artifact: `target/BENCH_e14.json` (offered vs
//! admitted throughput, shed count, p50/p95 latency per leg).
//!
//! Set `SSTORE_BENCH_SMOKE=1` for a tiny smoke run (CI uses this to
//! prove the bench executes, not to measure).

use criterion::{criterion_group, criterion_main, Criterion};
use sstore_bench::{count_events_rows, exp_e14_capacity, exp_e14_open_loop, E14Leg};
use sstore_common::obs::{self, HistogramSnapshot};

fn smoke() -> bool {
    std::env::var_os("SSTORE_BENCH_SMOKE").is_some()
}

struct E14Row {
    load: String,
    leg: E14Leg,
}

/// Snapshot every dataflow stage histogram (process-wide); two captures
/// bracketing the open-loop legs give the per-stage latency waterfall of
/// exactly the overload traffic via [`HistogramSnapshot::since`].
fn stage_snapshots() -> Vec<HistogramSnapshot> {
    obs::STAGES
        .iter()
        .map(|s| obs::stage_snapshot(*s))
        .collect()
}

fn write_artifact(capacity: f64, rows: &[E14Row], stage_base: &[HistogramSnapshot]) {
    let mut json = format!(
        "{{\n  \"experiment\": \"e14_overload\",\n  \"capacity_batches_per_s\": {capacity:.1},\n  \"rows\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"load\": \"{}\", \"offered_per_s\": {:.1}, \"admitted_per_s\": {:.1}, \
             \"committed\": {}, \"sheds\": {}, \"attempts\": {}, \"p50_ms\": {:.3}, \
             \"p95_ms\": {:.3}, \"secs\": {:.3}}}{}\n",
            r.load,
            r.leg.offered_per_s,
            r.leg.admitted_per_s,
            r.leg.committed,
            r.leg.sheds,
            r.leg.attempts,
            r.leg.p50_ms,
            r.leg.p95_ms,
            r.leg.secs,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"stages\": {\n");
    for (i, (stage, base)) in obs::STAGES.iter().zip(stage_base).enumerate() {
        let r = obs::stage_snapshot(*stage).since(base).report();
        json.push_str(&format!(
            "    \"{}\": {{\"count\": {}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \
             \"p99_us\": {:.1}, \"max_us\": {:.1}}}{}\n",
            stage.name(),
            r.count,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            r.max_us,
            if i + 1 < obs::STAGES.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target")
        .join("BENCH_e14.json");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

fn overload(c: &mut Criterion) {
    let (partitions, depth, ee_latency_us, batch, cap_secs, leg_secs) = if smoke() {
        (2, 16, 20, 16, 0.3, 0.5)
    } else {
        (2, 32, 50, 32, 1.0, 3.0)
    };

    let capacity = exp_e14_capacity(partitions, depth, ee_latency_us, batch, cap_secs);
    println!("measured capacity: {capacity:.1} batches/s");

    // Window the per-stage latency waterfall to the open-loop legs.
    let stage_base = stage_snapshots();
    let mut rows = Vec::new();
    for factor in [0.5, 1.0, 2.0] {
        let leg = exp_e14_open_loop(
            partitions,
            depth,
            ee_latency_us,
            batch,
            capacity * factor,
            leg_secs,
        );
        rows.push(E14Row {
            load: format!("{factor}x"),
            leg,
        });
    }

    println!("\n  load | offered/s | admitted/s | committed |  sheds |  p50 ms |  p95 ms");
    for r in &rows {
        println!(
            "  {:<4} | {:>9.1} | {:>10.1} | {:>9} | {:>6} | {:>7.3} | {:>7.3}",
            r.load,
            r.leg.offered_per_s,
            r.leg.admitted_per_s,
            r.leg.committed,
            r.leg.sheds,
            r.leg.p50_ms,
            r.leg.p95_ms
        );
    }

    // The acceptance claims: at 2× overload the cluster sheds (visible
    // in ClusterMetrics) instead of queueing without bound, and the p95
    // of admitted batches stays bounded by queue depth × service time —
    // 1s is generous by orders of magnitude at these parameters.
    let two_x = &rows.last().expect("three legs").leg;
    assert!(
        two_x.sheds > 0,
        "2x overload must shed (offered {:.1}/s, admitted {:.1}/s)",
        two_x.offered_per_s,
        two_x.admitted_per_s
    );
    assert!(
        two_x.p95_ms < 1_000.0,
        "p95 under 2x overload must stay bounded, got {:.1} ms",
        two_x.p95_ms
    );
    write_artifact(capacity, &rows, &stage_base);

    // Criterion headline: admission-control submit→commit round trip,
    // uncontended (the try-path's bookkeeping overhead, not queueing).
    let cluster = sstore_core::Cluster::with_config(
        1,
        sstore_core::RouteSpec::hash(0),
        depth,
        &sstore_core::SStoreBuilder::new(),
        sstore_core::workloads::deploy_count_events,
    )
    .expect("cluster");
    let rows4 = count_events_rows(4);
    let mut g = c.benchmark_group("e14_overload");
    g.sample_size(if smoke() { 10 } else { 30 });
    g.bench_function("try_submit_commit_roundtrip", |b| {
        b.iter(|| {
            cluster
                .try_submit_batch_async("count_events", rows4.clone())
                .expect("uncontended submit")
                .wait()
                .expect("commit")
        })
    });
    g.finish();
}

criterion_group!(benches, overload);
criterion_main!(benches);
