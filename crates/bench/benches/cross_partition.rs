//! E11 — cross-partition transactions: multi-sited batches under
//! two-phase commit vs the same rows pre-sharded onto the
//! single-partition fast path, plus the cross-partition workflow edge
//! pipeline. The interesting numbers are the 2PC overhead per TE (the
//! price of atomicity across workers) and the fast path staying at PR 2
//! ingest cost.
//!
//! Set `SSTORE_BENCH_SMOKE=1` for a 1-sample smoke run (CI uses this to
//! prove the bench executes, not to measure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sstore_bench::{exp_e11_edges, exp_e11_run};

const BATCH: usize = 64;

fn smoke() -> bool {
    std::env::var_os("SSTORE_BENCH_SMOKE").is_some()
}

fn cross_partition(c: &mut Criterion) {
    let events = if smoke() { 256 } else { 4_096 };
    let mut g = c.benchmark_group("e11_cross_partition");
    g.sample_size(if smoke() { 2 } else { 5 });
    g.throughput(Throughput::Elements(events as u64));

    // Correctness gate before measuring: 2PC must give the same answer as
    // the fast path — atomicity is the product, never a different state.
    let (_, multi_state, stats) = exp_e11_run(2, events, BATCH, true);
    let (_, single_state, _) = exp_e11_run(2, events, BATCH, false);
    assert_eq!(
        multi_state, single_state,
        "multi-sited state diverged from single-sited"
    );
    assert!(
        stats.multi_partition_txns > 0,
        "multi-sited mode never engaged 2PC"
    );

    for n in [2usize, 4] {
        g.bench_function(
            BenchmarkId::new(format!("single_sited/{n}p"), events),
            |b| b.iter(|| exp_e11_run(n, events, BATCH, false)),
        );
        g.bench_function(BenchmarkId::new(format!("multi_sited/{n}p"), events), |b| {
            b.iter(|| exp_e11_run(n, events, BATCH, true))
        });
    }
    g.bench_function(BenchmarkId::new("workflow_edge/2p", events), |b| {
        b.iter(|| exp_e11_edges(2, events, BATCH))
    });
    g.finish();
}

criterion_group!(benches, cross_partition);
criterion_main!(benches);
