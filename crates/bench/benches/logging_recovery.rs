//! E6 — durability costs and recovery: command-logging overhead across
//! group-commit sizes, and recovery wall time (snapshot + replay).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sstore_bench::{exp_e6_recovery, run_durable_voter, run_voter, scratch_dir};
use sstore_voter::WindowImpl;

const VOTES: usize = 500;

fn logging_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_logging");
    g.sample_size(10);
    g.throughput(Throughput::Elements(VOTES as u64));

    g.bench_function("no_logging", |b| {
        b.iter(|| run_voter(true, WindowImpl::Native, VOTES, 1, 0, 0, 0))
    });
    for group in [1usize, 8, 64] {
        g.bench_function(BenchmarkId::new("group_commit", group), |b| {
            b.iter_with_setup(
                || scratch_dir("log"),
                |dir| {
                    let r = run_durable_voter(&dir, VOTES, group);
                    std::fs::remove_dir_all(dir).ok();
                    r
                },
            )
        });
    }
    g.finish();
}

fn recovery_time(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_recovery");
    g.sample_size(10);

    for n in [200usize, 1000] {
        g.bench_function(BenchmarkId::new("replay_votes", n), |b| {
            b.iter_with_setup(
                || scratch_dir("rec"),
                |dir| {
                    let (secs, ok) = exp_e6_recovery(&dir, n);
                    assert!(ok, "recovered state must match");
                    std::fs::remove_dir_all(dir).ok();
                    secs
                },
            )
        });
    }
    g.finish();
}

criterion_group!(benches, logging_overhead, recovery_time);
criterion_main!(benches);
