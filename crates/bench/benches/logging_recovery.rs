//! E4/E6 — durability costs and recovery: command-logging overhead across
//! group-commit sizes and on-disk codecs (legacy JSON lines vs the
//! CRC-framed binary format — both live in the same build, same workload),
//! and recovery wall time (snapshot + replay) for each codec.
//!
//! Set `SSTORE_BENCH_SMOKE=1` for a reduced smoke run (CI uses this to
//! prove the bench executes, not to measure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sstore_bench::{exp_e4_log_append, exp_e6_recovery, run_durable_voter, run_voter, scratch_dir};
use sstore_core::DurabilityFormat;
use sstore_voter::WindowImpl;

fn smoke() -> bool {
    std::env::var_os("SSTORE_BENCH_SMOKE").is_some()
}

fn formats() -> [(&'static str, DurabilityFormat); 2] {
    [
        ("json", DurabilityFormat::Json),
        ("binary", DurabilityFormat::Binary),
    ]
}

fn logging_overhead(c: &mut Criterion) {
    let votes = if smoke() { 100 } else { 500 };
    let mut g = c.benchmark_group("e6_logging");
    g.sample_size(if smoke() { 2 } else { 10 });
    g.throughput(Throughput::Elements(votes as u64));

    g.bench_function("no_logging", |b| {
        b.iter(|| run_voter(true, WindowImpl::Native, votes, 1, 0, 0, 0))
    });
    for (name, format) in formats() {
        for group in [1usize, 8, 64] {
            g.bench_function(
                BenchmarkId::new(format!("{name}/group_commit"), group),
                |b| {
                    b.iter_with_setup(
                        || scratch_dir("log"),
                        |dir| {
                            let r = run_durable_voter(&dir, votes, group, format);
                            std::fs::remove_dir_all(dir).ok();
                            r
                        },
                    )
                },
            );
        }
    }
    g.finish();
}

/// The codec itself, isolated: append throughput through the command log
/// for batch-sized records. fsync count is identical across formats
/// (group commit 64 both), so the delta is pure serialization + write
/// volume — the "logging overhead" the binary codec attacks.
fn log_append(c: &mut Criterion) {
    let records = if smoke() { 50 } else { 400 };
    let rows_per_record = 64usize;
    let mut g = c.benchmark_group("e4_log_append");
    g.sample_size(if smoke() { 2 } else { 10 });
    g.throughput(Throughput::Elements((records * rows_per_record) as u64));
    for (name, format) in formats() {
        g.bench_function(
            BenchmarkId::new(name, format!("{records}x{rows_per_record}")),
            |b| {
                b.iter_with_setup(
                    || scratch_dir("append"),
                    |dir| {
                        let out = exp_e4_log_append(&dir, records, rows_per_record, 64, format);
                        std::fs::remove_dir_all(dir).ok();
                        out
                    },
                )
            },
        );
    }
    g.finish();
}

fn recovery_time(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_recovery");
    g.sample_size(if smoke() { 2 } else { 10 });

    let sizes: &[usize] = if smoke() { &[200] } else { &[200, 1000] };
    for (name, format) in formats() {
        for &n in sizes {
            g.bench_function(BenchmarkId::new(format!("{name}/replay_votes"), n), |b| {
                b.iter_with_setup(
                    || scratch_dir("rec"),
                    |dir| {
                        let (secs, ok) = exp_e6_recovery(&dir, n, format);
                        assert!(ok, "recovered state must match");
                        std::fs::remove_dir_all(dir).ok();
                        secs
                    },
                )
            });
        }
    }
    g.finish();
}

criterion_group!(benches, logging_overhead, log_append, recovery_time);
criterion_main!(benches);
