//! Property tests for the binary command-log codec at the transaction
//! level:
//!
//! 1. `LogRecord` binary round-trip for arbitrary batches (all value
//!    types, empty procs/rows, extreme ids/timestamps);
//! 2. **replay equivalence** — the same committed history written through
//!    the legacy JSON log and through the binary log recovers to
//!    byte-identical database state (including window contents, lifecycle
//!    counters, and index images).

use proptest::prelude::*;
use sstore_common::codec::Reader;
use sstore_common::{BatchId, DurabilityFormat, Result, Row, Value};
use sstore_storage::snapshot::Snapshot;
use sstore_txn::log::LogRecord;
use sstore_txn::recovery::recover;
use sstore_txn::{LogConfig, Partition, PeConfig, ProcSpec};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Timestamp),
        ".{0,12}".prop_map(Value::Text),
        Just(Value::Text(String::new())),
    ]
}

fn arb_rows() -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec(
        prop::collection::vec(arb_value(), 0..5).prop_map(Row::new),
        0..4,
    )
}

fn arb_record() -> impl Strategy<Value = LogRecord> {
    prop_oneof![
        (any::<u64>(), ".{0,10}", arb_rows(), any::<i64>()).prop_map(|(batch, proc, rows, ts)| {
            LogRecord::BorderBatch {
                batch: BatchId::new(batch),
                proc,
                rows,
                ts,
            }
        }),
        (any::<u64>(), ".{0,10}", arb_rows(), any::<i64>()).prop_map(|(batch, proc, rows, ts)| {
            LogRecord::Invocation {
                batch: BatchId::new(batch),
                proc,
                rows,
                ts,
            }
        }),
        any::<u64>().prop_map(|b| LogRecord::Ack {
            batch: BatchId::new(b)
        }),
    ]
}

/// The window+table pipeline from the COW recovery suite: exercises
/// stream appends, window slides (arrival deques), aborts, and SQL
/// updates — everything a log record's replay can touch.
fn deploy(p: &mut Partition) -> Result<()> {
    p.ddl("CREATE STREAM w_in (v INT)")?;
    p.ddl("CREATE WINDOW w (v INT) ROWS 4 SLIDE 2")?;
    p.ddl("CREATE TABLE totals (k INT NOT NULL, n INT NOT NULL, PRIMARY KEY (k))")?;
    p.setup_sql("INSERT INTO totals VALUES (0, 0)", &[])?;
    p.register(
        ProcSpec::new("keeper", |ctx| {
            for row in ctx.input().rows.clone() {
                let v = row[0].as_int()?;
                if v < 0 {
                    ctx.exec("win", &[Value::Int(v)])?;
                    return Err(ctx.abort("negative tuple"));
                }
                ctx.exec("win", &[Value::Int(v)])?;
                ctx.exec("bump", &[Value::Int(v)])?;
            }
            Ok(())
        })
        .consumes("w_in")
        .owns_window("w")
        .stmt("win", "INSERT INTO w VALUES (?)")
        .stmt("bump", "UPDATE totals SET n = n + ? WHERE k = 0"),
    )?;
    Ok(())
}

fn db_json(p: &Partition) -> String {
    let snap = Snapshot::capture(p.engine().db(), None, None, 0);
    serde_json::to_string(&snap.database).expect("serialize")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Binary log records survive a round trip bit-exactly (the `PartialEq`
    /// here compares batch ids, proc names, row cells, and timestamps).
    #[test]
    fn log_record_binary_round_trip(record in arb_record()) {
        let mut buf = Vec::new();
        record.encode_binary(&mut buf);
        let mut r = Reader::new(&buf);
        let back = LogRecord::decode_binary(&mut r).unwrap();
        prop_assert!(r.is_empty(), "trailing bytes after record");
        // NaN payloads: PartialEq on Value uses total ordering, which
        // treats NaN == NaN — exactly what we want here.
        prop_assert_eq!(back, record);
    }

    /// The same committed history, logged once through the legacy JSON
    /// codec and once through the binary codec, recovers to byte-identical
    /// database state.
    #[test]
    fn replay_equivalence_json_vs_binary(
        batches in prop::collection::vec(
            prop::collection::vec(-3i64..40, 1..5), 1..10),
        case in 0u64..1_000_000,
    ) {
        let mut states = Vec::new();
        for (tag, format) in [
            ("json", DurabilityFormat::Json),
            ("bin", DurabilityFormat::Binary),
        ] {
            let dir = std::env::temp_dir().join(format!(
                "sstore-prop-replaycodec-{tag}-{}-{case}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let config = PeConfig {
                log: Some(LogConfig::new(&dir).with_format(format)),
                ..PeConfig::default()
            };
            let live = {
                let mut p = Partition::new(config.clone()).unwrap();
                deploy(&mut p).unwrap();
                for batch in &batches {
                    let rows: Vec<Row> = batch
                        .iter()
                        .map(|v| Row::new(vec![Value::Int(*v)]))
                        .collect();
                    let _ = p.submit_batch("keeper", rows);
                }
                db_json(&p)
            };
            let recovered = recover(config, deploy).unwrap();
            let replayed = db_json(&recovered);
            prop_assert_eq!(
                &replayed, &live,
                "{} recovery diverged from live state", tag
            );
            states.push(live);
            std::fs::remove_dir_all(&dir).ok();
        }
        // Live states agree between runs, and (via the assertions above)
        // both recoveries reproduced them — the codec does not influence
        // execution or replay.
        prop_assert_eq!(&states[0], &states[1]);
    }
}
