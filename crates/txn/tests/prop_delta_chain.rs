//! Property test for incremental delta snapshots: recovering through a
//! base-plus-deltas chain must be indistinguishable from recovering a
//! partition configured to write full images only
//! (`delta_chain_cap = 0`). The workload mixes the state the chain has
//! to carry faithfully:
//!
//! * **window arrivals** — a ROWS 4 SLIDE 2 window with slide eviction
//!   and deliberate aborts, so delta journals include inserts, deletes,
//!   and rollback-restored slots;
//! * **edge high-water marks** — inbound forwards (with deliberate
//!   duplicates) advance the per-(source, stream) dedup watermark;
//! * **unacked outbox envelopes** — outbound cross-edge emissions whose
//!   acks never arrive, which recovery must re-stage exactly once.

use proptest::prelude::*;
use sstore_common::{Result, Row, Value};
use sstore_storage::snapshot::Snapshot;
use sstore_txn::log::LogRetention;
use sstore_txn::recovery::recover;
use sstore_txn::{LogConfig, Partition, PeConfig, ProcSpec};

/// Window pipeline + an outbound cross-edge border proc + an inbound
/// forward consumer. Deterministic, so recovery can redeploy it.
fn deploy(p: &mut Partition) -> Result<()> {
    p.ddl("CREATE STREAM w_in (v INT)")?;
    p.ddl("CREATE WINDOW w (v INT) ROWS 4 SLIDE 2")?;
    p.ddl("CREATE TABLE totals (k INT NOT NULL, n INT NOT NULL, PRIMARY KEY (k))")?;
    p.setup_sql("INSERT INTO totals VALUES (0, 0)", &[])?;
    p.register(
        ProcSpec::new("keeper", |ctx| {
            for row in ctx.input().rows.clone() {
                let v = row[0].as_int()?;
                ctx.exec("win", &[Value::Int(v)])?;
                if v < 0 {
                    return Err(ctx.abort("negative tuple"));
                }
                ctx.exec("bump", &[Value::Int(v)])?;
            }
            Ok(())
        })
        .consumes("w_in")
        .owns_window("w")
        .stmt("win", "INSERT INTO w VALUES (?)")
        .stmt("bump", "UPDATE totals SET n = n + ? WHERE k = 0"),
    )?;

    // Outbound: emissions onto `feed_out` buffer in the outbox.
    p.ddl("CREATE STREAM feed_in (k INT)")?;
    p.ddl("CREATE STREAM feed_out (k INT)")?;
    p.register(
        ProcSpec::new("feed", |ctx| {
            for row in ctx.input().rows.clone() {
                ctx.emit(row)?;
            }
            Ok(())
        })
        .consumes("feed_in")
        .emits("feed_out"),
    )?;
    p.declare_cross_edge("feed_out", 0)?;

    // Inbound: forwards from a fictional partition 1 land on `fwd_in`.
    p.ddl("CREATE STREAM fwd_in (v INT)")?;
    p.ddl("CREATE TABLE fwd_stats (k INT NOT NULL, n INT NOT NULL, PRIMARY KEY (k))")?;
    p.setup_sql("INSERT INTO fwd_stats VALUES (0, 0)", &[])?;
    p.register(
        ProcSpec::new("fwd_count", |ctx| {
            let n = ctx.input().len() as i64;
            ctx.exec("bump", &[Value::Int(n)])?;
            Ok(())
        })
        .consumes("fwd_in")
        .stmt("bump", "UPDATE fwd_stats SET n = n + ? WHERE k = 0"),
    )?;
    Ok(())
}

fn db_json(p: &Partition) -> String {
    let snap = Snapshot::capture(p.engine().db(), None, None, 0);
    serde_json::to_string(&snap.database).expect("serialize")
}

/// One interleaved step of the workload.
#[derive(Debug, Clone)]
enum Op {
    /// Window batch (negatives abort the TE).
    Window(Vec<i64>),
    /// Cross-edge emission; `acked` = the remote ack arrives before the
    /// crash. Unacked envelopes must be re-staged by recovery.
    Feed { keys: Vec<i64>, acked: bool },
    /// Inbound forward with an explicit source batch id; non-monotone
    /// ids exercise the high-water dedup.
    Forward { src_batch: u64, vals: Vec<i64> },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        prop::collection::vec(-3i64..40, 1..5).prop_map(Op::Window),
        (prop::collection::vec(0i64..8, 1..4), any::<bool>())
            .prop_map(|(keys, acked)| Op::Feed { keys, acked }),
        (1u64..6, prop::collection::vec(0i64..50, 1..4))
            .prop_map(|(src_batch, vals)| Op::Forward { src_batch, vals }),
    ]
}

/// Run the workload on a fresh partition over `dir`. Returns the
/// envelopes that were never acked (what recovery must re-stage).
fn run_workload(config: &PeConfig, ops: &[Op]) -> (String, Vec<(String, u64, Vec<Row>)>) {
    let mut p = Partition::new(config.clone()).unwrap();
    deploy(&mut p).unwrap();
    let mut unacked = Vec::new();
    for op in ops {
        match op {
            Op::Window(vals) => {
                let rows: Vec<Row> = vals
                    .iter()
                    .map(|v| Row::new(vec![Value::Int(*v)]))
                    .collect();
                let _ = p.submit_batch("keeper", rows);
            }
            Op::Feed { keys, acked } => {
                let rows: Vec<Row> = keys
                    .iter()
                    .map(|k| Row::new(vec![Value::Int(*k)]))
                    .collect();
                let _ = p.submit_batch("feed", rows);
                for env in p.take_outbox() {
                    if *acked {
                        p.edge_acked(env.batch).unwrap();
                    } else {
                        unacked.push((env.stream, env.batch.raw(), env.rows));
                    }
                }
            }
            Op::Forward { src_batch, vals } => {
                let rows: Vec<Row> = vals
                    .iter()
                    .map(|v| Row::new(vec![Value::Int(*v)]))
                    .collect();
                // Duplicates (id at or below the mark) return Ok(None).
                // Accepting only queues the consumer TEs; run them, as
                // the cluster worker loop would.
                let _ = p.accept_forward("fwd_in", 1, *src_batch, rows);
                let _ = p.run_queued();
            }
        }
    }
    (db_json(&p), unacked)
}

fn staged(p: &mut Partition) -> Vec<(String, u64, Vec<Row>)> {
    let mut v: Vec<_> = p
        .take_outbox()
        .into_iter()
        .map(|e| (e.stream, e.batch.raw(), e.rows))
        .collect();
    v.sort_by_key(|(_, b, _)| *b);
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The same interleaved workload, durably run twice — once with the
    /// default delta-chain policy, once forced to full-image snapshots —
    /// must recover to identical state: database bytes, re-staged
    /// outbox envelopes, and edge dedup watermarks.
    #[test]
    fn delta_chain_recovery_matches_full_snapshot_recovery(
        ops in prop::collection::vec(op_strategy(), 3..20),
        case in 0u64..1_000_000,
    ) {
        let base = std::env::temp_dir().join(format!(
            "sstore-prop-delta-{}-{case}",
            std::process::id()
        ));
        let delta_dir = base.join("delta");
        let full_dir = base.join("full");
        let _ = std::fs::remove_dir_all(&base);

        // Snapshot every 2 commits: plenty of retention points, so the
        // delta run builds real chains (cap 3 forces rewrites too).
        let delta_cfg = PeConfig {
            log: Some(LogConfig::new(&delta_dir).with_delta_chain_cap(3)),
            retention: Some(LogRetention::every_n_commits(2)),
            ..PeConfig::default()
        };
        let full_cfg = PeConfig {
            log: Some(LogConfig::new(&full_dir).with_delta_chain_cap(0)),
            retention: Some(LogRetention::every_n_commits(2)),
            ..PeConfig::default()
        };

        let (live_delta, unacked_delta) = run_workload(&delta_cfg, &ops);
        let (live_full, unacked_full) = run_workload(&full_cfg, &ops);
        // Identical input, identical live state (snapshot policy is
        // invisible to execution).
        prop_assert_eq!(&live_delta, &live_full);
        prop_assert_eq!(&unacked_delta, &unacked_full);

        let mut r_delta = recover(delta_cfg, deploy).unwrap();
        let mut r_full = recover(full_cfg, deploy).unwrap();
        prop_assert_eq!(db_json(&r_delta), live_delta);
        prop_assert_eq!(db_json(&r_full), live_full);

        // Both policies re-stage the same envelope set. (Replay also
        // re-stages acked envelopes whose records GC hasn't retired yet —
        // the receiver's high-water dedupe absorbs those — so the staged
        // set is a superset of the never-acked envelopes, identical
        // across snapshot policies.)
        let staged_delta = staged(&mut r_delta);
        let staged_full = staged(&mut r_full);
        prop_assert_eq!(&staged_delta, &staged_full);
        for env in &unacked_delta {
            prop_assert!(
                staged_delta.contains(env),
                "unacked envelope {env:?} was not re-staged; staged: {staged_delta:?}"
            );
        }

        // Edge high-water marks survived: a replayed duplicate of the
        // highest forward id is dropped by both recovered partitions.
        let max_fwd = ops.iter().filter_map(|op| match op {
            Op::Forward { src_batch, .. } => Some(*src_batch),
            _ => None,
        }).max();
        if let Some(id) = max_fwd {
            let dup = vec![Row::new(vec![Value::Int(1)])];
            prop_assert_eq!(r_delta.accept_forward("fwd_in", 1, id, dup.clone()).unwrap(), None);
            prop_assert_eq!(r_full.accept_forward("fwd_in", 1, id, dup).unwrap(), None);
        }

        // Snapshot policy check on the directories themselves: cap 0
        // must never write a delta file (`snapshot.d<k>.dat`). The delta
        // dir may or may not have chained — not every generated workload
        // reaches a retention point — so only the negative is asserted.
        let is_delta_file = |name: &str| name.starts_with("snapshot.d") && name != "snapshot.dat";
        let full_chained = std::fs::read_dir(&full_dir)
            .map(|d| {
                d.flatten()
                    .any(|e| is_delta_file(&e.file_name().to_string_lossy()))
            })
            .unwrap_or(false);
        prop_assert!(!full_chained, "cap 0 must never write deltas");
        std::fs::remove_dir_all(&base).ok();
    }
}
