//! Property test for experiment E5: the scheduler's ordering invariants
//! hold for random linear workflows and random input batches.
//!
//! For a workflow SP1 → SP2 → ... → SPk over random batches, every
//! produced schedule must satisfy (paper §2):
//!  1. TE order: per procedure, batches execute in submission order;
//!  2. workflow order: for each batch, SPi precedes SPi+1;
//!  3. serial execution: with shared writable tables, the schedule is
//!     exactly batch-major (whole workflow per batch, no interleaving).

use proptest::prelude::*;
use sstore_common::Value;
use sstore_txn::{Partition, PeConfig, ProcSpec};

/// Build a traced linear workflow of `depth` stages. All stages share the
/// trace table, so the serial rule applies.
fn pipeline(depth: usize) -> Partition {
    let mut p = Partition::new(PeConfig::default()).unwrap();
    for i in 0..=depth {
        p.ddl(&format!("CREATE STREAM st{i} (v INT)")).unwrap();
    }
    p.ddl(
        "CREATE TABLE trace (seq INT NOT NULL, stage INT NOT NULL, batch INT NOT NULL, \
         PRIMARY KEY (seq))",
    )
    .unwrap();
    p.ddl("CREATE TABLE seqgen (k INT NOT NULL, n INT NOT NULL, PRIMARY KEY (k))")
        .unwrap();
    p.setup_sql("INSERT INTO seqgen VALUES (0, 0)", &[])
        .unwrap();
    for i in 0..depth {
        let last = i == depth - 1;
        let spec = ProcSpec::new(format!("sp{i}"), move |ctx| {
            ctx.exec("bump", &[])?;
            let seq = ctx.exec("get", &[])?.scalar_i64()?;
            ctx.exec(
                "log",
                &[
                    Value::Int(seq),
                    Value::Int(i as i64),
                    Value::Int(ctx.input().id.raw() as i64),
                ],
            )?;
            if !last {
                for row in ctx.input().rows.clone() {
                    ctx.emit(row)?;
                }
            }
            Ok(())
        })
        .consumes(&format!("st{i}"))
        .stmt("bump", "UPDATE seqgen SET n = n + 1 WHERE k = 0")
        .stmt("get", "SELECT n FROM seqgen WHERE k = 0")
        .stmt("log", "INSERT INTO trace VALUES (?, ?, ?)");
        let spec = if last {
            spec
        } else {
            spec.emits(&format!("st{}", i + 1))
        };
        p.register(spec).unwrap();
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn schedules_are_legal(
        depth in 1usize..5,
        batch_sizes in prop::collection::vec(1usize..6, 1..12),
    ) {
        let mut p = pipeline(depth);
        if depth >= 2 {
            // Sharing requires at least two procedures.
            prop_assert!(p.workflow().has_shared_writables());
        }

        for (i, size) in batch_sizes.iter().enumerate() {
            let rows = (0..*size).map(|j| vec![Value::Int((i * 10 + j) as i64)]).collect();
            p.submit_batch("sp0", rows).unwrap();
        }

        let trace: Vec<(i64, i64)> = p
            .query("SELECT stage, batch FROM trace ORDER BY seq", &[])
            .unwrap()
            .rows
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();

        prop_assert_eq!(trace.len(), batch_sizes.len() * depth);

        // Invariant 3 (serial, batch-major): stages cycle 0..depth and
        // batches are grouped contiguously.
        for (i, (stage, _)) in trace.iter().enumerate() {
            prop_assert_eq!(*stage as usize, i % depth, "not batch-major at {}", i);
        }
        // Invariant 1 (TE order per stage).
        for s in 0..depth as i64 {
            let batches: Vec<i64> = trace
                .iter()
                .filter(|(stage, _)| *stage == s)
                .map(|(_, b)| *b)
                .collect();
            let mut sorted = batches.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&batches, &sorted, "TE order violated for stage {}", s);
        }
        // Invariant 2 (workflow order per batch).
        let pos = |stage: i64, batch: i64| {
            trace.iter().position(|&(s, b)| s == stage && b == batch)
        };
        for b in trace.iter().map(|&(_, b)| b).collect::<std::collections::BTreeSet<_>>() {
            for s in 1..depth as i64 {
                let up = pos(s - 1, b);
                let down = pos(s, b);
                prop_assert!(up.is_some() && down.is_some());
                prop_assert!(up < down, "workflow order violated for batch {}", b);
            }
        }
    }

    #[test]
    fn every_submitted_batch_is_acked_exactly_once(
        n_batches in 1usize..20,
    ) {
        let mut p = pipeline(2);
        for i in 0..n_batches {
            p.submit_batch("sp0", vec![vec![Value::Int(i as i64)]]).unwrap();
        }
        prop_assert_eq!(p.stats().batches_submitted, n_batches as u64);
        prop_assert_eq!(p.stats().batches_completed, n_batches as u64);
        prop_assert_eq!(p.stats().committed, (n_batches * 2) as u64);
    }
}
