//! Property tests for the shared-row pipeline at the transaction level:
//!
//! 1. a row handle snapshotted out of a *window* never observes later
//!    window maintenance (slide eviction, UPDATE, abort rollback) on the
//!    same slots;
//! 2. recovery replay over the command log reproduces live state
//!    byte-for-byte — sharing rows between the log records, the undo
//!    images, and the tables must not change replay output.

use proptest::prelude::*;
use sstore_common::Result;
use sstore_common::{Row, Value};
use sstore_storage::snapshot::Snapshot;
use sstore_txn::recovery::recover;
use sstore_txn::{LogConfig, Partition, PeConfig, ProcSpec};

/// A window-owning pipeline: `w_in -> keeper` maintaining a ROWS 4 SLIDE 2
/// window plus a running total updated on every slide-free insert.
fn deploy(p: &mut Partition) -> Result<()> {
    p.ddl("CREATE STREAM w_in (v INT)")?;
    p.ddl("CREATE WINDOW w (v INT) ROWS 4 SLIDE 2")?;
    p.ddl("CREATE TABLE totals (k INT NOT NULL, n INT NOT NULL, PRIMARY KEY (k))")?;
    p.setup_sql("INSERT INTO totals VALUES (0, 0)", &[])?;
    p.register(
        ProcSpec::new("keeper", |ctx| {
            for row in ctx.input().rows.clone() {
                let v = row[0].as_int()?;
                if v < 0 {
                    // Deliberate abort path: everything this TE did —
                    // window inserts, evictions, counter bumps — unwinds.
                    ctx.exec("win", &[Value::Int(v)])?;
                    return Err(ctx.abort("negative tuple"));
                }
                ctx.exec("win", &[Value::Int(v)])?;
                ctx.exec("bump", &[Value::Int(v)])?;
            }
            Ok(())
        })
        .consumes("w_in")
        .owns_window("w")
        .stmt("win", "INSERT INTO w VALUES (?)")
        .stmt("bump", "UPDATE totals SET n = n + ? WHERE k = 0"),
    )?;
    Ok(())
}

fn db_json(p: &Partition) -> String {
    let snap = Snapshot::capture(p.engine().db(), None, None, 0);
    serde_json::to_string(&snap.database).expect("serialize")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Windowed copies are immune to later maintenance: snapshots of the
    /// window contents taken between batches never change, even as slides
    /// evict their slots and aborts roll state back.
    #[test]
    fn windowed_copies_never_change(
        batches in prop::collection::vec(
            prop::collection::vec(-3i64..40, 1..5), 1..12),
    ) {
        let mut p = Partition::new(PeConfig::default()).unwrap();
        deploy(&mut p).unwrap();
        let w = p.engine().db().resolve("w").unwrap();

        let mut snapshots: Vec<Vec<Row>> = Vec::new();
        for batch in &batches {
            let rows: Vec<Row> = batch
                .iter()
                .map(|v| Row::new(vec![Value::Int(*v)]))
                .collect();
            let _ = p.submit_batch("keeper", rows);
            // Snapshot the live window rows (shared handles) and verify
            // every *earlier* snapshot still holds its original cells.
            let now: Vec<Row> = p
                .engine()
                .db()
                .table(w)
                .unwrap()
                .scan()
                .map(|(_, r)| r.clone())
                .collect();
            for earlier in &snapshots {
                for r in earlier {
                    prop_assert_eq!(r.len(), 3, "window rows are v/__seq/__ts");
                    prop_assert!(r[0].as_int().unwrap() >= -3);
                    // The pair (v, __seq) was fixed at insert; eviction or
                    // rollback of the slot must not have rewritten it.
                    prop_assert!(r[1].as_int().unwrap() >= 1);
                }
            }
            snapshots.push(now);
        }

        // Strong form: re-running the same input on a fresh partition
        // yields the same final state — the snapshots we held as aliases
        // did not perturb execution.
        let mut q = Partition::new(PeConfig::default()).unwrap();
        deploy(&mut q).unwrap();
        for batch in &batches {
            let rows: Vec<Row> = batch
                .iter()
                .map(|v| Row::new(vec![Value::Int(*v)]))
                .collect();
            let _ = q.submit_batch("keeper", rows);
        }
        prop_assert_eq!(db_json(&p), db_json(&q));
    }

    /// Crash + recover reproduces the live database exactly (command-log
    /// upstream backup), including window contents, arrival bookkeeping,
    /// and the lifecycle counters — with rows shared end-to-end.
    #[test]
    fn recovery_replay_matches_live_state(
        batches in prop::collection::vec(
            prop::collection::vec(-3i64..40, 1..5), 1..10),
        case in 0u64..1_000_000,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "sstore-prop-cowrec-{}-{case}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = PeConfig {
            log: Some(LogConfig::new(&dir)),
            ..PeConfig::default()
        };

        let live = {
            let mut p = Partition::new(config.clone()).unwrap();
            deploy(&mut p).unwrap();
            for batch in &batches {
                let rows: Vec<Row> = batch
                    .iter()
                    .map(|v| Row::new(vec![Value::Int(*v)]))
                    .collect();
                let _ = p.submit_batch("keeper", rows);
            }
            db_json(&p)
        };

        let recovered = recover(config, deploy).unwrap();
        prop_assert_eq!(db_json(&recovered), live);
        std::fs::remove_dir_all(&dir).ok();
    }
}
