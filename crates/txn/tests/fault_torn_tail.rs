//! The command log under an injected mid-frame crash: the `log-mid-write`
//! kill point tears half of a buffered group onto disk and dies, exactly
//! like a crash between `write(2)` and `fsync(2)`. The reader must warn
//! and replay the intact prefix; reopening for append must trim the torn
//! tail before resuming.

use sstore_common::fault::{self, KillMode};
use sstore_common::{Result, Row, Value};
use sstore_txn::log::read_log;
use sstore_txn::recovery::recover;
use sstore_txn::{LogConfig, Partition, PeConfig, ProcSpec};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

fn tempdir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sstore-torn-tail-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn deploy(p: &mut Partition) -> Result<()> {
    p.ddl("CREATE STREAM events (v INT)")?;
    p.ddl("CREATE TABLE totals (k INT NOT NULL, n INT NOT NULL, PRIMARY KEY (k))")?;
    p.setup_sql("INSERT INTO totals VALUES (0, 0)", &[])?;
    p.register(
        ProcSpec::new("ingest", |ctx| {
            for row in ctx.input().rows.clone() {
                ctx.exec("bump", &[row[0].clone()])?;
            }
            Ok(())
        })
        .consumes("events")
        .stmt("bump", "UPDATE totals SET n = n + ? WHERE k = 0"),
    )?;
    Ok(())
}

fn config(dir: &PathBuf) -> PeConfig {
    PeConfig {
        log: Some(LogConfig::new(dir)),
        ..PeConfig::default()
    }
}

fn batch() -> Vec<Row> {
    vec![Row::new(vec![Value::Int(1)]), Row::new(vec![Value::Int(2)])]
}

fn total(p: &mut Partition) -> i64 {
    p.query("SELECT n FROM totals WHERE k = 0", &[])
        .unwrap()
        .rows[0][0]
        .as_int()
        .unwrap()
}

#[test]
fn torn_tail_warns_and_replays_the_prefix() {
    let dir = tempdir("prefix");
    {
        let mut p = Partition::new(config(&dir)).unwrap();
        deploy(&mut p).unwrap();
        for _ in 0..3 {
            p.submit_batch("ingest", batch()).unwrap();
        }
        assert_eq!(total(&mut p), 9);
        // The 4th batch's input record tears mid-frame: half the encoded
        // frame reaches disk, then the "process" dies.
        fault::arm("log-mid-write", 1, KillMode::Panic);
        let crashed = catch_unwind(AssertUnwindSafe(|| {
            let _ = p.submit_batch("ingest", batch());
        }));
        assert!(crashed.is_err(), "the armed log tear must have fired");
        fault::disarm();
        // A panicking thread's CommandLog drop must not flush the torn
        // group as if shutdown were clean; dropping here is a no-op.
    }

    // The raw reader sees the torn trailing frame, warns, and hands back
    // the intact prefix (3 batches' worth of records, nothing more).
    let warned_before = fault::noted("log-torn-tail");
    let records = read_log(&dir.join("command.log")).unwrap();
    assert_eq!(
        fault::noted("log-torn-tail"),
        warned_before + 1,
        "the reader must note the torn tail it dropped"
    );
    assert!(
        records.iter().filter(|r| r.is_input()).count() == 3,
        "exactly the 3 fully-synced batches survive the tear"
    );

    // Recovery over the same wreckage: reopening for append trims the
    // torn tail, replay reproduces the prefix state.
    let trimmed_before = fault::noted("log-torn-tail-trimmed");
    let mut r = recover(config(&dir), deploy).unwrap();
    assert_eq!(
        fault::noted("log-torn-tail-trimmed"),
        trimmed_before + 1,
        "reopen-for-append must trim the torn tail before resuming"
    );
    assert_eq!(total(&mut r), 9, "replay covers exactly the intact prefix");

    // The trimmed log accepts appends: new work lands after the prefix
    // and survives another recovery untouched by the old tear.
    r.submit_batch("ingest", batch()).unwrap();
    assert_eq!(total(&mut r), 12);
    drop(r);
    let mut again = recover(config(&dir), deploy).unwrap();
    assert_eq!(total(&mut again), 12, "post-trim appends are durable");
    drop(again);
    std::fs::remove_dir_all(dir).ok();
}
