//! Stored procedures.
//!
//! An S-Store stored procedure is parameterized control code wrapped around
//! SQL — H-Store uses Java, we use Rust closures. Procedures are defined
//! once via [`ProcSpec`], which pre-plans every SQL statement; at run time
//! each transaction execution gets a [`ProcContext`] giving it its input
//! batch, its prepared statements, ad-hoc SQL, and an `emit` path onto its
//! output stream.

use sstore_common::{Batch, Error, ProcId, Result, Row, TableId, Value};
use sstore_engine::{ExecutionEngine, TxnScratch};
use sstore_sql::exec::QueryResult;
use sstore_sql::plan::{PhysicalPlan, PlannedStmt};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Procedure body: control code over the context.
pub type ProcHandler = Arc<dyn Fn(&mut ProcContext<'_>) -> Result<()> + Send + Sync>;

/// Declarative definition of a stored procedure, passed to
/// [`crate::partition::Partition::register`].
#[derive(Clone)]
pub struct ProcSpec {
    /// Procedure name (unique per partition).
    pub name: String,
    /// Stream this procedure consumes. Border procedures name the stream
    /// clients push into; interior procedures name an upstream output.
    pub input_stream: Option<String>,
    /// Stream this procedure emits to (creates the workflow edge to any
    /// downstream procedure that consumes it).
    pub output_stream: Option<String>,
    /// Windows owned by this procedure (bound to it for scope enforcement).
    pub windows: Vec<String>,
    /// Named SQL statements, planned at registration.
    pub statements: Vec<(String, String)>,
    /// Declared multi-sited: border submissions of this procedure whose
    /// rows route to more than one partition run as ONE global transaction
    /// under the cluster's two-phase-commit coordinator, instead of as
    /// independent per-partition TEs. Single-partition submissions take
    /// the ordinary fast path either way.
    pub multi_partition: bool,
    /// The body.
    pub handler: ProcHandler,
}

impl std::fmt::Debug for ProcSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcSpec")
            .field("name", &self.name)
            .field("input_stream", &self.input_stream)
            .field("output_stream", &self.output_stream)
            .field("windows", &self.windows)
            .field("statements", &self.statements.len())
            .finish()
    }
}

impl ProcSpec {
    /// Start a spec with just a name and handler.
    pub fn new(
        name: impl Into<String>,
        handler: impl Fn(&mut ProcContext<'_>) -> Result<()> + Send + Sync + 'static,
    ) -> Self {
        ProcSpec {
            name: name.into(),
            input_stream: None,
            output_stream: None,
            windows: Vec::new(),
            statements: Vec::new(),
            multi_partition: false,
            handler: Arc::new(handler),
        }
    }

    /// Declare the procedure multi-sited (see [`ProcSpec::multi_partition`]).
    pub fn multi_partition(mut self) -> Self {
        self.multi_partition = true;
        self
    }

    /// Set the input stream.
    pub fn consumes(mut self, stream: &str) -> Self {
        self.input_stream = Some(stream.to_string());
        self
    }

    /// Set the output stream.
    pub fn emits(mut self, stream: &str) -> Self {
        self.output_stream = Some(stream.to_string());
        self
    }

    /// Declare an owned window.
    pub fn owns_window(mut self, window: &str) -> Self {
        self.windows.push(window.to_string());
        self
    }

    /// Add a named prepared statement.
    pub fn stmt(mut self, name: &str, sql: &str) -> Self {
        self.statements.push((name.to_string(), sql.to_string()));
        self
    }
}

/// A registered procedure (spec compiled against the catalog).
pub struct Procedure {
    /// Dense id.
    pub id: ProcId,
    /// Name.
    pub name: String,
    /// Resolved input stream.
    pub input_stream: Option<TableId>,
    /// Resolved output stream.
    pub output_stream: Option<TableId>,
    /// Prepared statements by name.
    pub statements: HashMap<String, PlannedStmt>,
    /// Tables read by the prepared statements (shared-table analysis).
    pub read_set: HashSet<TableId>,
    /// Tables written by the prepared statements.
    pub write_set: HashSet<TableId>,
    /// Declared multi-sited (see [`ProcSpec::multi_partition`]).
    pub multi_partition: bool,
    /// The body.
    pub handler: ProcHandler,
}

impl std::fmt::Debug for Procedure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Procedure")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("input_stream", &self.input_stream)
            .field("output_stream", &self.output_stream)
            .finish()
    }
}

/// Collect the tables a plan reads.
pub fn plan_reads(plan: &PhysicalPlan, out: &mut HashSet<TableId>) {
    match plan {
        PhysicalPlan::Scan { table, .. } => {
            out.insert(*table);
        }
        PhysicalPlan::NestedLoopJoin { left, right, .. } => {
            plan_reads(left, out);
            plan_reads(right, out);
        }
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Limit { input, .. }
        | PhysicalPlan::Distinct { input }
        | PhysicalPlan::Aggregate { input, .. } => plan_reads(input, out),
        PhysicalPlan::Values { .. } => {}
    }
}

/// Compute the (read, write) table sets of a planned statement.
pub fn stmt_effects(stmt: &PlannedStmt) -> (HashSet<TableId>, HashSet<TableId>) {
    let mut reads = HashSet::new();
    let mut writes = HashSet::new();
    match stmt {
        PlannedStmt::Query {
            plan, subqueries, ..
        } => {
            plan_reads(plan, &mut reads);
            for s in subqueries {
                plan_reads(s, &mut reads);
            }
        }
        PlannedStmt::Insert {
            table,
            source,
            subqueries,
            ..
        } => {
            writes.insert(*table);
            plan_reads(source, &mut reads);
            for s in subqueries {
                plan_reads(s, &mut reads);
            }
        }
        PlannedStmt::Update {
            table, subqueries, ..
        }
        | PlannedStmt::Delete {
            table, subqueries, ..
        } => {
            writes.insert(*table);
            reads.insert(*table);
            for s in subqueries {
                plan_reads(s, &mut reads);
            }
        }
        PlannedStmt::Ddl(_) => {}
    }
    (reads, writes)
}

/// The per-TE context handed to procedure bodies.
pub struct ProcContext<'a> {
    /// The execution engine (all data access flows through it).
    pub engine: &'a mut ExecutionEngine,
    /// Transaction scratch (undo, output collection).
    pub scratch: &'a mut TxnScratch,
    /// Prepared statements of the running procedure.
    pub statements: &'a HashMap<String, PlannedStmt>,
    /// The input batch.
    pub input: &'a Batch,
    /// Logical time of the TE.
    pub now: i64,
    /// Output stream (for [`ProcContext::emit`]).
    pub output_stream: Option<TableId>,
    /// Response assembled for the client (OLTP-style procedures).
    pub response: Option<QueryResult>,
    /// Simulated PE→EE dispatch cost in µs (0 = off). Applied per
    /// statement to model a networked/IPC\'d deployment (experiment E3b).
    pub ee_trip_cost_micros: u64,
    /// Simulated PE→EE dispatch *latency* in µs (0 = off). Unlike the
    /// busy-wait cost, latency is time spent blocked on the round trip
    /// (`thread::sleep`), so concurrent partition workers overlap it —
    /// the model for a remote/IPC\'d EE in the cluster scaling bench.
    pub ee_trip_latency_micros: u64,
}

impl ProcContext<'_> {
    /// The input batch.
    pub fn input(&self) -> &Batch {
        self.input
    }

    /// Execute a prepared statement by name.
    pub fn exec(&mut self, stmt: &str, params: &[Value]) -> Result<QueryResult> {
        let planned = self
            .statements
            .get(stmt)
            .ok_or_else(|| Error::NotFound(format!("prepared statement `{stmt}`")))?
            .clone();
        self.dispatch(&planned, params)
    }

    /// Execute ad-hoc SQL (planned per call; prefer [`ProcContext::exec`]).
    pub fn sql(&mut self, sql: &str, params: &[Value]) -> Result<QueryResult> {
        let planned = self.engine.prepare(sql)?;
        self.dispatch(&planned, params)
    }

    /// Append a tuple to this procedure's output stream. The tuples
    /// emitted during one TE form the downstream procedure's input batch.
    pub fn emit(&mut self, row: impl Into<Row>) -> Result<()> {
        let row = row.into();
        let stream = self
            .output_stream
            .ok_or_else(|| Error::Schedule("procedure has no output stream to emit to".into()))?;
        // Synthesize a parameterized insert through the engine so stream
        // lifecycle (batch/seq stamping, EE triggers) applies.
        let arity = row.len();
        let planned = PlannedStmt::Insert {
            table: stream,
            source: PhysicalPlan::Values {
                rows: vec![(0..arity).map(sstore_sql::expr::BoundExpr::Param).collect()],
            },
            mapping: (0..arity).map(Some).collect(),
            subqueries: vec![],
        };
        self.dispatch(&planned, &row)?;
        Ok(())
    }

    /// Set the rows returned to the client for this TE.
    pub fn respond(&mut self, result: QueryResult) {
        self.response = Some(result);
    }

    /// Logical time of this TE.
    pub fn now(&self) -> i64 {
        self.now
    }

    /// Deliberately abort the transaction (clean rollback).
    pub fn abort(&self, msg: impl Into<String>) -> Error {
        Error::UserAbort(msg.into())
    }

    fn dispatch(&mut self, planned: &PlannedStmt, params: &[Value]) -> Result<QueryResult> {
        simulate_cost(self.ee_trip_cost_micros);
        simulate_latency(self.ee_trip_latency_micros);
        self.engine
            .execute_planned(planned, params, self.scratch, self.now)
    }
}

/// Sleep for `micros` to model a cross-layer round trip spent *blocked*
/// (network/IPC latency). Sleeping threads release the core, so partition
/// workers overlap these waits — the scaling behaviour a real
/// shared-nothing deployment shows even on few cores. 0 is a no-op.
pub fn simulate_latency(micros: u64) {
    if micros == 0 {
        return;
    }
    std::thread::sleep(std::time::Duration::from_micros(micros));
}

/// Busy-wait for `micros` to model a cross-layer round trip. Deterministic
/// enough for benchmarking; 0 is a no-op.
pub fn simulate_cost(micros: u64) {
    if micros == 0 {
        return;
    }
    let end = std::time::Instant::now() + std::time::Duration::from_micros(micros);
    while std::time::Instant::now() < end {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstore_common::BatchId;

    #[test]
    fn spec_builder() {
        let spec = ProcSpec::new("sp1", |_ctx| Ok(()))
            .consumes("in_s")
            .emits("out_s")
            .owns_window("w")
            .stmt("q", "SELECT 1");
        assert_eq!(spec.name, "sp1");
        assert_eq!(spec.input_stream.as_deref(), Some("in_s"));
        assert_eq!(spec.output_stream.as_deref(), Some("out_s"));
        assert_eq!(spec.windows, vec!["w"]);
        assert_eq!(spec.statements.len(), 1);
    }

    #[test]
    fn effects_analysis() {
        let mut engine = ExecutionEngine::new();
        engine
            .ddl_sql("CREATE TABLE t (id INT, PRIMARY KEY (id))")
            .unwrap();
        engine
            .ddl_sql("CREATE TABLE u (id INT, PRIMARY KEY (id))")
            .unwrap();
        let t = engine.db().resolve("t").unwrap();
        let u = engine.db().resolve("u").unwrap();

        let q = engine.prepare("SELECT * FROM t").unwrap();
        let (r, w) = stmt_effects(&q);
        assert!(r.contains(&t) && w.is_empty());

        let ins = engine.prepare("INSERT INTO u SELECT id FROM t").unwrap();
        let (r, w) = stmt_effects(&ins);
        assert!(r.contains(&t) && w.contains(&u));

        let upd = engine
            .prepare("UPDATE t SET id = id + (SELECT MAX(id) FROM u)")
            .unwrap();
        let (r, w) = stmt_effects(&upd);
        assert!(r.contains(&t) && r.contains(&u) && w.contains(&t));
    }

    #[test]
    fn context_exec_and_emit() {
        let mut engine = ExecutionEngine::new();
        engine.ddl_sql("CREATE STREAM out_s (v INT)").unwrap();
        engine
            .ddl_sql("CREATE TABLE t (id INT, PRIMARY KEY (id))")
            .unwrap();
        let out = engine.db().resolve("out_s").unwrap();
        let mut scratch = TxnScratch::new(Some(ProcId::new(0)), BatchId::new(3));
        let mut stmts = HashMap::new();
        stmts.insert(
            "ins".to_string(),
            engine.prepare("INSERT INTO t VALUES (?)").unwrap(),
        );
        let input = Batch::new(BatchId::new(3), vec![vec![Value::Int(5)]]);
        let mut ctx = ProcContext {
            engine: &mut engine,
            scratch: &mut scratch,
            statements: &stmts,
            input: &input,
            now: 7,
            output_stream: Some(out),
            response: None,
            ee_trip_cost_micros: 0,
            ee_trip_latency_micros: 0,
        };
        assert_eq!(ctx.input().len(), 1);
        assert_eq!(ctx.now(), 7);
        ctx.exec("ins", &[Value::Int(1)]).unwrap();
        assert!(ctx.exec("missing", &[]).is_err());
        ctx.emit(vec![Value::Int(42)]).unwrap();
        assert!(ctx.abort("nope").is_user_abort());
        drop(ctx);
        // Emitted row landed in the stream with batch id 3.
        let rows: Vec<Row> = engine
            .db()
            .table(out)
            .unwrap()
            .scan()
            .map(|(_, r)| r.clone())
            .collect();
        assert_eq!(rows[0][0], Value::Int(42));
        assert_eq!(rows[0][1], Value::Int(3));
        assert_eq!(scratch.appended.len(), 1);
    }

    #[test]
    fn emit_without_output_stream_errors() {
        let mut engine = ExecutionEngine::new();
        let mut scratch = TxnScratch::new(None, BatchId::new(0));
        let stmts = HashMap::new();
        let input = Batch::empty(BatchId::new(0));
        let mut ctx = ProcContext {
            engine: &mut engine,
            scratch: &mut scratch,
            statements: &stmts,
            input: &input,
            now: 0,
            output_stream: None,
            response: None,
            ee_trip_cost_micros: 0,
            ee_trip_latency_micros: 0,
        };
        assert_eq!(
            ctx.emit(vec![Value::Int(1)]).unwrap_err().kind(),
            "schedule"
        );
    }

    #[test]
    fn simulate_cost_zero_is_noop() {
        let t0 = std::time::Instant::now();
        simulate_cost(0);
        assert!(t0.elapsed().as_millis() < 5);
    }
}
