//! Partition-engine counters and latency tracking.

use sstore_common::{PartitionId, RowMetrics};

/// Monotone counters for one partition.
#[derive(Debug, Clone, Default)]
pub struct PeStats {
    /// Which partition these counters belong to (p0 in the single-sited
    /// case; the cluster runtime assigns one id per worker).
    pub partition: PartitionId,
    /// Client→PE round trips (batch submissions, direct invocations, and —
    /// in H-Store mode — client polls). The quantity experiment E3a sweeps.
    pub client_pe_trips: u64,
    /// Committed transaction executions.
    pub committed: u64,
    /// TEs rolled back by a deliberate user abort.
    pub user_aborts: u64,
    /// TEs rolled back by engine errors.
    pub failed: u64,
    /// Downstream TEs scheduled by PE triggers.
    pub pe_trigger_firings: u64,
    /// Border batches submitted.
    pub batches_submitted: u64,
    /// Coalesced client submissions: groups of queued border batches for
    /// one procedure that entered the PE in a single scheduler pass
    /// (one client↔PE round trip for the whole group).
    pub group_submissions: u64,
    /// Border batches that arrived inside a coalesced group.
    pub batches_coalesced: u64,
    /// Automatic retention snapshots that failed (the policy retries at
    /// the next quiescent point; the command log still covers the state).
    pub retention_failures: u64,
    /// Batches whose entire workflow committed (acked for upstream backup).
    pub batches_completed: u64,
    /// Command-log records written.
    pub log_records: u64,
    /// Command-log fsyncs issued (group commit makes this < records).
    pub log_syncs: u64,
    /// Command-log records dropped by upstream-backup GC (acked batches
    /// already covered by a snapshot, removed at retention points).
    pub log_gc_dropped: u64,
    /// Retention snapshots written as full base images.
    pub snapshots_full: u64,
    /// Retention snapshots written as incremental deltas chained to the
    /// previous image (see `LogConfig::delta_chain_cap`).
    pub snapshots_delta: u64,
    /// Single-partition TEs executed speculatively while a prepared 2PC
    /// fragment was awaiting its decision (read/write sets disjoint from
    /// the fragment's, so serializability is preserved).
    pub speculative_tes: u64,
    /// 2PC fragments prepared on this partition (vote requested).
    pub twopc_prepares: u64,
    /// Prepared fragments that committed on the coordinator's decision.
    pub twopc_commits: u64,
    /// Prepared fragments rolled back (vote-no or coordinator abort).
    pub twopc_aborts: u64,
    /// In-doubt fragments aborted during recovery because neither the
    /// local log nor the coordinator's decision log had an outcome
    /// (presumed abort).
    pub twopc_in_doubt_aborts: u64,
    /// Batches this partition pushed onto cross-partition workflow edges.
    pub forwards_out: u64,
    /// Forwarded batches accepted (logged + executed) from other
    /// partitions.
    pub forwards_in: u64,
    /// Forwarded batches dropped as duplicates by the edge high-water
    /// check (exactly-once under replay/re-forwarding).
    pub forwards_deduped: u64,
    /// Sum of per-TE wall latencies, in nanoseconds (with `committed` this
    /// gives mean latency; the histogram gives the shape).
    pub latency_ns_total: u128,
    /// Power-of-two latency histogram: bucket i counts TEs with latency in
    /// `[2^i, 2^(i+1))` microseconds; bucket 0 is `< 2µs`.
    pub latency_hist: [u64; 24],
    /// Row sharing behaviour (shares vs deep copies vs COW breaks).
    /// **Process-wide**, not per-partition: the counters are global
    /// atomics, snapshotted when [`crate::Partition::stats`] is called.
    pub rows: RowMetrics,
}

impl PeStats {
    /// Zeroed counters.
    pub fn new() -> Self {
        PeStats::default()
    }

    /// Record one TE latency.
    pub fn record_latency(&mut self, nanos: u128) {
        self.latency_ns_total += nanos;
        let micros = (nanos / 1_000) as u64;
        let bucket = (64 - micros.leading_zeros() as usize).min(self.latency_hist.len() - 1);
        self.latency_hist[bucket] += 1;
    }

    /// Mean committed-TE latency in microseconds (0 if none committed).
    pub fn mean_latency_us(&self) -> f64 {
        if self.committed == 0 {
            return 0.0;
        }
        self.latency_ns_total as f64 / self.committed as f64 / 1_000.0
    }

    /// Approximate p99 latency in microseconds from the histogram.
    pub fn p99_latency_us(&self) -> f64 {
        let total: u64 = self.latency_hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let target = (total as f64 * 0.99).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in self.latency_hist.iter().enumerate() {
            seen += n;
            if seen >= target {
                return (1u64 << i) as f64;
            }
        }
        (1u64 << (self.latency_hist.len() - 1)) as f64
    }

    /// Total TEs that finished (committed + aborted + failed).
    pub fn total_tes(&self) -> u64 {
        self.committed + self.user_aborts + self.failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_recording() {
        let mut s = PeStats::new();
        s.committed = 2;
        s.record_latency(1_000); // 1µs -> bucket 0 region
        s.record_latency(3_000_000); // 3ms
        assert!(s.mean_latency_us() > 1000.0);
        assert!(s.p99_latency_us() >= 2048.0);
    }

    #[test]
    fn p99_empty_is_zero() {
        assert_eq!(PeStats::new().p99_latency_us(), 0.0);
        assert_eq!(PeStats::new().mean_latency_us(), 0.0);
    }

    #[test]
    fn totals() {
        let s = PeStats {
            committed: 5,
            user_aborts: 2,
            failed: 1,
            ..PeStats::new()
        };
        assert_eq!(s.total_tes(), 8);
    }
}
